//! Deterministic weight initialisation schemes.
//!
//! All model parameters in the reproduction are initialised through these
//! helpers with a forked [`SeededRng`], so middleware models, baselines and
//! repeated experiment runs start from bit-identical weights for a given seed
//! — a prerequisite for the fairness claim of Table II ("the same initial
//! model for every method").

use crate::rng::SeededRng;
use crate::Tensor;

/// Fills a new tensor with samples from `U[-limit, limit]`.
pub fn uniform(dims: &[usize], limit: f32, rng: &mut SeededRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform_range(-limit, limit);
    }
    t
}

/// Fills a new tensor with samples from `N(mean, std^2)`.
pub fn normal(dims: &[usize], mean: f32, std: f32, rng: &mut SeededRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.normal_with(mean, std);
    }
    t
}

/// Kaiming/He uniform initialisation for layers followed by ReLU.
///
/// `fan_in` is the number of input connections per output unit.
pub fn kaiming_uniform(dims: &[usize], fan_in: usize, rng: &mut SeededRng) -> Tensor {
    let limit = (6.0 / fan_in.max(1) as f32).sqrt();
    uniform(dims, limit, rng)
}

/// Xavier/Glorot uniform initialisation for linear / tanh / sigmoid layers.
pub fn xavier_uniform(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut SeededRng,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(dims, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_respects_limit() {
        let mut rng = SeededRng::new(1);
        let t = uniform(&[100, 10], 0.3, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= 0.3));
        // Not all identical.
        assert!(t.variance() > 0.0);
    }

    #[test]
    fn normal_has_requested_moments() {
        let mut rng = SeededRng::new(2);
        let t = normal(&[50, 100], 1.0, 0.5, &mut rng);
        assert!((t.mean() - 1.0).abs() < 0.05);
        assert!((t.variance().sqrt() - 0.5).abs() < 0.05);
    }

    #[test]
    fn kaiming_limit_shrinks_with_fan_in() {
        let mut rng = SeededRng::new(3);
        let small_fan = uniform(&[1000], (6.0f32 / 10.0).sqrt(), &mut rng);
        let t = kaiming_uniform(&[1000], 1000, &mut rng);
        assert!(t.data().iter().all(|&x| x.abs() <= (6.0f32 / 1000.0).sqrt() + 1e-6));
        assert!(t.max() < small_fan.max());
    }

    #[test]
    fn xavier_limit_uses_both_fans() {
        let mut rng = SeededRng::new(4);
        let t = xavier_uniform(&[2000], 300, 100, &mut rng);
        let limit = (6.0f32 / 400.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn same_seed_gives_identical_init() {
        let mut a = SeededRng::new(77);
        let mut b = SeededRng::new(77);
        let ta = kaiming_uniform(&[32, 32], 32, &mut a);
        let tb = kaiming_uniform(&[32, 32], 32, &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_give_different_init() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let ta = kaiming_uniform(&[16, 16], 16, &mut a);
        let tb = kaiming_uniform(&[16, 16], 16, &mut b);
        assert_ne!(ta, tb);
    }
}
