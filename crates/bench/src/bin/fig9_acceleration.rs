//! Figure 9: FedCross training-acceleration variants (vanilla, w/ PM, w/ DA,
//! w/ PM-DA) on the CIFAR-10 stand-in under β = 0.1 and IID.
//!
//! The acceleration window scales with the configured round budget (the paper
//! uses 100 of 1000 rounds; the harness uses the same 10% ratio by default).
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig9_acceleration [--rounds N] [--model vgg]
//! ```

use fedcross::{Acceleration, AlgorithmSpec, SelectionStrategy};
use fedcross_bench::report::{format_curve, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());
    let model = match args.value::<String>("--model").as_deref() {
        Some("vgg") => ModelSpec::Vgg16,
        Some("resnet") => ModelSpec::ResNet20,
        _ => ModelSpec::Cnn,
    };
    // Acceleration is active for the first ~third of training at reduced scale
    // (the paper uses 100 of 1000 rounds at full scale).
    let window = (config.rounds / 3).max(2);
    let variants = [
        ("FedCross", Acceleration::None),
        (
            "FedCross w/ PM",
            Acceleration::PropellerModels {
                propellers: 3,
                until_round: window,
            },
        ),
        (
            "FedCross w/ DA",
            Acceleration::DynamicAlpha {
                start_alpha: 0.5,
                until_round: window,
            },
        ),
        (
            "FedCross w/ PM-DA",
            Acceleration::PropellerThenDynamic {
                propellers: 3,
                switch_round: window / 2,
                until_round: window,
            },
        ),
    ];

    let mut json = Vec::new();
    for heterogeneity in [Heterogeneity::Dirichlet(0.1), Heterogeneity::Iid] {
        let task = TaskSpec::Cifar10(heterogeneity);
        let data = build_task(task, &config, config.seed);
        println!(
            "\nFigure 9 — acceleration variants, {} with {} ({} rounds, window {} rounds)",
            model.label(),
            task.label(),
            config.rounds,
            window
        );
        for (label, acceleration) in variants {
            let spec = AlgorithmSpec::FedCross {
                alpha: 0.99,
                strategy: SelectionStrategy::LowestSimilarity,
                acceleration,
            };
            let template = build_model(model, &data, config.seed.wrapping_add(1));
            let outcome = run_method_on(spec, &data, template, &config, &task.label(), model.label());
            // Early-phase accuracy = accuracy at the end of the acceleration window.
            let early = outcome
                .result
                .history
                .records()
                .iter()
                .filter(|r| r.round <= window)
                .map(|r| r.accuracy * 100.0)
                .fold(0.0f32, f32::max);
            println!(
                "  {:<18} early(≤{window}) {:>5.1}%  best {:>5.1}%  curve: {}",
                label,
                early,
                outcome.result.best_accuracy_pct(),
                format_curve(&outcome.result.history, 6)
            );
            json.push(serde_json::json!({
                "setting": heterogeneity.label(),
                "variant": label,
                "early_accuracy_pct": early,
                "best_accuracy_pct": outcome.result.best_accuracy_pct(),
                "curve": outcome.result.history.accuracy_curve(),
            }));
        }
    }
    write_json("fig9_acceleration.json", &json);
    println!("\nPaper shape to check: all accelerated variants reach higher accuracy early in");
    println!("training than vanilla FedCross, at a small cost in final accuracy.");
}
