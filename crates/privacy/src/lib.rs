//! # fedcross-privacy
//!
//! Privacy-preserving extensions for the FedCross workspace.
//!
//! Section IV-F1 of the FedCross paper argues that, because its dispatch /
//! local-training / upload pipeline is identical to FedAvg's, FedCross "can
//! easily integrate existing privacy-preserving techniques" (it cites
//! Bayesian DP, DP-FL and LDP-FL). This crate provides those integrations so
//! the claim can be exercised and measured rather than asserted:
//!
//! * [`clipping`] — L2-norm clipping of client model deltas, the sensitivity
//!   bound every differentially-private FL mechanism relies on,
//! * [`mechanism`] — the Gaussian and Laplace mechanisms applied to clipped
//!   parameter deltas, in both central-DP (noise added by the server to the
//!   aggregate) and local-DP (noise added by each client before upload)
//!   placements,
//! * [`accountant`] — a Rényi-DP accountant for the subsampled Gaussian
//!   mechanism, converting a training schedule (noise multiplier, sampling
//!   rate, rounds) into an (ε, δ) guarantee,
//! * [`secure_agg`] — a pairwise-masking secure-aggregation simulation in
//!   which the server only ever observes masked uploads whose masks cancel in
//!   the sum,
//! * [`algorithms`] — drop-in [`fedcross_flsim::FederatedAlgorithm`]
//!   implementations: [`algorithms::DpFedAvg`] (DP-FedAvg with central or
//!   local noise) and [`algorithms::DpFedCross`] (FedCross with per-middleware
//!   clipping and noise), so the privacy/utility trade-off can be swept by the
//!   benchmark harness (`ablation_privacy`).
//!
//! ## Quick example
//!
//! ```
//! use fedcross_privacy::accountant::RdpAccountant;
//! use fedcross_privacy::mechanism::{DpConfig, NoisePlacement};
//!
//! // A DP-FedAvg schedule: clip to 1.0, noise multiplier 1.1, 10% sampling.
//! let config = DpConfig { clip_norm: 1.0, noise_multiplier: 1.1, placement: NoisePlacement::Central };
//! let accountant = RdpAccountant::new(config.noise_multiplier, 0.1);
//! let epsilon = accountant.epsilon_after(100, 1e-5);
//! assert!(epsilon > 0.0 && epsilon.is_finite());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accountant;
pub mod algorithms;
pub mod clipping;
pub mod mechanism;
pub mod secure_agg;

pub use accountant::RdpAccountant;
pub use algorithms::{DpFedAvg, DpFedCross, SecureAggFedAvg};
pub use clipping::{clip_to_norm, clipped_delta};
pub use mechanism::{DpConfig, NoisePlacement};
pub use secure_agg::PairwiseMasker;
