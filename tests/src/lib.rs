//! placeholder
