//! Client-side local training.
//!
//! Every FL method in the paper shares the same client behaviour: receive a
//! parameter vector, run `E` epochs of mini-batch SGD on the local dataset,
//! upload the trained parameters. The methods differ only in (i) which vector
//! is dispatched and (ii) an optional per-parameter gradient correction
//! (FedProx's proximal term, SCAFFOLD's control variates), which is injected
//! here as a [`GradCorrection`] closure.

use fedcross_data::{Batch, Dataset};
use fedcross_nn::loss::softmax_cross_entropy_into;
use fedcross_nn::optim::Sgd;
use fedcross_nn::params::ParamBlock;
use fedcross_nn::Model;
use fedcross_tensor::{SeededRng, TensorPool};

/// A per-parameter gradient correction applied during local SGD.
///
/// Receives `(parameter index, parameter value, raw gradient)` and returns the
/// gradient actually used by the optimizer.
pub type GradCorrection = Box<dyn Fn(usize, f32, f32) -> f32 + Send + Sync>;

/// Hyper-parameters of client-side local training.
///
/// The defaults are the paper's Section IV-A settings: batch size 50, five
/// local epochs, SGD with learning rate 0.01 and momentum 0.5.
#[derive(Debug, Clone, Copy)]
pub struct LocalTrainConfig {
    /// Number of passes over the client's local data per round.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
}

impl Default for LocalTrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            batch_size: 50,
            lr: 0.01,
            momentum: 0.5,
            weight_decay: 0.0,
        }
    }
}

impl LocalTrainConfig {
    /// A faster configuration for unit tests and quick experiments.
    pub fn fast() -> Self {
        Self {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        }
    }
}

/// The result of one client's local training: the trained parameters plus
/// bookkeeping the server-side aggregation rules need.
#[derive(Debug, Clone)]
pub struct LocalUpdate {
    /// Index of the client that produced the update.
    pub client: usize,
    /// Trained (uploaded) parameter vector.
    ///
    /// Updates produced through the persistent worker plane share their
    /// buffer with the worker's reusable upload block (so a steady-state
    /// round uploads without allocating); copy-on-write protects both sides,
    /// so server-side aggregation may freely read the slice, keep a clone, or
    /// `make_mut` (which duplicates only while the worker still holds its
    /// handle). An update from the standalone [`local_train`] owns its buffer
    /// uniquely, as before.
    pub params: ParamBlock,
    /// Number of local training samples (FedAvg weighting).
    pub num_samples: usize,
    /// Mean training loss over the last local epoch.
    pub train_loss: f32,
    /// Number of SGD steps performed.
    pub steps: usize,
}

/// Reusable per-worker training state: the scratch arena, the minibatch
/// gather buffers, the optimizer (with its velocity buffer) and the upload
/// block.
///
/// One `TrainScratch` belongs to exactly one logical training worker (a
/// `fedcross_flsim::worker::ClientWorkerPool` slot, or one `local_train`
/// call). Reusing it across rounds is what turns the per-round "allocate
/// arena + velocity + upload vector" cost into a one-time warm-up: every
/// buffer inside is cleared/overwritten — never dropped — between uses, so a
/// steady-state round performs zero full-model or full-activation heap
/// allocations.
pub struct TrainScratch {
    pool: TensorPool,
    order: Vec<usize>,
    batch: Batch,
    optimizer: Sgd,
    upload: ParamBlock,
}

impl TrainScratch {
    /// Creates cold scratch state; every buffer is grown on first use.
    pub fn new() -> Self {
        Self {
            pool: TensorPool::new(),
            order: Vec::new(),
            batch: Batch::reusable(),
            optimizer: Sgd::paper_default(),
            upload: ParamBlock::default(),
        }
    }

    /// Number of fresh buffers the scratch arena had to allocate (stops
    /// growing once the worker is warm; exposed for the allocation tests).
    pub fn arena_fresh_allocations(&self) -> usize {
        self.pool.fresh_allocations()
    }
}

impl Default for TrainScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs local training of `model` (already loaded with the dispatched
/// parameters) on `data`, returning the trained parameter vector and stats.
///
/// `correction` optionally adjusts every per-parameter gradient before the
/// SGD update — the hook FedProx and SCAFFOLD use.
///
/// This standalone form builds (and drops) its own [`TrainScratch`], so the
/// returned update owns its parameter buffer uniquely. The round loop instead
/// goes through [`local_train_pooled`] with a persistent worker's scratch.
pub fn local_train(
    client: usize,
    model: &mut dyn Model,
    data: &Dataset,
    config: &LocalTrainConfig,
    rng: &mut SeededRng,
    correction: Option<&GradCorrection>,
) -> LocalUpdate {
    let mut scratch = TrainScratch::new();
    local_train_pooled(client, model, data, config, rng, correction, &mut scratch)
    // `scratch` drops here, releasing its handle on the upload block: the
    // update leaves as the unique owner.
}

/// [`local_train`] against caller-owned reusable scratch state — the form the
/// persistent worker plane dispatches to. Bitwise identical to the standalone
/// form (same loop, same arithmetic); the only difference is that every
/// transient buffer, the optimizer velocity and the upload block come from
/// `scratch` and survive for the next round. The returned update's `params`
/// share the scratch's upload block (copy-on-write; see
/// [`LocalUpdate::params`]).
pub fn local_train_pooled(
    client: usize,
    model: &mut dyn Model,
    data: &Dataset,
    config: &LocalTrainConfig,
    rng: &mut SeededRng,
    correction: Option<&GradCorrection>,
    scratch: &mut TrainScratch,
) -> LocalUpdate {
    assert!(config.epochs > 0, "at least one local epoch is required");
    assert!(config.batch_size > 0, "batch size must be positive");
    // Fresh-optimizer semantics on a reused velocity buffer: a round always
    // starts from zero momentum, exactly like the historical per-call
    // `Sgd::new`.
    scratch
        .optimizer
        .reconfigure(config.lr, config.momentum, config.weight_decay);
    let mut steps = 0usize;
    let mut last_epoch_loss = 0f32;

    // All transient training state — activations, gradients, the minibatch
    // gather buffers and the epoch order — is checked out once and reused
    // across every step, epoch and (for persistent workers) round: after the
    // warm-up the loop performs zero allocations (pinned by
    // tests/tests/training_plane.rs and tests/tests/round_alloc.rs).
    let pool = &mut scratch.pool;
    let order = &mut scratch.order;
    let batch = &mut scratch.batch;

    for epoch in 0..config.epochs {
        let mut epoch_loss = 0f32;
        let mut epoch_batches = 0usize;
        data.epoch_order(Some(rng), order);
        for chunk in order.chunks(config.batch_size) {
            data.gather_batch(chunk, batch);
            model.zero_grads();
            let logits = model.forward_into(&batch.features, true, pool);
            let (loss, grad) = softmax_cross_entropy_into(&logits, &batch.labels, pool);
            pool.recycle(logits);
            model.backward_into(&grad, pool);
            pool.recycle(grad);
            match correction {
                Some(correct) => scratch.optimizer.step_with(model, correct),
                None => scratch.optimizer.step(model),
            }
            epoch_loss += loss;
            epoch_batches += 1;
            steps += 1;
        }
        if epoch == config.epochs - 1 && epoch_batches > 0 {
            last_epoch_loss = epoch_loss / epoch_batches as f32;
        }
    }

    // Upload through the reusable block: `make_mut` reuses the buffer in
    // place whenever the server released last round's handle (the steady
    // state). When the server retained the upload, duplicating the shared
    // contents would be wasted work (they are about to be overwritten), so
    // start from an empty block instead — correctness never depends on the
    // server's behaviour.
    if !scratch.upload.is_unique() {
        scratch.upload = ParamBlock::default();
    }
    let buf = scratch.upload.make_mut();
    model.read_params_into(buf);
    LocalUpdate {
        client,
        // alloc: bounded — Arc handle clone of the upload block, no data copy
        params: scratch.upload.clone(),
        num_samples: data.len(),
        train_loss: last_epoch_loss,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_nn::models::mlp;
    use fedcross_tensor::Tensor;

    fn tiny_task(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 3,
                samples_per_client: 30,
                test_samples: 30,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let model = mlp(3 * 16 * 16, &[32], 10, &mut rng);
        (data, model)
    }

    fn flatten_images(data: &Dataset) -> Dataset {
        let n = data.len();
        let dim: usize = data.sample_dims().iter().product();
        Dataset::new(
            data.features().reshape(&[n, dim]),
            data.labels().to_vec(),
            data.num_classes(),
        )
    }

    #[test]
    fn local_training_reduces_loss_and_returns_params() {
        let (data, template) = tiny_task(0);
        let client_data = flatten_images(data.client(0));
        let mut model = template.clone_model();
        let before = model.params_flat();
        let config = LocalTrainConfig {
            epochs: 5,
            batch_size: 10,
            lr: 0.1,
            momentum: 0.5,
            weight_decay: 0.0,
        };
        let mut rng = SeededRng::new(1);
        let update = local_train(0, model.as_mut(), &client_data, &config, &mut rng, None);
        assert_eq!(update.client, 0);
        assert_eq!(update.num_samples, client_data.len());
        assert_eq!(update.params.len(), before.len());
        assert_ne!(update.params, before);
        assert!(update.steps >= config.epochs * 3);
        assert!(update.train_loss.is_finite());
    }

    #[test]
    fn more_epochs_move_parameters_further() {
        let (data, template) = tiny_task(2);
        let client_data = flatten_images(data.client(1));
        let start = template.params_flat();

        let run = |epochs: usize| {
            let mut model = template.clone_model();
            let config = LocalTrainConfig {
                epochs,
                batch_size: 10,
                lr: 0.05,
                momentum: 0.0,
                weight_decay: 0.0,
            };
            let mut rng = SeededRng::new(3);
            let update = local_train(1, model.as_mut(), &client_data, &config, &mut rng, None);
            fedcross_nn::params::euclidean(&update.params, &start)
        };
        assert!(run(4) > run(1));
    }

    #[test]
    fn zero_correction_freezes_the_model() {
        let (data, template) = tiny_task(4);
        let client_data = flatten_images(data.client(2));
        let mut model = template.clone_model();
        let before = model.params_flat();
        let config = LocalTrainConfig::fast();
        let mut rng = SeededRng::new(5);
        let freeze: GradCorrection = Box::new(|_, _, _| 0.0);
        let update = local_train(2, model.as_mut(), &client_data, &config, &mut rng, Some(&freeze));
        assert_eq!(update.params, before);
    }

    #[test]
    fn proximal_style_correction_keeps_params_closer_to_anchor() {
        let (data, template) = tiny_task(6);
        let client_data = flatten_images(data.client(0));
        let anchor = template.params_flat();
        let config = LocalTrainConfig {
            epochs: 3,
            batch_size: 10,
            lr: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        };

        // Plain local training.
        let mut plain_model = template.clone_model();
        let plain = local_train(
            0,
            plain_model.as_mut(),
            &client_data,
            &config,
            &mut SeededRng::new(7),
            None,
        );

        // FedProx-style: g + mu (w - w_anchor) with a large mu.
        let anchor_for_closure = anchor.clone();
        let prox: GradCorrection =
            Box::new(move |i, w, g| g + 1.0 * (w - anchor_for_closure[i]));
        let mut prox_model = template.clone_model();
        let proxed = local_train(
            0,
            prox_model.as_mut(),
            &client_data,
            &config,
            &mut SeededRng::new(7),
            Some(&prox),
        );

        let plain_dist = fedcross_nn::params::euclidean(&plain.params, &anchor);
        let prox_dist = fedcross_nn::params::euclidean(&proxed.params, &anchor);
        assert!(
            prox_dist < plain_dist,
            "proximal term should pull parameters towards the anchor ({prox_dist} vs {plain_dist})"
        );
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (data, template) = tiny_task(8);
        let client_data = flatten_images(data.client(0));
        let config = LocalTrainConfig::fast();
        let run = |seed: u64| {
            let mut model = template.clone_model();
            let mut rng = SeededRng::new(seed);
            local_train(0, model.as_mut(), &client_data, &config, &mut rng, None).params
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn empty_dataset_produces_no_steps() {
        let (_, template) = tiny_task(11);
        let empty = Dataset::empty(&[3 * 16 * 16], 10);
        let mut model = template.clone_model();
        let config = LocalTrainConfig::fast();
        let mut rng = SeededRng::new(12);
        let update = local_train(0, model.as_mut(), &empty, &config, &mut rng, None);
        assert_eq!(update.steps, 0);
        assert_eq!(update.num_samples, 0);
    }

    #[test]
    fn paper_default_config_matches_section_iv() {
        let c = LocalTrainConfig::default();
        assert_eq!(c.epochs, 5);
        assert_eq!(c.batch_size, 50);
        assert!((c.lr - 0.01).abs() < 1e-9);
        assert!((c.momentum - 0.5).abs() < 1e-9);
        let _ = Tensor::zeros(&[1]); // keep Tensor import exercised
    }
}
