//! A size-bucketed scratch arena for activation and gradient buffers.
//!
//! One training step of a CNN performs dozens of transient full-activation
//! allocations (layer outputs, im2col matrices, gradient temporaries). The
//! [`TensorPool`] extends the zero-copy convention of the parameter plane
//! (`fedcross_nn::params::ParamBlock`) into the compute plane: layers check
//! reusable buffers out of the pool in their `forward_into` / `backward_into`
//! forms and recycle them when done, so a steady-state minibatch step
//! performs **zero** full-activation allocations — each shape is allocated
//! once on the first step and reused forever after.
//!
//! The pool is deliberately dumb: free lists keyed by element count, no
//! trimming, no sharing across threads (each training client owns one pool).
//! Checked-out buffers are ordinary [`Tensor`]s; a tensor that is never
//! recycled is simply freed by its destructor, so leaking buffers out of the
//! pool is safe (just slower).

use crate::Tensor;
use std::collections::HashMap;

/// A size-bucketed free list of reusable `f32` buffers.
#[derive(Debug, Default)]
pub struct TensorPool {
    buckets: HashMap<usize, Vec<Vec<f32>>>,
    fresh_allocations: usize,
    checkouts: usize,
}

impl TensorPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a tensor of the given shape with **unspecified contents**
    /// (stale data from a previous checkout). Use when every element will be
    /// overwritten; use [`TensorPool::take_zeroed`] when the computation
    /// accumulates into the buffer.
    pub fn take_uninit(&mut self, dims: &[usize]) -> Tensor {
        let numel: usize = dims.iter().product();
        self.checkouts += 1;
        let data = match self.buckets.get_mut(&numel).and_then(Vec::pop) {
            Some(buf) => buf,
            None => {
                self.fresh_allocations += 1;
                // alloc: pooled — arena miss; steady rounds reuse returned buffers
                vec![0f32; numel]
            }
        };
        let mut t = Tensor::from_vec(data, &[numel]);
        t.reshape_in_place(dims);
        t
    }

    /// Checks out a zero-filled tensor of the given shape.
    pub fn take_zeroed(&mut self, dims: &[usize]) -> Tensor {
        let mut t = self.take_uninit(dims);
        t.fill(0.0);
        t
    }

    /// Checks out a tensor containing a copy of `src` (same shape and bits).
    pub fn take_copy(&mut self, src: &Tensor) -> Tensor {
        let mut t = self.take_uninit(src.dims());
        t.data_mut().copy_from_slice(src.data());
        t
    }

    /// Returns a buffer to the pool for reuse.
    pub fn recycle(&mut self, tensor: Tensor) {
        let data = tensor.into_vec();
        self.buckets.entry(data.len()).or_default().push(data);
    }

    /// Number of buffers the pool had to allocate fresh (cache misses).
    ///
    /// In a steady-state training loop this stops growing after the first
    /// step; the allocation-count regression test pins exactly that.
    pub fn fresh_allocations(&self) -> usize {
        self.fresh_allocations
    }

    /// Total number of checkouts served (hits + misses).
    pub fn checkouts(&self) -> usize {
        self.checkouts
    }

    /// Number of buffers currently parked in the free lists.
    pub fn free_buffers(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_uninit_reuses_recycled_buffers() {
        let mut pool = TensorPool::new();
        let t = pool.take_uninit(&[4, 8]);
        assert_eq!(t.dims(), &[4, 8]);
        let ptr = t.data().as_ptr();
        pool.recycle(t);
        let t2 = pool.take_uninit(&[8, 4]); // same numel, different shape
        assert_eq!(t2.dims(), &[8, 4]);
        assert_eq!(t2.data().as_ptr(), ptr, "buffer must be reused");
        assert_eq!(pool.fresh_allocations(), 1);
        assert_eq!(pool.checkouts(), 2);
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut pool = TensorPool::new();
        let mut t = pool.take_uninit(&[3]);
        t.fill(7.0);
        pool.recycle(t);
        let z = pool.take_zeroed(&[3]);
        assert_eq!(z.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn take_copy_matches_source_bitwise() {
        let mut pool = TensorPool::new();
        let src = Tensor::from_vec(vec![1.5, -0.0, f32::MIN_POSITIVE], &[3]);
        let copy = pool.take_copy(&src);
        let bits: Vec<u32> = copy.data().iter().map(|x| x.to_bits()).collect();
        let src_bits: Vec<u32> = src.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, src_bits);
    }

    #[test]
    fn distinct_sizes_use_distinct_buckets() {
        let mut pool = TensorPool::new();
        let a = pool.take_uninit(&[4]);
        let b = pool.take_uninit(&[8]);
        pool.recycle(a);
        pool.recycle(b);
        assert_eq!(pool.free_buffers(), 2);
        let _a = pool.take_uninit(&[4]);
        let _b = pool.take_uninit(&[8]);
        assert_eq!(pool.fresh_allocations(), 2, "both sizes served from cache");
    }

    #[test]
    fn steady_state_loop_stops_allocating() {
        let mut pool = TensorPool::new();
        for _ in 0..10 {
            let x = pool.take_uninit(&[16, 16]);
            let y = pool.take_zeroed(&[16]);
            pool.recycle(x);
            pool.recycle(y);
        }
        assert_eq!(pool.fresh_allocations(), 2);
        assert_eq!(pool.checkouts(), 20);
    }
}
