//! Rényi-DP accounting for the subsampled Gaussian mechanism.
//!
//! Differentially-private FL needs to answer "after `T` rounds with noise
//! multiplier `z` and client sampling rate `q`, what (ε, δ) have we spent?".
//! This module implements the standard moments-accountant style answer:
//!
//! 1. the per-round Rényi divergence bound of the subsampled Gaussian
//!    mechanism at order `α` (the leading-order bound of Abadi et al. 2016,
//!    `q²·α / ((1-q)·z²)`, exact `α/(2z²)` when every client participates),
//! 2. linear composition of the per-round bound over rounds,
//! 3. conversion of the composed Rényi bound to an (ε, δ) guarantee by
//!    minimising `rdp(α) + log(1/δ)/(α-1)` over a grid of orders.
//!
//! The bound is the *leading-order* subsampling amplification term, which is
//! the regime (small `q`, `z ≳ 1`) the benchmark harness sweeps; DESIGN.md
//! records this as the accountant's scope.

use serde::{Deserialize, Serialize};

/// Orders α over which the RDP → (ε, δ) conversion is minimised.
const DEFAULT_ORDERS: &[f64] = &[
    1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 32.0,
    48.0, 64.0, 96.0, 128.0, 256.0, 512.0,
];

/// Tracks the Rényi-DP budget spent by a subsampled Gaussian training run.
///
/// The accountant composes **per-round** contributions: every recorded round
/// adds its Rényi divergence bound — evaluated at that round's *actual*
/// sampling rate — to a per-order spent-budget vector. The configured
/// `sampling_rate` is only the schedule's nominal rate (used by [`step`] and
/// the hypothetical projections [`epsilon_after`] /
/// [`rounds_until_budget`]); rounds where availability dropout reduced the
/// participant count should be recorded with [`step_with_rate`], so the
/// reported ε reflects what actually ran rather than the first round's
/// frozen `K / N`.
///
/// [`step`]: RdpAccountant::step
/// [`step_with_rate`]: RdpAccountant::step_with_rate
/// [`epsilon_after`]: RdpAccountant::epsilon_after
/// [`rounds_until_budget`]: RdpAccountant::rounds_until_budget
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RdpAccountant {
    noise_multiplier: f64,
    sampling_rate: f64,
    rounds: u64,
    /// Accumulated Rényi divergence per order, aligned with
    /// [`RdpAccountant::orders`].
    spent_rdp: Vec<f64>,
}

impl RdpAccountant {
    /// Creates an accountant for a schedule with the given noise multiplier
    /// `z` (noise std divided by sensitivity) and nominal per-round client
    /// sampling rate `q = K / N`.
    ///
    /// # Panics
    /// Panics if the sampling rate lies outside `(0, 1]` or the noise
    /// multiplier is negative.
    pub fn new(noise_multiplier: f32, sampling_rate: f32) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must lie in (0, 1]"
        );
        assert!(noise_multiplier >= 0.0, "noise multiplier must be >= 0");
        Self {
            noise_multiplier: noise_multiplier as f64,
            sampling_rate: sampling_rate as f64,
            rounds: 0,
            spent_rdp: vec![0.0; DEFAULT_ORDERS.len()],
        }
    }

    /// Reconstructs an accountant from a checkpointed spent-budget record.
    /// The composition is a running f64 sum, so restoring the exact bits and
    /// continuing reproduces the uninterrupted accountant bitwise.
    ///
    /// # Errors
    /// Rejects (with a message) a spent vector whose length does not match
    /// the order grid, or configuration values outside the constructor's
    /// domain — a checkpoint corrupted into an invalid accountant must not
    /// restore.
    pub fn restore(
        noise_multiplier: f64,
        sampling_rate: f64,
        rounds: u64,
        spent_rdp: Vec<f64>,
    ) -> Result<Self, String> {
        if !(sampling_rate > 0.0 && sampling_rate <= 1.0) {
            return Err(format!("sampling rate {sampling_rate} outside (0, 1]"));
        }
        if noise_multiplier.is_nan() || noise_multiplier < 0.0 {
            return Err(format!("invalid noise multiplier {noise_multiplier}"));
        }
        if spent_rdp.len() != DEFAULT_ORDERS.len() {
            return Err(format!(
                "spent-budget record has {} orders, this build uses {}",
                spent_rdp.len(),
                DEFAULT_ORDERS.len()
            ));
        }
        if spent_rdp.iter().any(|v| v.is_nan() || *v < 0.0) {
            return Err("spent-budget record contains a negative or NaN entry".to_string());
        }
        Ok(Self {
            noise_multiplier,
            sampling_rate,
            rounds,
            spent_rdp,
        })
    }

    /// Number of rounds recorded so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The nominal sampling rate the accountant was configured with.
    pub fn sampling_rate(&self) -> f64 {
        self.sampling_rate
    }

    /// The configured noise multiplier.
    pub fn noise_multiplier(&self) -> f64 {
        self.noise_multiplier
    }

    /// The accumulated Rényi divergence per order (aligned with
    /// [`RdpAccountant::orders`]) — the spent-budget record a checkpoint
    /// persists and [`RdpAccountant::restore`] accepts back.
    pub fn spent_rdp(&self) -> &[f64] {
        &self.spent_rdp
    }

    /// The order grid ε is minimised over.
    pub fn orders() -> &'static [f64] {
        DEFAULT_ORDERS
    }

    /// Records one completed round at the nominal sampling rate.
    pub fn step(&mut self) {
        self.step_with_rate(self.sampling_rate);
    }

    /// Records one completed round whose **actual** sampling rate was `q`
    /// (returned participants over federation size). Dropout rounds compose
    /// a smaller per-round bound than the nominal schedule; over-nominal
    /// participation composes a larger one — either way ε reports the run
    /// that happened.
    ///
    /// # Panics
    /// Panics if `q` lies outside `(0, 1]`. A round with zero participants
    /// performs no release and must simply not be recorded.
    pub fn step_with_rate(&mut self, q: f64) {
        assert!(q > 0.0 && q <= 1.0, "sampling rate must lie in (0, 1]");
        let z = self.noise_multiplier;
        for (spent, &alpha) in self.spent_rdp.iter_mut().zip(DEFAULT_ORDERS) {
            *spent += Self::rdp_once(z, alpha, q);
        }
        self.rounds += 1;
    }

    /// Records `rounds` completed rounds at the nominal sampling rate.
    pub fn step_many(&mut self, rounds: u64) {
        let (z, q) = (self.noise_multiplier, self.sampling_rate);
        for (spent, &alpha) in self.spent_rdp.iter_mut().zip(DEFAULT_ORDERS) {
            *spent += rounds as f64 * Self::rdp_once(z, alpha, q);
        }
        self.rounds += rounds;
    }

    /// One round's Rényi divergence bound at order `alpha` and sampling
    /// rate `q` under noise multiplier `z`.
    fn rdp_once(z: f64, alpha: f64, q: f64) -> f64 {
        if z == 0.0 {
            return f64::INFINITY;
        }
        let z2 = z * z;
        if (q - 1.0).abs() < 1e-12 {
            // Plain Gaussian mechanism: ε(α) = α / (2 z²).
            alpha / (2.0 * z2)
        } else {
            // Leading-order subsampled-Gaussian bound (moments accountant):
            // ε(α) ≤ q² α / ((1 - q) z²).
            q * q * alpha / ((1.0 - q) * z2)
        }
    }

    /// The (ε, δ) guarantee spent by the recorded rounds, composed from each
    /// round's actual sampling rate.
    pub fn epsilon(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        if self.rounds == 0 {
            return 0.0;
        }
        let log_inv_delta = (1.0 / delta).ln();
        self.spent_rdp
            .iter()
            .zip(DEFAULT_ORDERS)
            .map(|(&spent, &alpha)| spent + log_inv_delta / (alpha - 1.0))
            .fold(f64::INFINITY, f64::min)
    }

    /// The hypothetical (ε, δ) guarantee after `rounds` rounds at the
    /// **nominal** sampling rate (without mutating the accountant),
    /// minimised over the default order grid. A projection for schedule
    /// planning — the authoritative spent budget is [`RdpAccountant::epsilon`].
    pub fn epsilon_after(&self, rounds: u64, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0, "delta must lie in (0, 1)");
        if rounds == 0 {
            return 0.0;
        }
        if self.noise_multiplier == 0.0 {
            return f64::INFINITY;
        }
        let log_inv_delta = (1.0 / delta).ln();
        DEFAULT_ORDERS
            .iter()
            .map(|&alpha| {
                let total_rdp =
                    rounds as f64 * Self::rdp_once(self.noise_multiplier, alpha, self.sampling_rate);
                total_rdp + log_inv_delta / (alpha - 1.0)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest number of rounds after which the (ε, δ) budget is
    /// exceeded, or `None` if `max_rounds` rounds stay within budget.
    pub fn rounds_until_budget(&self, epsilon: f64, delta: f64, max_rounds: u64) -> Option<u64> {
        (1..=max_rounds).find(|&t| self.epsilon_after(t, delta) > epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rounds_spend_nothing() {
        let accountant = RdpAccountant::new(1.0, 0.1);
        assert_eq!(accountant.epsilon(1e-5), 0.0);
        assert_eq!(accountant.rounds(), 0);
    }

    #[test]
    fn epsilon_grows_with_rounds() {
        let accountant = RdpAccountant::new(1.1, 0.1);
        let e10 = accountant.epsilon_after(10, 1e-5);
        let e100 = accountant.epsilon_after(100, 1e-5);
        let e1000 = accountant.epsilon_after(1000, 1e-5);
        assert!(e10 > 0.0);
        assert!(e100 > e10);
        assert!(e1000 > e100);
        assert!(e1000.is_finite());
    }

    #[test]
    fn epsilon_shrinks_with_more_noise() {
        let low_noise = RdpAccountant::new(0.8, 0.1).epsilon_after(200, 1e-5);
        let high_noise = RdpAccountant::new(2.0, 0.1).epsilon_after(200, 1e-5);
        assert!(high_noise < low_noise);
    }

    #[test]
    fn epsilon_shrinks_with_smaller_sampling_rate() {
        let dense = RdpAccountant::new(1.1, 0.5).epsilon_after(200, 1e-5);
        let sparse = RdpAccountant::new(1.1, 0.05).epsilon_after(200, 1e-5);
        assert!(sparse < dense);
    }

    #[test]
    fn no_noise_means_infinite_epsilon() {
        let accountant = RdpAccountant::new(0.0, 0.1);
        assert!(accountant.epsilon_after(1, 1e-5).is_infinite());
    }

    #[test]
    fn full_participation_uses_the_plain_gaussian_bound() {
        // With q = 1 and one round, ε ≈ min_α α/(2z²) + log(1/δ)/(α-1),
        // which for z = 4 and δ = 1e-5 is well below the q→1 limit of the
        // subsampled formula (which would diverge).
        let accountant = RdpAccountant::new(4.0, 1.0);
        let eps = accountant.epsilon_after(1, 1e-5);
        assert!(eps.is_finite() && eps > 0.0);
        assert!(eps < 5.0, "one round of z=4 should be modest, got {eps}");
    }

    #[test]
    fn moments_accountant_magnitude_is_reasonable() {
        // z = 1.1, q = 0.01, T = 1000, δ = 1e-5: the literature reports ε in
        // the low single digits; the leading-order bound lands close to 2.
        let eps = RdpAccountant::new(1.1, 0.01).epsilon_after(1000, 1e-5);
        assert!(eps > 0.5 && eps < 4.0, "unexpected epsilon {eps}");
    }

    #[test]
    fn stepping_matches_epsilon_after() {
        let mut accountant = RdpAccountant::new(1.0, 0.2);
        for _ in 0..25 {
            accountant.step();
        }
        accountant.step_many(25);
        assert_eq!(accountant.rounds(), 50);
        let via_steps = accountant.epsilon(1e-6);
        let direct = accountant.epsilon_after(50, 1e-6);
        assert!((via_steps - direct).abs() < 1e-12);
    }

    #[test]
    fn rounds_until_budget_finds_the_crossing() {
        let accountant = RdpAccountant::new(1.0, 0.1);
        let budget = accountant.epsilon_after(100, 1e-5);
        let crossing = accountant
            .rounds_until_budget(budget, 1e-5, 500)
            .expect("budget must be exceeded within 500 rounds");
        assert!(crossing > 100 && crossing <= 500);
        assert!(accountant.rounds_until_budget(f64::INFINITY, 1e-5, 50).is_none());
    }

    #[test]
    fn dropout_rounds_spend_less_than_the_nominal_rate() {
        // 50 nominal-rate rounds vs 50 rounds where dropout halved the
        // participant count: the dropout run must report a smaller ε, and
        // mixing actual rates must land between the two pure schedules.
        let nominal = 0.4f64;
        let mut full = RdpAccountant::new(1.0, nominal as f32);
        let mut halved = RdpAccountant::new(1.0, nominal as f32);
        let mut mixed = RdpAccountant::new(1.0, nominal as f32);
        for round in 0..50 {
            full.step();
            halved.step_with_rate(nominal / 2.0);
            mixed.step_with_rate(if round % 2 == 0 { nominal } else { nominal / 2.0 });
        }
        let (e_full, e_half, e_mix) =
            (full.epsilon(1e-5), halved.epsilon(1e-5), mixed.epsilon(1e-5));
        assert!(e_half < e_mix && e_mix < e_full, "{e_half} / {e_mix} / {e_full}");
        // The frozen-rate bug this guards against: stepping at the nominal
        // rate regardless of participation reports e_full for all three.
        assert_eq!(full.rounds(), 50);
    }

    #[test]
    fn step_with_full_participation_uses_the_plain_gaussian_bound() {
        let mut actual = RdpAccountant::new(2.0, 0.5);
        actual.step_with_rate(1.0);
        let reference = RdpAccountant::new(2.0, 1.0).epsilon_after(1, 1e-5);
        assert_eq!(actual.epsilon(1e-5), reference);
    }

    #[test]
    fn restore_reproduces_the_spent_budget_bitwise() {
        let mut original = RdpAccountant::new(1.1, 0.3);
        for round in 0..37 {
            original.step_with_rate(0.05 + 0.01 * (round % 7) as f64);
        }
        let restored = RdpAccountant::restore(
            original.noise_multiplier(),
            original.sampling_rate(),
            original.rounds(),
            original.spent_rdp().to_vec(),
        )
        .expect("valid record restores");
        assert_eq!(restored.rounds(), original.rounds());
        assert_eq!(
            restored.epsilon(1e-5).to_bits(),
            original.epsilon(1e-5).to_bits(),
            "restored epsilon must match bitwise"
        );
        // Continuing both accountants keeps them identical.
        let mut a = original.clone();
        let mut b = restored;
        a.step_with_rate(0.11);
        b.step_with_rate(0.11);
        assert_eq!(a.epsilon(1e-6).to_bits(), b.epsilon(1e-6).to_bits());
    }

    #[test]
    fn restore_rejects_malformed_records() {
        assert!(RdpAccountant::restore(1.0, 0.0, 1, vec![0.0; DEFAULT_ORDERS.len()]).is_err());
        assert!(RdpAccountant::restore(-1.0, 0.5, 1, vec![0.0; DEFAULT_ORDERS.len()]).is_err());
        assert!(RdpAccountant::restore(1.0, 0.5, 1, vec![0.0; 3]).is_err(), "order-grid mismatch");
        let mut bad = vec![0.0; DEFAULT_ORDERS.len()];
        bad[0] = -1.0;
        assert!(RdpAccountant::restore(1.0, 0.5, 1, bad.clone()).is_err());
        bad[0] = f64::NAN;
        assert!(RdpAccountant::restore(1.0, 0.5, 1, bad).is_err());
        assert_eq!(RdpAccountant::orders(), DEFAULT_ORDERS);
    }

    #[test]
    #[should_panic]
    fn zero_participation_step_is_rejected() {
        RdpAccountant::new(1.0, 0.5).step_with_rate(0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_sampling_rate_is_rejected() {
        let _ = RdpAccountant::new(1.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_delta_is_rejected() {
        let _ = RdpAccountant::new(1.0, 0.5).epsilon_after(1, 1.5);
    }
}
