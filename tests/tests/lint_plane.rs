//! Determinism lint plane integration tests.
//!
//! Two halves, mirroring the plane itself:
//!
//! * **Static** — the live tree passes `fedcross-lint --deny-all`: no
//!   unordered-map iteration on trajectory paths, no wall-clock/OS-entropy
//!   calls outside `bench`, every `SeededRng::fork` audited, no FMA or
//!   unordered parallel float reductions in kernel files, every `unsafe`
//!   justified, every `*_into` kernel paired (see docs/LINTS.md).
//! * **Runtime** — every registered [`AlgorithmSpec`] produces a bitwise
//!   identical trajectory at rayon threads ∈ {1, 2, 4} and under permuted
//!   upload arrival order, and its training state round-trips through
//!   snapshot/restore bitwise while shape-mismatched state is rejected.
//!
//! The runtime half is deliberately non-vacuous: one test proves the upload
//! shuffle really permutes arrival order, so the invariance tests cannot
//! pass by the shuffle silently doing nothing.

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_bench::determinism::{spec_fingerprint, sweep_spec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{RoundContext, RoundReport};
use fedcross_flsim::{
    DeviceModel, FaultPlan, FederatedAlgorithm, LocalTrainConfig, RoundPolicy, Simulation,
    SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::params::ParamBlock;
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;
use std::path::Path;

// ---------------------------------------------------------------------------
// Static half: the tree itself is lint-clean.
// ---------------------------------------------------------------------------

#[test]
fn live_tree_passes_the_determinism_lints() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("tests crate lives directly under the workspace root");
    let report = fedcross_lint::lint_tree(root).expect("lint walk failed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "determinism lint violations in the tree:\n{}",
        violations
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------------------------------------------------------------------
// Runtime half: schedule invariance.
// ---------------------------------------------------------------------------

/// The tentpole assertion: for every registered algorithm, the trajectory
/// fingerprint (metric bits, comm counters, final model bits) is identical
/// at 1/2/4 rayon threads and under two different upload-arrival
/// permutations. One test fn (not one per spec) so the global rayon thread
/// override is never raced by a sibling test.
#[test]
fn registered_algorithms_are_schedule_invariant() {
    for spec in AlgorithmSpec::registered() {
        let outcome = sweep_spec(spec, &[1, 2, 4], &[3, 17]);
        let bad: Vec<String> = outcome
            .variants
            .iter()
            .filter(|(_, fp)| *fp != outcome.canonical)
            .map(|(variant, fp)| {
                format!(
                    "{}: {variant} -> {fp:016x} != canonical {:016x}",
                    outcome.label, outcome.canonical
                )
            })
            .collect();
        assert!(
            bad.is_empty(),
            "schedule-dependent trajectories:\n{}",
            bad.join("\n")
        );
    }
}

/// An algorithm that records the client order in which uploads reach it.
struct OrderProbe {
    global: ParamBlock,
    orders: Vec<Vec<usize>>,
}

impl FederatedAlgorithm for OrderProbe {
    fn name(&self) -> String {
        "order-probe".to_string()
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .map(|&client| (client, self.global.clone()))
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        self.orders.push(updates.iter().map(|u| u.client).collect());
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }
}

/// Non-vacuity: `with_upload_shuffle` really permutes the arrival order (the
/// invariance test above would pass trivially if the shuffle were a no-op).
#[test]
fn upload_shuffle_actually_permutes_arrival_order() {
    let run = |shuffle: Option<u64>| -> Vec<Vec<usize>> {
        let (data, template) = tiny_setup(9);
        let mut probe = OrderProbe {
            global: ParamBlock::from(template.params_flat()),
            orders: Vec::new(),
        };
        let mut sim = Simulation::new(tiny_config(4, 3), &data, template);
        if let Some(seed) = shuffle {
            sim = sim.with_upload_shuffle(seed);
        }
        let _ = sim.run(&mut probe);
        probe.orders
    };

    let dispatch_order = run(None);
    let shuffled_order = run(Some(7));
    assert_eq!(dispatch_order.len(), 4);
    assert_eq!(shuffled_order.len(), 4);
    // Same participants every round (selection is untouched by the shuffle)...
    for (plain, shuffled) in dispatch_order.iter().zip(&shuffled_order) {
        let mut a = plain.clone();
        let mut b = shuffled.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "shuffle changed the participant set");
    }
    // ...but the arrival sequence differs in at least one round.
    assert_ne!(
        dispatch_order, shuffled_order,
        "upload shuffle left every round's arrival order unchanged — \
         the schedule-invariance tests would be vacuous"
    );
}

// ---------------------------------------------------------------------------
// Runtime half: registry-driven snapshot/restore invariants.
// ---------------------------------------------------------------------------

fn tiny_setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 12,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 4),
            fc_hidden: 8,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn tiny_config(rounds: usize, clients_per_round: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round,
        // Only the forced final evaluation — these tests inspect state, not
        // learning curves.
        eval_every: 100,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 6,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 11,
    }
}

const TINY_K: usize = 3;

fn is_buffered(spec: AlgorithmSpec) -> bool {
    matches!(
        spec,
        AlgorithmSpec::BufferedFedAvg { .. } | AlgorithmSpec::BufferedFedCross { .. }
    )
}

/// Runs `spec` for two rounds so its state is populated (control variates,
/// update directions, staleness buffers, ...) and returns the trained
/// algorithm plus the initial parameter vector.
fn trained_algorithm(spec: AlgorithmSpec) -> (Box<dyn FederatedAlgorithm>, Vec<f32>) {
    let (data, template) = tiny_setup(4);
    let init = template.params_flat();
    let mut algo = build_algorithm(spec, init.clone(), data.num_clients(), TINY_K);
    let mut sim = Simulation::new(tiny_config(2, TINY_K), &data, template);
    if is_buffered(spec) {
        // Run buffered specs under a buffered service plane with stragglers,
        // so the cross-round buffer (the interesting part of their state)
        // actually carries entries into the snapshot.
        sim = sim
            .with_round_policy(RoundPolicy::Buffered {
                goal_k: 2,
                max_staleness: 4,
            })
            .with_devices(DeviceModel::two_tier(0.34, 3.0, 5))
            .with_faults(FaultPlan {
                stall_prob: 0.2,
                ..Default::default()
            });
    }
    let _ = sim.run(algo.as_mut());
    (algo, init)
}

/// Every registered algorithm's state round-trips bitwise: snapshot a
/// trained instance, restore into a freshly constructed twin, and both the
/// re-snapshot and the deployed parameters must be *equal in every bit*
/// (AlgorithmState derives PartialEq over the raw f32 vectors).
#[test]
fn registered_state_round_trips_bitwise() {
    for spec in AlgorithmSpec::registered() {
        let (trained, init) = trained_algorithm(spec);
        let state = trained
            .snapshot_state()
            .unwrap_or_else(|e| panic!("{}: snapshot failed: {e}", spec.label()));

        let mut twin = build_algorithm(spec, init, 6, TINY_K);
        twin.restore_state(&state)
            .unwrap_or_else(|e| panic!("{}: restore failed: {e}", spec.label()));

        let resnap = twin
            .snapshot_state()
            .unwrap_or_else(|e| panic!("{}: re-snapshot failed: {e}", spec.label()));
        assert_eq!(
            state,
            resnap,
            "{}: state changed across a snapshot/restore round-trip",
            spec.label()
        );
        let a = trained.global_params();
        let b = twin.global_params();
        assert_eq!(a.len(), b.len(), "{}: param count changed", spec.label());
        let bitwise = a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(
            bitwise,
            "{}: deployed parameters differ after restore",
            spec.label()
        );
    }
}

/// Every registered algorithm rejects shape-mismatched state instead of
/// limping on: a model vector one element too long (dim mismatch) and a
/// model list one entry too long (K mismatch) must both fail restore.
#[test]
fn registered_restore_rejects_mismatched_state() {
    for spec in AlgorithmSpec::registered() {
        let init = vec![0.25f32; 16];
        let dim = init.len();

        let mut algo = build_algorithm(spec, init.clone(), 6, TINY_K);
        let wrong_dim = AlgorithmState::single_model(ParamBlock::zeros(dim + 1));
        let err: Result<(), StateError> = algo.restore_state(&wrong_dim);
        assert!(
            err.is_err(),
            "{}: accepted a state with dim {} instead of {dim}",
            spec.label(),
            dim + 1
        );

        let mut algo = build_algorithm(spec, init, 6, TINY_K);
        let wrong_k =
            AlgorithmState::multi_model(vec![ParamBlock::zeros(dim); TINY_K + 1]);
        assert!(
            algo.restore_state(&wrong_k).is_err(),
            "{}: accepted a state with {} models instead of its own count",
            spec.label(),
            TINY_K + 1
        );
    }
}

/// The fingerprint itself is stable: two identical runs agree, and the
/// canonical fingerprint is sensitive to the spec (so a broken harness that
/// fingerprints nothing cannot hide behind 0 == 0).
#[test]
fn fingerprints_are_stable_and_spec_sensitive() {
    let a = spec_fingerprint(AlgorithmSpec::fedcross_default(), None);
    let b = spec_fingerprint(AlgorithmSpec::fedcross_default(), None);
    assert_eq!(a, b, "same spec, same schedule, different fingerprint");
    let avg = spec_fingerprint(AlgorithmSpec::FedAvg, None);
    assert_ne!(a, avg, "FedCross and FedAvg fingerprints collide");
}
