//! Convolution and pooling kernels (`im2col` / `col2im`, max / average pooling).
//!
//! Layout convention: image batches are rank-4 `[N, C, H, W]` (batch, channel,
//! height, width), matching the layer implementations in `fedcross-nn`.

use crate::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Kernel height/width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added to each spatial border.
    pub padding: usize,
}

impl Conv2dGeom {
    /// Creates a geometry descriptor.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of extent `size`.
    pub fn out_size(&self, size: usize) -> usize {
        (size + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Unfolds an `[N, C, H, W]` batch into the `im2col` matrix
/// `[N * OH * OW, C * k * k]`.
///
/// Each output row contains the receptive field of one output pixel, so a 2-D
/// convolution becomes a single matrix product against the reshaped kernel
/// bank.
///
/// # Panics
/// Panics if `input` is not rank-4.
pub fn im2col(input: &Tensor, geom: Conv2dGeom) -> Tensor {
    let (rows, row_len) = im2col_shape(input, geom);
    let mut out = Tensor::zeros(&[rows, row_len]);
    im2col_into(input, geom, &mut out);
    out
}

/// Output shape `[N * OH * OW, C * k * k]` of [`im2col`] for `input`.
pub fn im2col_shape(input: &Tensor, geom: Conv2dGeom) -> (usize, usize) {
    assert_eq!(input.rank(), 4, "im2col expects an [N, C, H, W] tensor");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    (
        n * geom.out_size(h) * geom.out_size(w),
        c * geom.kernel * geom.kernel,
    )
}

/// Destination-passing form of [`im2col`]: unfolds into `out` (which must
/// have `N*OH*OW * C*k*k` elements; contents are fully overwritten). Bitwise
/// identical to the allocating form.
pub fn im2col_into(input: &Tensor, geom: Conv2dGeom, out: &mut Tensor) {
    let (rows, row_len) = im2col_shape(input, geom);
    assert_eq!(out.numel(), rows * row_len, "im2col_into: wrong output size");
    out.reshape_in_place(&[rows, row_len]);
    out.fill(0.0);
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = geom.kernel;
    let oh = geom.out_size(h);
    let ow = geom.out_size(w);
    let data = input.data();
    let out = out.data_mut();

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (ni * oh + oy) * ow + ox;
                let row = &mut out[row_idx * row_len..(row_idx + 1) * row_len];
                let iy0 = (oy * geom.stride) as isize - geom.padding as isize;
                let ix0 = (ox * geom.stride) as isize - geom.padding as isize;
                // The kx extent of the kernel that lands inside the image is
                // contiguous in both the input row and the im2col row, so
                // each (channel, ky) line is one slice copy instead of k
                // bounds-checked scalar moves.
                let kx_lo = (-ix0).clamp(0, k as isize) as usize;
                let kx_hi = (w as isize - ix0).clamp(0, k as isize) as usize;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize || kx_lo >= kx_hi {
                            continue;
                        }
                        let col = (ci * k + ky) * k;
                        let src = ((ni * c + ci) * h + iy as usize) * w
                            + (ix0 + kx_lo as isize) as usize;
                        row[col + kx_lo..col + kx_hi]
                            .copy_from_slice(&data[src..src + (kx_hi - kx_lo)]);
                    }
                }
            }
        }
    }
}

/// Folds an `im2col` matrix back into an `[N, C, H, W]` tensor, summing
/// overlapping contributions. This is the adjoint of [`im2col`] and is used to
/// propagate gradients through a convolution to its input.
///
/// # Panics
/// Panics if the column matrix does not match the geometry implied by
/// `input_dims` and `geom`.
pub fn col2im(cols: &Tensor, input_dims: &[usize], geom: Conv2dGeom) -> Tensor {
    let mut out = Tensor::zeros(input_dims);
    col2im_into(cols, input_dims, geom, &mut out);
    out
}

/// Destination-passing form of [`col2im`]: folds into `out` (which must have
/// `N*C*H*W` elements; contents are fully overwritten before the overlapping
/// sums accumulate). Bitwise identical to the allocating form.
pub fn col2im_into(cols: &Tensor, input_dims: &[usize], geom: Conv2dGeom, out: &mut Tensor) {
    assert_eq!(input_dims.len(), 4, "col2im expects [N, C, H, W] dims");
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let k = geom.kernel;
    let oh = geom.out_size(h);
    let ow = geom.out_size(w);
    let row_len = c * k * k;
    assert_eq!(
        cols.dims(),
        &[n * oh * ow, row_len],
        "col matrix shape does not match geometry"
    );
    assert_eq!(out.numel(), n * c * h * w, "col2im_into: wrong output size");
    out.reshape_in_place(input_dims);
    out.fill(0.0);
    let out = out.data_mut();
    let data = cols.data();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (ni * oh + oy) * ow + ox;
                let row = &data[row_idx * row_len..(row_idx + 1) * row_len];
                let iy0 = (oy * geom.stride) as isize - geom.padding as isize;
                let ix0 = (ox * geom.stride) as isize - geom.padding as isize;
                // As in im2col_into, the in-bounds kx extent is contiguous on
                // both sides; accumulate it slice-against-slice in ascending
                // kx order (the exact order of the scalar loop).
                let kx_lo = (-ix0).clamp(0, k as isize) as usize;
                let kx_hi = (w as isize - ix0).clamp(0, k as isize) as usize;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize || kx_lo >= kx_hi {
                            continue;
                        }
                        let col = (ci * k + ky) * k;
                        let dst = ((ni * c + ci) * h + iy as usize) * w
                            + (ix0 + kx_lo as isize) as usize;
                        let src = &row[col + kx_lo..col + kx_hi];
                        for (o, &v) in out[dst..dst + kx_hi - kx_lo].iter_mut().zip(src) {
                            *o += v;
                        }
                    }
                }
            }
        }
    }
}

/// Result of a max-pooling forward pass: the pooled tensor plus the flat index
/// (into the input) of each selected maximum, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index of the input element that won.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over an `[N, C, H, W]` tensor.
pub fn max_pool2d(input: &Tensor, geom: Conv2dGeom) -> MaxPoolOutput {
    let dims = input.dims();
    let (n, c) = (dims[0], dims[1]);
    let oh = geom.out_size(dims[2]);
    let ow = geom.out_size(dims[3]);
    let mut output = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = Vec::new();
    max_pool2d_into(input, geom, &mut output, &mut argmax);
    MaxPoolOutput { output, argmax }
}

/// Destination-passing form of [`max_pool2d`]: writes the pooled tensor into
/// `out` (fully overwritten) and the winning indices into `argmax` (cleared
/// and refilled, reusing its capacity). Bitwise identical to the allocating
/// form.
pub fn max_pool2d_into(
    input: &Tensor,
    geom: Conv2dGeom,
    out: &mut Tensor,
    argmax: &mut Vec<usize>,
) {
    assert_eq!(input.rank(), 4, "max_pool2d expects an [N, C, H, W] tensor");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = geom.kernel;
    let oh = geom.out_size(h);
    let ow = geom.out_size(w);
    assert_eq!(out.numel(), n * c * oh * ow, "max_pool2d_into: wrong output size");
    out.reshape_in_place(&[n, c, oh, ow]);
    argmax.clear();
    argmax.resize(n * c * oh * ow, 0);
    let out = out.data_mut();
    let data = input.data();

    if geom.padding == 0 {
        // Common case (all pooling layers in the model zoo): every window is
        // fully in bounds, so the per-element boundary checks vanish. The
        // scan order (ky outer, kx inner, strict `>`) is identical to the
        // general loop, so winners and ties resolve to the same argmax.
        for ni in 0..n {
            for ci in 0..c {
                let plane = (ni * c + ci) * h;
                for oy in 0..oh {
                    let iy0 = oy * geom.stride;
                    for ox in 0..ow {
                        let out_idx = ((ni * c + ci) * oh + oy) * ow + ox;
                        let ix0 = ox * geom.stride;
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..k {
                            let row = (plane + iy0 + ky) * w + ix0;
                            for (kx, &v) in data[row..row + k].iter().enumerate() {
                                if v > best {
                                    best = v;
                                    best_idx = row + kx;
                                }
                            }
                        }
                        out[out_idx] = best;
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        return;
    }

    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let out_idx = ((ni * c + ci) * oh + oy) * ow + ox;
                    let iy0 = (oy * geom.stride) as isize - geom.padding as isize;
                    let ix0 = (ox * geom.stride) as isize - geom.padding as isize;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[out_idx] = best;
                    argmax[out_idx] = best_idx;
                }
            }
        }
    }
}

/// Backward pass of max pooling: routes each output gradient to the input
/// position that produced the maximum.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Tensor {
    let mut grad_input = Tensor::zeros(input_dims);
    max_pool2d_backward_into(grad_output, argmax, input_dims, &mut grad_input);
    grad_input
}

/// Destination-passing form of [`max_pool2d_backward`]; `grad_input` is fully
/// overwritten. Bitwise identical to the allocating form.
pub fn max_pool2d_backward_into(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
    grad_input: &mut Tensor,
) {
    assert_eq!(
        grad_output.numel(),
        argmax.len(),
        "argmax length must match output size"
    );
    let numel: usize = input_dims.iter().product();
    assert_eq!(grad_input.numel(), numel, "max_pool2d_backward_into: wrong size");
    grad_input.reshape_in_place(input_dims);
    grad_input.fill(0.0);
    let gi = grad_input.data_mut();
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool2d(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4, "global_avg_pool2d expects rank-4 input");
    let dims = input.dims();
    let mut out = Tensor::zeros(&[dims[0], dims[1]]);
    global_avg_pool2d_into(input, &mut out);
    out
}

/// Destination-passing form of [`global_avg_pool2d`]; `out` is fully
/// overwritten. Bitwise identical to the allocating form.
pub fn global_avg_pool2d_into(input: &Tensor, out: &mut Tensor) {
    assert_eq!(input.rank(), 4, "global_avg_pool2d expects rank-4 input");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(out.numel(), n * c, "global_avg_pool2d_into: wrong output size");
    out.reshape_in_place(&[n, c]);
    let area = (h * w) as f32;
    let out = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let start = (ni * c + ci) * h * w;
            let sum: f32 = input.data()[start..start + h * w].iter().sum();
            out[ni * c + ci] = sum / area;
        }
    }
}

/// Backward pass of global average pooling: spreads each gradient uniformly
/// over the spatial positions it averaged.
pub fn global_avg_pool2d_backward(grad_output: &Tensor, input_dims: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(input_dims);
    global_avg_pool2d_backward_into(grad_output, input_dims, &mut out);
    out
}

/// Destination-passing form of [`global_avg_pool2d_backward`]; `out` is fully
/// overwritten. Bitwise identical to the allocating form.
pub fn global_avg_pool2d_backward_into(
    grad_output: &Tensor,
    input_dims: &[usize],
    out: &mut Tensor,
) {
    assert_eq!(input_dims.len(), 4, "expected [N, C, H, W] dims");
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    assert_eq!(grad_output.dims(), &[n, c], "grad_output must be [N, C]");
    assert_eq!(out.numel(), n * c * h * w, "wrong output size");
    out.reshape_in_place(input_dims);
    let area = (h * w) as f32;
    let out = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_output.data()[ni * c + ci] / area;
            let start = (ni * c + ci) * h * w;
            for v in &mut out[start..start + h * w] {
                *v = g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_out_size() {
        let g = Conv2dGeom::new(3, 1, 1);
        assert_eq!(g.out_size(8), 8);
        let g2 = Conv2dGeom::new(2, 2, 0);
        assert_eq!(g2.out_size(8), 4);
        let g3 = Conv2dGeom::new(3, 2, 1);
        assert_eq!(g3.out_size(8), 4);
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1x1 kernel, stride 1, no padding: im2col is a pure reshape/permute.
        let input = Tensor::arange(2 * 3 * 2 * 2).reshape(&[2, 3, 2, 2]);
        let cols = im2col(&input, Conv2dGeom::new(1, 1, 0));
        assert_eq!(cols.dims(), &[2 * 2 * 2, 3]);
        // First output pixel of first image should contain channel values at (0,0).
        assert_eq!(cols.row(0).data(), &[0.0, 4.0, 8.0]);
    }

    #[test]
    fn im2col_known_patch() {
        // Single 1-channel 3x3 image, 2x2 kernel, stride 1, no padding.
        let input = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let cols = im2col(&input, Conv2dGeom::new(2, 1, 0));
        assert_eq!(cols.dims(), &[4, 4]);
        assert_eq!(cols.row(0).data(), &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(cols.row(3).data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_respects_padding() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&input, Conv2dGeom::new(3, 1, 1));
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output: only the bottom-right 2x2 of the kernel overlaps the image.
        let row = cols.row(0);
        let nonzero = row.data().iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 4);
    }

    #[test]
    fn conv_via_im2col_matches_direct_computation() {
        // 1 image, 1 channel 4x4, one 3x3 kernel of all ones => output = sum of each patch.
        let input = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let geom = Conv2dGeom::new(3, 1, 0);
        let cols = im2col(&input, geom);
        let kernel = Tensor::ones(&[9, 1]); // [C*k*k, out_channels]
        let out = cols.matmul(&kernel); // [4, 1]
        // Patch sums computed by hand.
        assert_eq!(out.data(), &[45.0, 54.0, 81.0, 90.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y (adjoint test).
        let geom = Conv2dGeom::new(3, 1, 1);
        let dims = [2usize, 2, 5, 5];
        let x = Tensor::from_vec(
            (0..dims.iter().product::<usize>())
                .map(|i| ((i * 7 % 11) as f32) - 5.0)
                .collect(),
            &dims,
        );
        let cols = im2col(&x, geom);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| ((i * 3 % 13) as f32) - 6.0).collect(),
            cols.dims(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &dims, geom);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn max_pool_picks_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let pooled = max_pool2d(&input, Conv2dGeom::new(2, 2, 0));
        assert_eq!(pooled.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(pooled.output.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_gradient_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let pooled = max_pool2d(&input, Conv2dGeom::new(2, 2, 0));
        let grad_out = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, input.dims());
        assert_eq!(grad_in.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_averages_each_channel() {
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        let out = global_avg_pool2d(&input);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_uniformly() {
        let grad_out = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let grad_in = global_avg_pool2d_backward(&grad_out, &[1, 2, 2, 2]);
        assert_eq!(grad_in.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_with_stride_one_overlapping_windows() {
        let input = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let pooled = max_pool2d(&input, Conv2dGeom::new(2, 1, 0));
        assert_eq!(pooled.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(pooled.output.data(), &[4.0, 5.0, 7.0, 8.0]);
    }
}
