//! Ablation (extension): the privacy/utility trade-off of differentially
//! private FedAvg and FedCross.
//!
//! Section IV-F1 of the paper argues that FedCross "can easily integrate
//! existing privacy-preserving techniques" because its dispatch / train /
//! upload pipeline is identical to FedAvg's. This harness measures that claim:
//! both methods are run with per-client delta clipping and Gaussian noise at a
//! sweep of noise multipliers, reporting the final accuracy and the (ε, δ)
//! guarantee spent (Rényi accountant, δ = 1e-5).
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin ablation_privacy [--rounds N]
//! ```

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy};
use fedcross_bench::report::{print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{FederatedAlgorithm, Simulation, SimulationConfig};
use fedcross_privacy::mechanism::{DpConfig, NoisePlacement};
use fedcross_privacy::algorithms::{DpFedAvg, DpFedCross, DpFedCrossConfig};

const DELTA: f64 = 1e-5;
const CLIP_NORM: f32 = 1.0;

fn sim_config(config: &ExperimentConfig, data_clients: usize) -> SimulationConfig {
    SimulationConfig {
        rounds: config.rounds,
        clients_per_round: config.clients_per_round.min(data_clients),
        eval_every: config.eval_every,
        eval_batch_size: 64,
        local: config.local,
        seed: config.seed,
    }
}

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());
    let noise_multipliers: Vec<f32> = vec![0.0, 0.05, 0.2, 1.0];

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5));
    let data = build_task(task, &config, config.seed);
    let k = config.clients_per_round.min(data.num_clients());

    println!("Ablation — differential privacy (CIFAR-10, beta=0.5, CNN, clip C={CLIP_NORM})");
    println!(
        "({} clients, K={}, {} rounds, central Gaussian noise, delta={DELTA})\n",
        config.num_clients, config.clients_per_round, config.rounds
    );
    print_header(&[
        ("Method", 14),
        ("Noise z", 9),
        ("Final acc (%)", 14),
        ("Best acc (%)", 14),
        ("Epsilon", 12),
    ]);

    let mut json = Vec::new();
    for &noise_multiplier in &noise_multipliers {
        let dp = DpConfig {
            clip_norm: CLIP_NORM,
            noise_multiplier,
            placement: NoisePlacement::Central,
        };

        // DP-FedAvg.
        let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
        let mut fedavg = DpFedAvg::new(template.params_flat(), dp, config.seed.wrapping_add(7));
        let result = Simulation::new(sim_config(&config, data.num_clients()), &data, template)
            .run(&mut fedavg);
        let epsilon = fedavg.epsilon(DELTA).unwrap_or(f64::INFINITY);
        emit_row(
            "DP-FedAvg",
            noise_multiplier,
            result.final_accuracy_pct(),
            result.best_accuracy_pct(),
            epsilon,
            &mut json,
        );

        // DP-FedCross (scale-mapped alpha = 0.9, lowest similarity).
        let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
        let mut fedcross = DpFedCross::new(
            DpFedCrossConfig {
                alpha: 0.9,
                strategy: SelectionStrategy::LowestSimilarity,
                dp,
                ..Default::default()
            },
            template.params_flat(),
            k,
            config.seed.wrapping_add(11),
        );
        let result = Simulation::new(sim_config(&config, data.num_clients()), &data, template)
            .run(&mut fedcross);
        let epsilon = fedcross.epsilon(DELTA).unwrap_or(f64::INFINITY);
        emit_row(
            "DP-FedCross",
            noise_multiplier,
            result.final_accuracy_pct(),
            result.best_accuracy_pct(),
            epsilon,
            &mut json,
        );
    }

    // Non-private references.
    for (label, private) in [("FedAvg", false), ("FedCross", true)] {
        let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
        let mut algo: Box<dyn FederatedAlgorithm> = if private {
            Box::new(FedCross::new(
                FedCrossConfig {
                    alpha: 0.9,
                    strategy: SelectionStrategy::LowestSimilarity,
                    ..Default::default()
                },
                template.params_flat(),
                k,
            ))
        } else {
            Box::new(DpFedAvg::new(
                template.params_flat(),
                DpConfig {
                    clip_norm: 1e6,
                    noise_multiplier: 0.0,
                    placement: NoisePlacement::Central,
                },
                0,
            ))
        };
        let result = Simulation::new(sim_config(&config, data.num_clients()), &data, template)
            .run(algo.as_mut());
        emit_row(
            &format!("{label} (no DP)"),
            0.0,
            result.final_accuracy_pct(),
            result.best_accuracy_pct(),
            f64::INFINITY,
            &mut json,
        );
    }

    write_json("ablation_privacy.json", &json);
    println!("\nExpected shape: accuracy degrades as the noise multiplier grows while epsilon");
    println!("shrinks, and at every noise level DP-FedCross degrades the same way DP-FedAvg does");
    println!("— the Section IV-F1 claim that the multi-to-multi scheme composes with FedAvg-style");
    println!("privacy mechanisms. (At this reduced scale FedCross itself converges more slowly");
    println!("than FedAvg — see the Table II notes in EXPERIMENTS.md — so compare each method");
    println!("against its own no-DP row, not the two methods against each other.)");
}

fn emit_row(
    method: &str,
    noise: f32,
    final_acc: f32,
    best_acc: f32,
    epsilon: f64,
    json: &mut Vec<serde_json::Value>,
) {
    let epsilon_text = if epsilon.is_finite() {
        format!("{epsilon:.2}")
    } else {
        "inf".to_string()
    };
    print_row(&[
        (method.to_string(), 14),
        (format!("{noise:.2}"), 9),
        (format!("{final_acc:.2}"), 14),
        (format!("{best_acc:.2}"), 14),
        (epsilon_text, 12),
    ]);
    json.push(serde_json::json!({
        "method": method,
        "noise_multiplier": noise,
        "final_accuracy_pct": final_acc,
        "best_accuracy_pct": best_acc,
        "epsilon": if epsilon.is_finite() { Some(epsilon) } else { None },
    }));
}
