//! Table I: method category and communication overhead.
//!
//! Runs every method for a few rounds on a small task and *measures* the
//! per-client auxiliary payload, classifying it the way the paper's Table I
//! does (Low / Medium / High). Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin table1_comm [--rounds N] [--smoke]
//! ```

use fedcross::AlgorithmSpec;
use fedcross_bench::report::{print_header, print_row, write_json};
use fedcross_bench::{run_method, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn category(spec: &AlgorithmSpec) -> &'static str {
    match spec {
        AlgorithmSpec::FedAvg => "Classic",
        AlgorithmSpec::FedProx { .. } => "Global Control Variable",
        AlgorithmSpec::Scaffold => "Global Control Variable",
        AlgorithmSpec::FedGen => "Knowledge Distillation",
        AlgorithmSpec::CluSamp => "Client Grouping",
        AlgorithmSpec::FedCross { .. } => "Multi-Model Guided",
        AlgorithmSpec::RobustFedAvg { .. } | AlgorithmSpec::RobustFedCross { .. } => {
            "Byzantine-Robust"
        }
        AlgorithmSpec::BufferedFedAvg { .. } | AlgorithmSpec::BufferedFedCross { .. } => {
            "Staleness-Aware Buffered"
        }
    }
}

fn main() {
    let args = Args::from_env();
    let mut config = args.apply(ExperimentConfig {
        rounds: 3,
        eval_every: 3,
        ..ExperimentConfig::default()
    });
    config.num_clients = config.num_clients.min(12);

    println!("Table I — Comparison between baseline methods and FedCross");
    println!(
        "(measured over {} rounds, {} clients, K={})\n",
        config.rounds, config.num_clients, config.clients_per_round
    );
    print_header(&[
        ("Method", 10),
        ("Category", 26),
        ("Extra payload (models/contact)", 30),
        ("Comm. Overhead", 14),
        ("Paper says", 10),
    ]);

    let paper_expectation = [
        ("FedAvg", "Low"),
        ("FedProx", "Low"),
        ("SCAFFOLD", "High"),
        ("FedGen", "Medium"),
        ("CluSamp", "Low"),
        ("FedCross", "Low"),
    ];

    let mut rows = Vec::new();
    for spec in AlgorithmSpec::paper_lineup() {
        let outcome = run_method(
            spec,
            TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5)),
            ModelSpec::Cnn,
            &config,
        );
        let extra = outcome
            .result
            .comm
            .extra_models_per_contact(outcome.result.model_params);
        let class = outcome
            .result
            .comm
            .overhead_class(outcome.result.model_params);
        let expected = paper_expectation
            .iter()
            .find(|(name, _)| *name == spec.label())
            .map(|(_, c)| *c)
            .unwrap_or("?");
        print_row(&[
            (spec.label().to_string(), 10),
            (category(&spec).to_string(), 26),
            (format!("{extra:.3}"), 30),
            (class.to_string(), 14),
            (expected.to_string(), 10),
        ]);
        rows.push(serde_json::json!({
            "method": spec.label(),
            "category": category(&spec),
            "extra_models_per_contact": extra,
            "measured_class": class.to_string(),
            "paper_class": expected,
        }));
    }
    write_json("table1_comm.json", &rows);
}
