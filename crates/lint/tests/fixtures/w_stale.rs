// W fixture: a waiver whose window no longer contains a finding of the
// waived rule (W001) and a classification marker whose window no longer
// contains a matching construct (W002) are both stale — errors, not
// leftovers. Linted as crate "core", file "cache.rs".

// lint: allow(D002) — was needed before the clock plumbing landed
pub fn touch(x: u32) -> u32 {
    x + 1
}

// alloc: pooled — leftover from a removed fallback path
pub fn bump(x: u32) -> u32 {
    x + 2
}
