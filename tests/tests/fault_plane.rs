//! Fault-plane integration tests: deadline rounds, fault injection and
//! staleness-aware buffered aggregation.
//!
//! The contracts pinned here:
//!
//! * buffered aggregation ([`fedcross::BufferedFedAvg`] /
//!   [`fedcross::BufferedFedCross`]) is a pure function of the arrival *set* —
//!   permuting arrival order or duplicating transport copies changes no bit
//!   (proptests),
//! * a deadline round with `min_quorum` equal to the cohort size rescues every
//!   late upload and is bitwise identical to a synchronous round,
//! * fault injection tallies what it does ([`fedcross_flsim::FaultTally`]) and
//!   crashed uploads actually shrink participation,
//! * the ISSUE's end-to-end pin: deadline rounds under 40% stragglers converge
//!   to ≥ 90% of the no-straggler accuracy,
//! * a crash between arrival and aggregation (mid-buffer checkpoint) resumes
//!   bitwise, pending stores included.

use fedcross::buffered::{BufferedFedAvg, BufferedFedCross, BufferedFedCrossConfig, BufferedUpload};
use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    DeviceModel, FaultPlan, FederatedAlgorithm, LocalTrainConfig, RoundPolicy, Simulation,
    SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;
use proptest::prelude::*;

fn setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 12,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 4),
            fc_hidden: 8,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sim_config(rounds: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: 3,
        eval_every: 2,
        eval_batch_size: 32,
        local: LocalTrainConfig::fast(),
        seed: 77,
    }
}

fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

// ---------------------------------------------------------------------------
// Order-invariance proptests: the buffered server half must be a pure
// function of the arrival set.
// ---------------------------------------------------------------------------

/// Deterministic delta so a duplicated (client, train_round) pair always
/// carries identical content — exactly what a duplicated transport delivers.
fn arrival(client: usize, slot: usize, train_round: usize, dim: usize) -> BufferedUpload {
    let delta: Vec<f32> = (0..dim)
        .map(|i| ((client * 31 + train_round * 17 + i * 7) % 13) as f32 * 0.05 - 0.3)
        .collect();
    BufferedUpload {
        client,
        slot,
        train_round,
        due_round: train_round,
        copies: 1,
        delta,
        num_samples: 10 + client,
        train_loss: 0.5 + client as f32 * 0.125,
    }
}

/// Builds a unique-client arrival set from raw proptest draws.
fn arrival_set(clients: &[usize], rounds: &[usize], slots: usize, dim: usize) -> Vec<BufferedUpload> {
    let mut seen = Vec::new();
    let mut arrivals = Vec::new();
    for (i, &client) in clients.iter().enumerate() {
        if seen.contains(&client) {
            continue;
        }
        seen.push(client);
        let train_round = rounds[i % rounds.len()];
        arrivals.push(arrival(client, client % slots, train_round, dim));
    }
    arrivals
}

/// The adversarial re-orderings every absorb must be invariant to: a seeded
/// shuffle plus a duplicated transport copy of one arrival.
fn permute_and_duplicate(
    arrivals: &[BufferedUpload],
    perm_seed: u64,
    dup_index: usize,
) -> Vec<BufferedUpload> {
    let mut permuted: Vec<BufferedUpload> = arrivals.to_vec();
    SeededRng::new(perm_seed).shuffle(&mut permuted);
    permuted.push(arrivals[dup_index % arrivals.len()].clone());
    permuted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn buffered_fedavg_absorb_is_order_and_duplicate_invariant(
        clients in prop::collection::vec(0usize..12, 1..8),
        rounds in prop::collection::vec(0usize..5, 8..9),
        perm_seed in 0u64..1_000_000,
        dup_index in 0usize..8,
        staleness_alpha in 0.0f32..2.0,
    ) {
        let dim = 6;
        let arrivals = arrival_set(&clients, &rounds, 1, dim);
        let permuted = permute_and_duplicate(&arrivals, perm_seed, dup_index);

        let mut a = BufferedFedAvg::new(staleness_alpha, vec![0.1; dim], 12);
        let mut b = BufferedFedAvg::new(staleness_alpha, vec![0.1; dim], 12);
        let report_a = a.absorb(4, 1, 4, arrivals);
        let report_b = b.absorb(4, 1, 4, permuted);

        prop_assert!(bitwise_eq(a.global(), b.global()),
            "permuted/duplicated arrivals changed the buffered FedAvg aggregate");
        prop_assert_eq!(report_a.participants, report_b.participants);
        prop_assert_eq!(report_a.total_samples, report_b.total_samples);
        prop_assert_eq!(
            report_a.mean_train_loss.to_bits(),
            report_b.mean_train_loss.to_bits()
        );
    }

    #[test]
    fn buffered_fedcross_absorb_is_order_and_duplicate_invariant(
        clients in prop::collection::vec(0usize..12, 1..8),
        rounds in prop::collection::vec(0usize..5, 8..9),
        perm_seed in 0u64..1_000_000,
        dup_index in 0usize..8,
    ) {
        let dim = 6;
        let k = 3;
        let arrivals = arrival_set(&clients, &rounds, k, dim);
        let permuted = permute_and_duplicate(&arrivals, perm_seed, dup_index);

        let config = BufferedFedCrossConfig::default();
        let mut a = BufferedFedCross::new(config, vec![0.1; dim], k, 12);
        let mut b = BufferedFedCross::new(config, vec![0.1; dim], k, 12);
        let report_a = a.absorb(4, 1, 4, arrivals);
        let report_b = b.absorb(4, 1, 4, permuted);

        for slot in 0..k {
            prop_assert!(
                bitwise_eq(&a.middleware()[slot], &b.middleware()[slot]),
                "middleware slot {} diverged under permuted arrivals", slot
            );
        }
        prop_assert_eq!(report_a.participants, report_b.participants);
        prop_assert_eq!(
            report_a.mean_train_loss.to_bits(),
            report_b.mean_train_loss.to_bits()
        );
    }
}

// ---------------------------------------------------------------------------
// Deadline rounds and fault injection at the engine level.
// ---------------------------------------------------------------------------

#[test]
fn full_quorum_deadline_is_bitwise_identical_to_synchronous() {
    // min_quorum = clients_per_round rescues every late upload, so the round
    // processes the identical update set in the identical order — latency
    // draws are pure functions and consume no shared RNG state.
    let (data, template) = setup(5);
    let config = sim_config(4);
    let devices = DeviceModel::two_tier(0.5, 8.0, 13);
    let build = || {
        build_algorithm(
            AlgorithmSpec::fedcross_default(),
            template.params_flat(),
            data.num_clients(),
            3,
        )
    };

    let mut sync_algo = build();
    let sync = Simulation::new(config, &data, template.clone_model()).run(sync_algo.as_mut());

    let mut deadline_algo = build();
    let deadline = Simulation::new(config, &data, template.clone_model())
        .with_devices(devices)
        .with_round_policy(RoundPolicy::Deadline {
            budget: 2.0,
            min_quorum: 3,
        })
        .run(deadline_algo.as_mut());

    assert!(bitwise_eq(
        &sync_algo.global_params(),
        &deadline_algo.global_params()
    ));
    assert_eq!(sync.history, deadline.history);
    // The rescue actually fired: the 8× stragglers all blow a 2.0 budget.
    assert!(deadline.faults.quorum_rescued > 0);
    assert_eq!(deadline.faults.missed_deadline, 0);
    assert_eq!(sync.faults.quorum_rescued, 0, "sync rounds draw no fates");
}

#[test]
fn deadline_without_quorum_discards_stragglers_and_tallies_them() {
    let (data, template) = setup(5);
    let config = sim_config(4);
    let mut algo = build_algorithm(
        AlgorithmSpec::FedAvg,
        template.params_flat(),
        data.num_clients(),
        3,
    );
    let result = Simulation::new(config, &data, template.clone_model())
        .with_devices(DeviceModel::two_tier(0.5, 8.0, 13))
        .with_round_policy(RoundPolicy::Deadline {
            budget: 2.0,
            min_quorum: 0,
        })
        .run(algo.as_mut());
    assert!(
        result.faults.missed_deadline > 0,
        "half the fleet at 8x must miss a 2.0 budget at least once"
    );
    assert_eq!(result.faults.quorum_rescued, 0, "min_quorum 0 never rescues");
    assert_eq!(result.rounds_completed, 4, "discarded uploads do not stall rounds");
}

#[test]
fn crash_faults_shrink_participation_and_are_tallied() {
    let (data, template) = setup(5);
    let config = sim_config(6);
    let faults = FaultPlan {
        crash_prob: 0.4,
        ..Default::default()
    };
    let run = |faults: Option<FaultPlan>| {
        let mut algo = build_algorithm(
            AlgorithmSpec::FedAvg,
            template.params_flat(),
            data.num_clients(),
            3,
        );
        let mut sim = Simulation::new(config, &data, template.clone_model());
        if let Some(f) = faults {
            sim = sim.with_faults(f);
        }
        sim.run(algo.as_mut())
    };
    let clean = run(None);
    let faulty = run(Some(faults));
    assert_eq!(clean.faults.crashed, 0);
    assert!(faulty.faults.crashed > 0, "crash prob 0.4 over 18 uploads");
    // Lost uploads change the trajectory: the faulty run trained on fewer
    // updates, so its learning curve cannot match the clean one.
    assert_ne!(clean.history, faulty.history);
}

#[test]
fn duplicate_faults_are_deduped_not_double_counted() {
    // Duplicates under a synchronous-server policy are tally-only: the round
    // must stay bitwise identical to a fault-free run.
    let (data, template) = setup(5);
    let config = sim_config(4);
    let build = || {
        build_algorithm(
            AlgorithmSpec::FedAvg,
            template.params_flat(),
            data.num_clients(),
            3,
        )
    };
    let mut clean_algo = build();
    let clean = Simulation::new(config, &data, template.clone_model()).run(clean_algo.as_mut());
    let mut dup_algo = build();
    let dup = Simulation::new(config, &data, template.clone_model())
        .with_faults(FaultPlan {
            duplicate_prob: 0.6,
            ..Default::default()
        })
        .run(dup_algo.as_mut());
    assert!(dup.faults.duplicated > 0);
    assert!(bitwise_eq(
        &clean_algo.global_params(),
        &dup_algo.global_params()
    ));
    assert_eq!(clean.history, dup.history);
}

#[test]
fn exhausted_server_retries_abandon_the_round_but_not_the_run() {
    let (data, template) = setup(5);
    let config = sim_config(6);
    let mut algo = build_algorithm(
        AlgorithmSpec::fedcross_default(),
        template.params_flat(),
        data.num_clients(),
        3,
    );
    let result = Simulation::new(config, &data, template.clone_model())
        .with_faults(FaultPlan {
            server_fail_prob: 0.5,
            max_retries: 1,
            ..Default::default()
        })
        .run(algo.as_mut());
    assert!(
        result.faults.apply_retries > 0 || result.faults.rounds_lost > 0,
        "a 0.5 apply-failure rate over 6 rounds must fire at least once"
    );
    assert_eq!(result.rounds_completed, 6, "lost rounds still advance the run");
}

// ---------------------------------------------------------------------------
// The ISSUE's end-to-end pin: deadline rounds under 40% stragglers reach
// ≥ 90% of the no-straggler accuracy.
// ---------------------------------------------------------------------------

#[test]
fn deadline_rounds_under_stragglers_converge_close_to_the_clean_run() {
    // A larger test set than the shared fixture: a 40-sample set quantizes
    // accuracy in 2.5% steps, far coarser than the 10% band being pinned.
    let mut rng = SeededRng::new(5);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 20,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 4),
            fc_hidden: 8,
            kernel: 3,
        },
        &mut rng,
    );
    let config = sim_config(12);
    let build = || {
        build_algorithm(
            AlgorithmSpec::fedcross_default(),
            template.params_flat(),
            data.num_clients(),
            3,
        )
    };

    let mut clean_algo = build();
    let clean = Simulation::new(config, &data, template.clone_model()).run(clean_algo.as_mut());

    let mut straggled_algo = build();
    let straggled = Simulation::new(config, &data, template.clone_model())
        .with_devices(DeviceModel::two_tier(0.4, 8.0, 29))
        .with_round_policy(RoundPolicy::Deadline {
            budget: 2.0,
            min_quorum: 2,
        })
        .run(straggled_algo.as_mut());

    // Mean of the last two evaluations: single-round accuracy on a tiny
    // synthetic test set is too noisy to pin directly.
    let final_accuracy = |r: &fedcross_flsim::engine::SimulationResult| {
        let records = r.history.records();
        let tail = &records[records.len() - 2..];
        tail.iter().map(|rec| rec.accuracy).sum::<f32>() / tail.len() as f32
    };
    let clean_acc = final_accuracy(&clean);
    let straggled_acc = final_accuracy(&straggled);
    assert!(
        straggled_acc >= 0.9 * clean_acc,
        "deadline rounds under 40% stragglers fell below 90% of the clean \
         accuracy: {straggled_acc} vs {clean_acc}"
    );
}

// ---------------------------------------------------------------------------
// Mid-buffer crash: pending stores resume bitwise.
// ---------------------------------------------------------------------------

fn assert_mid_buffer_resume_is_bitwise<A: FederatedAlgorithm>(
    build: impl Fn(Vec<f32>, usize) -> A,
    tag: &str,
    pending_of: impl Fn(&A) -> usize,
) {
    let (data, template) = setup(5);
    let config = sim_config(6);
    let make_sim = || {
        Simulation::new(config, &data, template.clone_model())
            .with_devices(DeviceModel::two_tier(0.5, 3.0, 17))
            .with_round_policy(RoundPolicy::Buffered {
                goal_k: 2,
                max_staleness: 3,
            })
            .with_faults(FaultPlan {
                stall_prob: 0.3,
                max_stall: 2,
                duplicate_prob: 0.2,
                ..Default::default()
            })
    };
    let build = || build(template.params_flat(), data.num_clients());

    let mut whole = build();
    let uninterrupted = make_sim().run(&mut whole);

    let mut first = build();
    let sim = make_sim();
    let partial = sim.run_segment(&mut first, 0, 3);
    assert!(
        pending_of(&first) > 0,
        "{tag}: the checkpoint round must actually have uploads in flight or \
         buffered for this test to pin anything"
    );
    let checkpoint = sim.checkpoint(&first, &partial).expect("snapshot supported");
    drop(first);

    let mut fresh = build();
    let resumed = make_sim()
        .resume(&checkpoint, &mut fresh)
        .expect("checkpoint matches the resuming simulation");

    assert!(
        bitwise_eq(&whole.global_params(), &fresh.global_params()),
        "{tag}: mid-buffer resume diverged from the uninterrupted run"
    );
    assert_eq!(resumed.history, uninterrupted.history, "{tag}: history diverged");
    assert_eq!(resumed.comm, uninterrupted.comm, "{tag}: comm totals diverged");
}

#[test]
fn buffered_fedavg_resumes_bitwise_from_a_mid_buffer_checkpoint() {
    assert_mid_buffer_resume_is_bitwise(
        |init, num_clients| BufferedFedAvg::new(0.5, init, num_clients),
        "buffered-fedavg",
        |algo| algo.inflight().len() + algo.buffer().len(),
    );
}

#[test]
fn buffered_fedcross_resumes_bitwise_from_a_mid_buffer_checkpoint() {
    assert_mid_buffer_resume_is_bitwise(
        |init, num_clients| {
            BufferedFedCross::new(BufferedFedCrossConfig::default(), init, 3, num_clients)
        },
        "buffered-fedcross",
        |algo| algo.inflight().len() + algo.buffer().len(),
    );
}

#[test]
fn buffered_runs_make_progress_under_stragglers() {
    // Sanity: the buffered policy is not a no-op — staleness-weighted rounds
    // actually move the model and aggregate late arrivals.
    let (data, template) = setup(5);
    let config = sim_config(8);
    let mut algo = BufferedFedAvg::new(0.5, template.params_flat(), data.num_clients());
    let init = template.params_flat();
    let result = Simulation::new(config, &data, template.clone_model())
        .with_devices(DeviceModel::two_tier(0.4, 3.0, 17))
        .with_round_policy(RoundPolicy::Buffered {
            goal_k: 2,
            max_staleness: 4,
        })
        .run(&mut algo);
    assert!(!bitwise_eq(&algo.global_params(), &init), "model never moved");
    assert_eq!(result.rounds_completed, 8);
    assert!(result.faults.stalled == 0, "no stall faults were configured");
}
