//! A small registry mapping method names/specs to ready-to-run algorithms.
//!
//! The benchmark harness sweeps over the six methods of the paper; this
//! module gives it (and downstream users) a single constructor.
//!
//! The privacy and compression extensions (`fedcross-privacy`'s `DpFedAvg` /
//! `DpFedCross` / `SecureAggFedAvg`, `fedcross-compress`'s
//! `CompressedFedAvg`) live in crates layered *above* this one, so they
//! cannot appear in [`AlgorithmSpec`] without a dependency cycle — construct
//! them directly. Like every spec here, all of them implement the full
//! resume plane (`snapshot_state`/`restore_state`): no shipped algorithm
//! relies on the refusing defaults (see docs/CHECKPOINTING.md).

use crate::acceleration::Acceleration;
use crate::aggregation::RobustRule;
use crate::algorithm::{FedCross, FedCrossConfig};
use crate::baselines::{CluSamp, FedAvg, FedGen, FedProx, Scaffold};
use crate::baselines::fedgen::FedGenConfig;
use crate::buffered::{BufferedFedAvg, BufferedFedCross, BufferedFedCrossConfig};
use crate::robust::{RobustFedAvg, RobustFedCross, RobustFedCrossConfig};
use crate::selection::SelectionStrategy;
use fedcross_flsim::FederatedAlgorithm;

/// A declarative description of which FL method to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlgorithmSpec {
    /// Classic federated averaging.
    FedAvg,
    /// FedProx with proximal coefficient μ.
    FedProx {
        /// Proximal coefficient μ.
        mu: f32,
    },
    /// SCAFFOLD with server/client control variates.
    Scaffold,
    /// Simplified FedGen (see `baselines::fedgen`).
    FedGen,
    /// Clustered client sampling.
    CluSamp,
    /// FedCross multi-model cross-aggregation.
    FedCross {
        /// Cross-aggregation weight α.
        alpha: f32,
        /// Collaborative-model selection strategy.
        strategy: SelectionStrategy,
        /// Optional training acceleration.
        acceleration: Acceleration,
    },
    /// FedAvg with a Byzantine-robust aggregation rule
    /// ([`crate::robust::RobustFedAvg`]). Not part of the paper lineup —
    /// the robustness plane's baseline.
    RobustFedAvg {
        /// The robust aggregation rule replacing the weighted average.
        rule: RobustRule,
    },
    /// FedCross with robust per-middleware sanitization before
    /// cross-aggregation ([`crate::robust::RobustFedCross`]).
    RobustFedCross {
        /// Cross-aggregation weight α.
        alpha: f32,
        /// The robust rule applied to per-middleware deltas.
        rule: RobustRule,
    },
    /// FedBuff-style staleness-aware FedAvg for buffered rounds
    /// ([`crate::buffered::BufferedFedAvg`]). Not part of the paper lineup —
    /// the fault plane's single-model baseline.
    BufferedFedAvg {
        /// Staleness-weight exponent of `1/(1+s)^α`.
        staleness_alpha: f32,
    },
    /// FedCross over a staleness-weighted buffer
    /// ([`crate::buffered::BufferedFedCross`]).
    BufferedFedCross {
        /// Cross-aggregation weight α.
        alpha: f32,
        /// Staleness-weight exponent of `1/(1+s)^α`.
        staleness_alpha: f32,
    },
}

impl AlgorithmSpec {
    /// The paper's recommended FedCross configuration (α = 0.99, lowest
    /// similarity, no acceleration).
    pub fn fedcross_default() -> Self {
        AlgorithmSpec::FedCross {
            alpha: 0.99,
            strategy: SelectionStrategy::LowestSimilarity,
            acceleration: Acceleration::None,
        }
    }

    /// The six methods of Table II in paper order, using the paper's
    /// hyper-parameters (`mu` as tuned for CIFAR-10).
    pub fn paper_lineup() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::FedAvg,
            AlgorithmSpec::FedProx { mu: 0.01 },
            AlgorithmSpec::Scaffold,
            AlgorithmSpec::FedGen,
            AlgorithmSpec::CluSamp,
            AlgorithmSpec::fedcross_default(),
        ]
    }

    /// Every registered algorithm family with representative
    /// hyper-parameters: the paper's six methods plus one spec per
    /// extension plane (robust, buffered). This is the sweep surface for
    /// registry-driven invariant tests — snapshot/restore round-trips and
    /// the schedule-invariance sanitizer run over exactly this list, so a
    /// new algorithm added here is covered automatically.
    pub fn registered() -> Vec<AlgorithmSpec> {
        let mut specs = Self::paper_lineup();
        specs.push(AlgorithmSpec::RobustFedAvg {
            rule: RobustRule::Median,
        });
        specs.push(AlgorithmSpec::RobustFedCross {
            alpha: 0.9,
            rule: RobustRule::TrimmedMean { trim: 0.25 },
        });
        specs.push(AlgorithmSpec::BufferedFedAvg {
            staleness_alpha: 0.5,
        });
        specs.push(AlgorithmSpec::BufferedFedCross {
            alpha: 0.9,
            staleness_alpha: 0.5,
        });
        specs
    }

    /// A short display label ("FedAvg", "FedCross", ...), matching the paper's
    /// table headers.
    pub fn label(&self) -> &'static str {
        match self {
            AlgorithmSpec::FedAvg => "FedAvg",
            AlgorithmSpec::FedProx { .. } => "FedProx",
            AlgorithmSpec::Scaffold => "SCAFFOLD",
            AlgorithmSpec::FedGen => "FedGen",
            AlgorithmSpec::CluSamp => "CluSamp",
            AlgorithmSpec::FedCross { .. } => "FedCross",
            AlgorithmSpec::RobustFedAvg { .. } => "Robust-FedAvg",
            AlgorithmSpec::RobustFedCross { .. } => "Robust-FedCross",
            AlgorithmSpec::BufferedFedAvg { .. } => "Buffered-FedAvg",
            AlgorithmSpec::BufferedFedCross { .. } => "Buffered-FedCross",
        }
    }
}

/// Builds a runnable algorithm from a spec.
///
/// * `init_params` — the shared initial model every method starts from,
/// * `total_clients` — federation size `N` (needed by SCAFFOLD and CluSamp),
/// * `clients_per_round` — the paper's `K` (the number of FedCross middleware
///   models).
pub fn build_algorithm(
    spec: AlgorithmSpec,
    init_params: Vec<f32>,
    total_clients: usize,
    clients_per_round: usize,
) -> Box<dyn FederatedAlgorithm> {
    match spec {
        AlgorithmSpec::FedAvg => Box::new(FedAvg::new(init_params)),
        AlgorithmSpec::FedProx { mu } => Box::new(FedProx::new(init_params, mu)),
        AlgorithmSpec::Scaffold => Box::new(Scaffold::new(init_params, total_clients)),
        AlgorithmSpec::FedGen => Box::new(FedGen::new(init_params, FedGenConfig::default())),
        AlgorithmSpec::CluSamp => Box::new(CluSamp::new(init_params, total_clients)),
        AlgorithmSpec::FedCross {
            alpha,
            strategy,
            acceleration,
        } => Box::new(FedCross::new(
            FedCrossConfig {
                alpha,
                strategy,
                acceleration,
                ..Default::default()
            },
            init_params,
            clients_per_round,
        )),
        AlgorithmSpec::RobustFedAvg { rule } => Box::new(RobustFedAvg::new(rule, init_params)),
        AlgorithmSpec::RobustFedCross { alpha, rule } => Box::new(RobustFedCross::new(
            RobustFedCrossConfig {
                alpha,
                rule,
                ..Default::default()
            },
            init_params,
            clients_per_round,
        )),
        AlgorithmSpec::BufferedFedAvg { staleness_alpha } => Box::new(BufferedFedAvg::new(
            staleness_alpha,
            init_params,
            total_clients,
        )),
        AlgorithmSpec::BufferedFedCross {
            alpha,
            staleness_alpha,
        } => Box::new(BufferedFedCross::new(
            BufferedFedCrossConfig {
                alpha,
                staleness_alpha,
                ..Default::default()
            },
            init_params,
            clients_per_round,
            total_clients,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lineup_has_six_methods_in_order() {
        let lineup = AlgorithmSpec::paper_lineup();
        assert_eq!(lineup.len(), 6);
        let labels: Vec<&str> = lineup.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["FedAvg", "FedProx", "SCAFFOLD", "FedGen", "CluSamp", "FedCross"]
        );
    }

    #[test]
    fn build_algorithm_produces_named_methods() {
        let init = vec![0.0f32; 8];
        for spec in AlgorithmSpec::paper_lineup() {
            let algo = build_algorithm(spec, init.clone(), 10, 4);
            assert!(!algo.name().is_empty());
            assert_eq!(algo.global_params(), init);
        }
    }

    #[test]
    fn robust_specs_build_named_algorithms_outside_the_paper_lineup() {
        let init = vec![0.0f32; 8];
        let specs = [
            AlgorithmSpec::RobustFedAvg {
                rule: RobustRule::Median,
            },
            AlgorithmSpec::RobustFedCross {
                alpha: 0.9,
                rule: RobustRule::TrimmedMean { trim: 0.25 },
            },
        ];
        for spec in specs {
            let algo = build_algorithm(spec, init.clone(), 10, 4);
            assert!(algo.name().starts_with("robust-"), "{}", algo.name());
            assert_eq!(algo.global_params(), init);
            // Every robust spec implements the resume plane.
            assert!(algo.snapshot_state().is_ok());
            // But none joins the paper's six-method table.
            assert!(!AlgorithmSpec::paper_lineup().contains(&spec));
        }
        assert_eq!(
            AlgorithmSpec::RobustFedAvg { rule: RobustRule::Median }.label(),
            "Robust-FedAvg"
        );
        assert_eq!(
            AlgorithmSpec::RobustFedCross {
                alpha: 0.9,
                rule: RobustRule::Median
            }
            .label(),
            "Robust-FedCross"
        );
    }

    #[test]
    fn buffered_specs_build_named_algorithms_outside_the_paper_lineup() {
        let init = vec![0.0f32; 8];
        let specs = [
            AlgorithmSpec::BufferedFedAvg {
                staleness_alpha: 0.5,
            },
            AlgorithmSpec::BufferedFedCross {
                alpha: 0.9,
                staleness_alpha: 0.5,
            },
        ];
        for spec in specs {
            let algo = build_algorithm(spec, init.clone(), 10, 4);
            assert!(algo.name().starts_with("buffered-"), "{}", algo.name());
            assert_eq!(algo.global_params(), init);
            assert!(algo.snapshot_state().is_ok());
            assert!(!AlgorithmSpec::paper_lineup().contains(&spec));
        }
        assert_eq!(
            AlgorithmSpec::BufferedFedAvg {
                staleness_alpha: 0.5
            }
            .label(),
            "Buffered-FedAvg"
        );
    }

    #[test]
    fn fedcross_default_matches_paper_recommendation() {
        match AlgorithmSpec::fedcross_default() {
            AlgorithmSpec::FedCross {
                alpha,
                strategy,
                acceleration,
            } => {
                assert!((alpha - 0.99).abs() < 1e-6);
                assert_eq!(strategy, SelectionStrategy::LowestSimilarity);
                assert_eq!(acceleration, Acceleration::None);
            }
            other => panic!("unexpected spec {other:?}"),
        }
    }
}
