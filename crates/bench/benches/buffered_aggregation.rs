//! Criterion micro-benchmarks of the staleness-aware buffered server half
//! (`BufferedFedAvg::absorb` / `BufferedFedCross::absorb`): merge + dedupe of
//! an arrival set, the staleness-weighted delta fold, and — for the FedCross
//! variant — candidate rebuild plus similarity-driven cross-aggregation.
//!
//! Shapes match the `aggregation` and `robust_aggregation` benches (10
//! uploads at 10k/100k parameters) so the cost of buffering over a plain
//! synchronous mean is directly readable. Duplicate arrivals are included:
//! the dedupe path is part of every real round under transport faults.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::buffered::{BufferedFedAvg, BufferedFedCross, BufferedFedCrossConfig, BufferedUpload};
use fedcross_tensor::SeededRng;

/// An arrival set of `n` uploads with round-spread staleness, plus `dups`
/// duplicated transport copies.
fn make_arrivals(n: usize, dups: usize, slots: usize, dim: usize, seed: u64) -> Vec<BufferedUpload> {
    let mut rng = SeededRng::new(seed);
    let mut arrivals: Vec<BufferedUpload> = (0..n)
        .map(|client| BufferedUpload {
            client,
            slot: client % slots,
            train_round: client % 4,
            due_round: 4,
            copies: 1,
            delta: (0..dim).map(|_| rng.uniform_range(-0.1, 0.1)).collect(),
            num_samples: 10 + client,
            train_loss: 0.5,
        })
        .collect();
    for i in 0..dups {
        arrivals.push(arrivals[i % n].clone());
    }
    arrivals
}

fn bench_buffered_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffered_aggregation");
    group.sample_size(20);

    for &dim in &[10_000usize, 100_000] {
        let fedavg_arrivals = make_arrivals(10, 3, 1, dim, 7);
        group.bench_with_input(
            BenchmarkId::new("buffered_fedavg_absorb", dim),
            &dim,
            |b, &dim| {
                b.iter(|| {
                    let mut algo = BufferedFedAvg::new(0.5, vec![0.1; dim], 16);
                    let report = algo.absorb(4, 1, 4, fedavg_arrivals.clone());
                    black_box(report.participants)
                })
            },
        );

        let fedcross_arrivals = make_arrivals(10, 3, 10, dim, 9);
        group.bench_with_input(
            BenchmarkId::new("buffered_fedcross_absorb_k10", dim),
            &dim,
            |b, &dim| {
                b.iter(|| {
                    let mut algo = BufferedFedCross::new(
                        BufferedFedCrossConfig::default(),
                        vec![0.1; dim],
                        10,
                        16,
                    );
                    let report = algo.absorb(4, 1, 4, fedcross_arrivals.clone());
                    black_box(report.participants)
                })
            },
        );

        // The merge/dedupe path alone: arrivals land but the goal is not
        // reached, so no aggregation fires.
        group.bench_with_input(
            BenchmarkId::new("buffered_fedavg_merge_only", dim),
            &dim,
            |b, &dim| {
                b.iter(|| {
                    let mut algo = BufferedFedAvg::new(0.5, vec![0.1; dim], 16);
                    let report = algo.absorb(4, 64, 4, fedavg_arrivals.clone());
                    black_box(report.participants + algo.buffer().len())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_buffered_aggregation);
criterion_main!(benches);
