//! Extension experiment: per-client fairness of the deployed global model.
//!
//! Figure 1 of the paper motivates FedCross with the claim that a FedAvg
//! global model stuck in one client's sharp optimum "works well for client 1
//! but is unsuitable for client 2". That is a statement about the per-client
//! accuracy distribution; this harness measures it directly: all six methods
//! are trained on a strongly non-IID CIFAR-10 split (β = 0.1) and the
//! resulting global model is evaluated on every client's own data.
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fairness_report [--rounds N]
//! ```

use fedcross::build_algorithm;
use fedcross_bench::report::{print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, scaled_lineup, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{per_client_fairness, Simulation, SimulationConfig};

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.1));
    let data = build_task(task, &config, config.seed);
    let k = config.clients_per_round.min(data.num_clients());

    println!("Extension — per-client fairness of the global model (CIFAR-10, beta=0.1, CNN)");
    println!(
        "({} clients, K={}, {} rounds; accuracy of the final global model on each client's data)\n",
        config.num_clients, config.clients_per_round, config.rounds
    );
    print_header(&[
        ("Method", 10),
        ("Mean (%)", 10),
        ("Std (%)", 9),
        ("Worst (%)", 11),
        ("Worst 10% (%)", 14),
        ("Jain index", 11),
    ]);

    let mut json = Vec::new();
    for spec in scaled_lineup() {
        let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
        let mut algo = build_algorithm(spec, template.params_flat(), data.num_clients(), k);
        let sim_config = SimulationConfig {
            rounds: config.rounds,
            clients_per_round: k,
            eval_every: config.eval_every,
            eval_batch_size: 64,
            local: config.local,
            seed: config.seed,
        };
        let sim = Simulation::new(sim_config, &data, template);
        let _ = sim.run(algo.as_mut());
        let report =
            per_client_fairness(sim.template(), &algo.global_params(), &data, 64);
        print_row(&[
            (spec.label().to_string(), 10),
            (format!("{:.2}", report.mean * 100.0), 10),
            (format!("{:.2}", report.std * 100.0), 9),
            (format!("{:.2}", report.min * 100.0), 11),
            (format!("{:.2}", report.worst_decile_mean * 100.0), 14),
            (format!("{:.3}", report.jain_index), 11),
        ]);
        json.push(serde_json::json!({
            "method": spec.label(),
            "mean": report.mean,
            "std": report.std,
            "min": report.min,
            "max": report.max,
            "worst_decile_mean": report.worst_decile_mean,
            "jain_index": report.jain_index,
            "per_client_accuracy": report.per_client_accuracy,
        }));
    }

    write_json("fairness_report.json", &json);
    println!("\nExpected shape: per-client accuracy is strongly non-uniform at beta = 0.1 (large");
    println!("std, low worst-decile) for every method, which is exactly the Figure 1 situation the");
    println!("paper motivates FedCross with; FedCross' distribution should match or improve on the");
    println!("FedAvg-family baselines once its middleware models have unified (more rounds than the");
    println!("reduced default — use --rounds 60 or --full for the paper's regime).");
}
