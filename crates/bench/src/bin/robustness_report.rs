//! Robustness report (extension): robust server rules under Byzantine clients.
//!
//! Sweeps aggregation rule × attack × adversarial fraction and reports final
//! accuracy next to each rule's breakdown point, with plain FedAvg as the
//! non-robust baseline and a clean (attack-free) run per method as the
//! reference. The adversary model is the engine's round-derived one
//! (docs/ROBUSTNESS.md): a fixed `round(fraction · N)` clients are
//! compromised for the whole run, so per-round contamination of the K
//! uploads fluctuates around `fraction · K` and can exceed a rule's
//! tolerance — the "Tol/K" column says how many Byzantine uploads per round
//! the rule provably excludes.
//!
//! With `--faults` the report switches to the fault plane (docs/FAULTS.md):
//! round policies × straggler fractions under a fixed transport fault plan,
//! with the engine's `FaultTally` broken out per run.
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin robustness_report \
//!     [--rounds N] [--clients N] [--k N] [--smoke] [--faults]
//! ```

use fedcross::{build_algorithm, AlgorithmSpec, RobustRule};
use fedcross_bench::report::{print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    AdversaryModel, Attack, DeviceModel, FaultPlan, FaultTally, RoundPolicy, Simulation,
    SimulationConfig,
};

/// One run; returns (final accuracy %, best accuracy %).
fn run(
    spec: AlgorithmSpec,
    data: &fedcross_data::federated::FederatedDataset,
    config: &ExperimentConfig,
    adversary: Option<AdversaryModel>,
) -> (f32, f32) {
    let k = config.clients_per_round.min(data.num_clients());
    let template = build_model(ModelSpec::Cnn, data, config.seed.wrapping_add(1));
    let mut algo = build_algorithm(spec, template.params_flat(), data.num_clients(), k);
    let sim_config = SimulationConfig {
        rounds: config.rounds,
        clients_per_round: k,
        eval_every: config.eval_every,
        eval_batch_size: 64,
        local: config.local,
        seed: config.seed,
    };
    let mut sim = Simulation::new(sim_config, data, template);
    if let Some(adversary) = adversary {
        sim = sim.with_adversaries(adversary);
    }
    let result = sim.run(algo.as_mut());
    (
        result.history.final_accuracy() * 100.0,
        result.best_accuracy_pct(),
    )
}

/// One fault-plane run; returns (final accuracy %, best accuracy %, tally).
fn run_with_plane(
    spec: AlgorithmSpec,
    data: &fedcross_data::federated::FederatedDataset,
    config: &ExperimentConfig,
    policy: RoundPolicy,
    faults: Option<FaultPlan>,
    devices: Option<DeviceModel>,
) -> (f32, f32, FaultTally) {
    let k = config.clients_per_round.min(data.num_clients());
    let template = build_model(ModelSpec::Cnn, data, config.seed.wrapping_add(1));
    let mut algo = build_algorithm(spec, template.params_flat(), data.num_clients(), k);
    let sim_config = SimulationConfig {
        rounds: config.rounds,
        clients_per_round: k,
        eval_every: config.eval_every,
        eval_batch_size: 64,
        local: config.local,
        seed: config.seed,
    };
    let mut sim = Simulation::new(sim_config, data, template).with_round_policy(policy);
    if let Some(faults) = faults {
        sim = sim.with_faults(faults);
    }
    if let Some(devices) = devices {
        sim = sim.with_devices(devices);
    }
    let result = sim.run(algo.as_mut());
    (
        result.history.final_accuracy() * 100.0,
        result.best_accuracy_pct(),
        result.faults,
    )
}

/// The `--faults` report: round policies × straggler fractions under a fixed
/// transport fault plan.
fn fault_report(config: &ExperimentConfig) {
    let k = config.clients_per_round.min(config.num_clients);
    let faults = FaultPlan {
        crash_prob: 0.05,
        stall_prob: 0.1,
        max_stall: 2,
        duplicate_prob: 0.1,
        server_fail_prob: 0.02,
        max_retries: 2,
        seed: 11,
    };
    let straggler_fractions = [0.0f32, 0.2, 0.4];
    let quorum = (k / 2).max(1);
    let goal_k = (k / 2).max(1);
    let methods: Vec<(&str, AlgorithmSpec, RoundPolicy)> = vec![
        (
            "FedCross/sync",
            AlgorithmSpec::fedcross_default(),
            RoundPolicy::Synchronous,
        ),
        (
            "FedCross/deadline",
            AlgorithmSpec::fedcross_default(),
            RoundPolicy::Deadline {
                budget: 2.0,
                min_quorum: quorum,
            },
        ),
        (
            "BufFedCross/buffered",
            AlgorithmSpec::BufferedFedCross {
                alpha: 0.99,
                staleness_alpha: 0.5,
            },
            RoundPolicy::Buffered {
                goal_k,
                max_staleness: 4,
            },
        ),
        (
            "BufFedAvg/buffered",
            AlgorithmSpec::BufferedFedAvg {
                staleness_alpha: 0.5,
            },
            RoundPolicy::Buffered {
                goal_k,
                max_staleness: 4,
            },
        ),
    ];

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5));
    let data = build_task(task, config, config.seed);

    println!("Fault report — round policies x straggler fractions under transport faults");
    println!(
        "(CIFAR-10 beta=0.5, CNN, {} clients, K={}, {} rounds; faults: {})\n",
        config.num_clients,
        k,
        config.rounds,
        faults.label()
    );

    // Clean reference per method: same policy, no faults, no stragglers.
    let clean: Vec<f32> = methods
        .iter()
        .map(|&(_, spec, policy)| run_with_plane(spec, &data, config, policy, None, None).0)
        .collect();

    print_header(&[
        ("Method", 22),
        ("Strag", 7),
        ("Crash", 6),
        ("Stall", 6),
        ("Dup", 5),
        ("Miss", 5),
        ("Resc", 5),
        ("Lost", 5),
        ("Acc (%)", 9),
        ("Clean (%)", 10),
        ("Recovery", 9),
    ]);

    let mut json = Vec::new();
    for &fraction in &straggler_fractions {
        let devices = DeviceModel::two_tier(fraction, 8.0, 13);
        for ((label, spec, policy), &clean_acc) in methods.iter().zip(&clean) {
            let (acc, best, tally) =
                run_with_plane(*spec, &data, config, *policy, Some(faults), Some(devices));
            let recovery = if clean_acc > 0.0 { acc / clean_acc } else { 0.0 };
            print_row(&[
                (label.to_string(), 22),
                (format!("{:.0}%", fraction * 100.0), 7),
                (format!("{}", tally.crashed), 6),
                (format!("{}", tally.stalled), 6),
                (format!("{}", tally.duplicated), 5),
                (format!("{}", tally.missed_deadline), 5),
                (format!("{}", tally.quorum_rescued), 5),
                (format!("{}", tally.rounds_lost), 5),
                (format!("{acc:.2}"), 9),
                (format!("{clean_acc:.2}"), 10),
                (format!("{recovery:.2}"), 9),
            ]);
            json.push(serde_json::json!({
                "method": label,
                "straggler_fraction": fraction,
                "crashed": tally.crashed,
                "stalled": tally.stalled,
                "duplicated": tally.duplicated,
                "missed_deadline": tally.missed_deadline,
                "quorum_rescued": tally.quorum_rescued,
                "apply_retries": tally.apply_retries,
                "rounds_lost": tally.rounds_lost,
                "final_accuracy_pct": acc,
                "best_accuracy_pct": best,
                "clean_accuracy_pct": clean_acc,
                "recovery": recovery,
            }));
        }
    }

    write_json("robustness_report_faults.json", &json);
    println!("\nExpected shape: synchronous rounds are immune to stragglers (the server");
    println!("waits) but pay the full wall-clock cost; deadline rounds trade accuracy for");
    println!("latency as the straggler fraction grows (missed uploads become carry-over);");
    println!("buffered rounds keep absorbing late uploads at a staleness discount, so their");
    println!("recovery degrades most gracefully. Crashes and lost rounds dent every policy");
    println!("equally — they remove updates before the policy even sees them.");
}

fn main() {
    let args = Args::from_env();
    // Robust rules only have room to exclude outliers when K is a sizeable
    // quorum, so default to half the federation per round (override: --k).
    let mut base = ExperimentConfig::default();
    base.clients_per_round = base.num_clients / 2;
    base.rounds = 12;
    let config = args.apply(base);
    if args.flag("--faults") {
        fault_report(&config);
        return;
    }
    let k = config.clients_per_round.min(config.num_clients);

    let rules = [
        RobustRule::Median,
        RobustRule::TrimmedMean { trim: 0.34 },
        RobustRule::Krum { f: 3, m: 1 },
        RobustRule::NormBound { max_norm: 1.0 },
    ];
    let attacks = [
        Attack::ScaledUpdate { factor: 25.0 },
        Attack::SignFlip { scale: 4.0 },
        Attack::LabelFlip,
        Attack::Colluding { magnitude: 8.0 },
    ];
    let fractions = [0.1f32, 0.3];

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5));
    let data = build_task(task, &config, config.seed);

    println!("Robustness report — robust rules x attacks x adversarial fractions");
    println!(
        "(CIFAR-10 beta=0.5, CNN, {} clients, K={}, {} rounds; compromised set fixed per run)\n",
        config.num_clients, k, config.rounds
    );

    let methods: Vec<(String, AlgorithmSpec)> = std::iter::once(("FedAvg".to_string(), AlgorithmSpec::FedAvg))
        .chain(rules.iter().map(|&rule| {
            (
                format!("RFC/{}", rule.label()),
                AlgorithmSpec::RobustFedCross { alpha: 0.9, rule },
            )
        }))
        .chain(std::iter::once((
            "RFA/trimmed".to_string(),
            AlgorithmSpec::RobustFedAvg {
                rule: RobustRule::TrimmedMean { trim: 0.34 },
            },
        )))
        .collect();

    // Clean references: every method once, attack-free.
    let clean: Vec<f32> = methods
        .iter()
        .map(|(_, spec)| run(*spec, &data, &config, None).0)
        .collect();

    print_header(&[
        ("Method", 24),
        ("Attack", 20),
        ("Frac", 6),
        ("Byz/N", 7),
        ("Tol/K", 7),
        ("Acc (%)", 9),
        ("Best (%)", 9),
        ("Clean (%)", 10),
        ("Recovery", 9),
    ]);

    let mut json = Vec::new();
    for &fraction in &fractions {
        for &attack in &attacks {
            let adversary = AdversaryModel {
                attack,
                fraction,
                seed: 11,
            };
            let byz = adversary.num_compromised(config.num_clients);
            for ((label, spec), &clean_acc) in methods.iter().zip(&clean) {
                let tolerated = match spec {
                    AlgorithmSpec::RobustFedCross { rule, .. }
                    | AlgorithmSpec::RobustFedAvg { rule } => rule.max_byzantine(k),
                    _ => 0,
                };
                let (acc, best) = run(*spec, &data, &config, Some(adversary));
                let recovery = if clean_acc > 0.0 { acc / clean_acc } else { 0.0 };
                print_row(&[
                    (label.clone(), 24),
                    (attack.label(), 20),
                    (format!("{:.0}%", fraction * 100.0), 6),
                    (format!("{byz}/{}", config.num_clients), 7),
                    (format!("{tolerated}/{k}"), 7),
                    (format!("{acc:.2}"), 9),
                    (format!("{best:.2}"), 9),
                    (format!("{clean_acc:.2}"), 10),
                    (format!("{recovery:.2}"), 9),
                ]);
                json.push(serde_json::json!({
                    "method": label,
                    "attack": attack.label(),
                    "fraction": fraction,
                    "compromised": byz,
                    "total_clients": config.num_clients,
                    "tolerated_per_round": tolerated,
                    "clients_per_round": k,
                    "final_accuracy_pct": acc,
                    "best_accuracy_pct": best,
                    "clean_accuracy_pct": clean_acc,
                    "recovery": recovery,
                }));
            }
        }
    }

    write_json("robustness_report.json", &json);
    println!("\nExpected shape: FedAvg's recovery collapses under scaled-update / sign-flip /");
    println!("colluding uploads (a single unbounded upload steers the weighted mean), while");
    println!("the exclusion rules (median, trimmed mean, Krum) stay near recovery 1.0 as long");
    println!("as the per-round Byzantine count stays within Tol/K. Norm bounding never");
    println!("excludes anyone (Tol 0) but caps per-round damage, so it degrades gracefully");
    println!("instead of collapsing. Label flipping is the mildest attack: poisoned gradients");
    println!("are still bounded, so even FedAvg only drifts rather than diverges.");
}
