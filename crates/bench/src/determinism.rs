//! Schedule-invariance sanitizer harness.
//!
//! The bitwise-trajectory pins in `tests/tests/training_plane.rs` prove the
//! system reproduces one canonical trajectory — but they run under a single
//! schedule, so a parallel kernel that races (accumulating in thread
//! completion order, say) or an algorithm that aggregates in upload *arrival*
//! order would still pass them. This module is the complementary race
//! detector: it runs every registered [`AlgorithmSpec`] on a tiny synthetic
//! federation and fingerprints the full trajectory (per-round metrics,
//! communication counters, final global model bits), so callers can diff the
//! fingerprint across rayon thread counts and permuted upload arrival
//! orders. Identical fingerprints everywhere = the trajectory depends only
//! on the construction seeds, never on the schedule.
//!
//! Used by the `determinism_check` binary and the `tests/tests/lint_plane.rs`
//! suite.

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    DeviceModel, FaultPlan, LocalTrainConfig, RoundPolicy, Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

/// Federation size of the sanitizer task.
pub const SANITIZER_CLIENTS: usize = 6;
/// Clients per round (= FedCross middleware count) of the sanitizer task.
pub const SANITIZER_K: usize = 3;
/// Rounds the sanitizer trains.
pub const SANITIZER_ROUNDS: usize = 3;

/// FNV-1a over a byte stream — the same fingerprint primitive the
/// trajectory pins use.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Creates the hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs a `u64`.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Absorbs an `f32`'s exact bit pattern.
    pub fn write_f32(&mut self, value: f32) {
        self.write(&value.to_bits().to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// The tiny synthetic federation + model the sanitizer runs on (mirrors the
/// baseline unit tests' fixture: Dirichlet-skewed synth CIFAR-10 shards and
/// a small CNN).
fn sanitizer_setup() -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(7);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: SANITIZER_CLIENTS,
            samples_per_client: 25,
            test_samples: 60,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sanitizer_config() -> SimulationConfig {
    SimulationConfig {
        rounds: SANITIZER_ROUNDS,
        clients_per_round: SANITIZER_K,
        eval_every: 1,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 11,
    }
}

fn is_buffered(spec: AlgorithmSpec) -> bool {
    matches!(
        spec,
        AlgorithmSpec::BufferedFedAvg { .. } | AlgorithmSpec::BufferedFedCross { .. }
    )
}

/// Runs `spec` for [`SANITIZER_ROUNDS`] rounds and returns the trajectory
/// fingerprint: per-round metrics bits, communication counters and the final
/// global model bits.
///
/// With `upload_shuffle: None` the uploads arrive in dispatch order (the
/// canonical trajectory); with `Some(seed)` every round's arrival order is
/// permuted by a deterministic shuffle. A correct algorithm returns the same
/// fingerprint either way.
///
/// Buffered specs run under a `RoundPolicy::Buffered` service plane with a
/// straggling device fleet and stall faults, so their cross-round buffer —
/// the stateful path most exposed to arrival order — actually carries
/// entries.
pub fn spec_fingerprint(spec: AlgorithmSpec, upload_shuffle: Option<u64>) -> u64 {
    let (data, template) = sanitizer_setup();
    let init = template.params_flat();
    let mut algorithm = build_algorithm(spec, init, SANITIZER_CLIENTS, SANITIZER_K);
    let mut sim = Simulation::new(sanitizer_config(), &data, template);
    if is_buffered(spec) {
        sim = sim
            .with_round_policy(RoundPolicy::Buffered {
                goal_k: 2,
                max_staleness: 4,
            })
            .with_devices(DeviceModel::two_tier(0.34, 3.0, 5))
            .with_faults(FaultPlan {
                stall_prob: 0.2,
                ..Default::default()
            });
    }
    if let Some(seed) = upload_shuffle {
        sim = sim.with_upload_shuffle(seed);
    }
    let result = sim.run(algorithm.as_mut());

    let mut hash = Fnv1a::new();
    for record in result.history.records() {
        hash.write_u64(record.round as u64);
        hash.write_f32(record.accuracy);
        hash.write_f32(record.test_loss);
        hash.write_f32(record.train_loss);
    }
    hash.write_u64(result.comm.model_download);
    hash.write_u64(result.comm.model_upload);
    hash.write_u64(result.comm.extra_download);
    hash.write_u64(result.comm.extra_upload);
    hash.write_u64(result.comm.client_contacts);
    for &w in &algorithm.global_params() {
        hash.write_f32(w);
    }
    hash.finish()
}

/// One spec's sweep outcome: the canonical fingerprint plus every variant.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The spec's display label.
    pub label: &'static str,
    /// Fingerprint of the canonical schedule (baseline thread count, no
    /// shuffle).
    pub canonical: u64,
    /// `(variant description, fingerprint)` for every schedule variant.
    pub variants: Vec<(String, u64)>,
}

impl SweepOutcome {
    /// Whether every variant reproduced the canonical fingerprint.
    pub fn invariant(&self) -> bool {
        self.variants.iter().all(|(_, fp)| *fp == self.canonical)
    }
}

/// Sweeps one spec across rayon thread counts and upload-shuffle seeds,
/// returning all fingerprints. The global rayon override is restored to
/// "unset" afterwards.
pub fn sweep_spec(spec: AlgorithmSpec, threads: &[usize], shuffle_seeds: &[u64]) -> SweepOutcome {
    rayon::set_num_threads(0);
    let canonical = spec_fingerprint(spec, None);
    let mut variants = Vec::new();
    for &t in threads {
        rayon::set_num_threads(t);
        variants.push((format!("threads={t}"), spec_fingerprint(spec, None)));
    }
    rayon::set_num_threads(0);
    for &seed in shuffle_seeds {
        variants.push((
            format!("upload-shuffle={seed}"),
            spec_fingerprint(spec, Some(seed)),
        ));
    }
    SweepOutcome {
        label: spec.label(),
        canonical,
        variants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_reproducible_for_one_spec() {
        let a = spec_fingerprint(AlgorithmSpec::FedAvg, None);
        let b = spec_fingerprint(AlgorithmSpec::FedAvg, None);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_specs() {
        let fedavg = spec_fingerprint(AlgorithmSpec::FedAvg, None);
        let fedprox = spec_fingerprint(AlgorithmSpec::FedProx { mu: 0.01 }, None);
        assert_ne!(fedavg, fedprox);
    }
}
