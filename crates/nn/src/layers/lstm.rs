//! A single-layer LSTM that encodes a sequence into its final hidden state.
//!
//! This is the recurrent backbone of the Shakespeare next-character and
//! Sent140 sentiment classifiers used in the paper's Table II.

use crate::layer::{Layer, Param};
use fedcross_tensor::{init, SeededRng, Tensor, TensorPool};

/// Per-timestep quantities cached during the forward pass for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,      // [N, D]
    h_prev: Tensor, // [N, H]
    c_prev: Tensor, // [N, H]
    i: Tensor,      // [N, H]
    f: Tensor,      // [N, H]
    g: Tensor,      // [N, H]
    o: Tensor,      // [N, H]
    c: Tensor,      // [N, H]
}

/// A single-layer LSTM returning the last hidden state.
///
/// * input: `[N, T, D]`
/// * output: `[N, H]` (hidden state after the last timestep)
///
/// Gate weights use the `[i | f | g | o]` block layout along the `4H`
/// dimension.
#[derive(Debug, Clone)]
pub struct Lstm {
    w_ih: Param, // [D, 4H]
    w_hh: Param, // [H, 4H]
    bias: Param, // [4H]
    input_dim: usize,
    hidden_dim: usize,
    caches: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialised weights and a forget-gate bias
    /// of 1 (the standard trick to ease gradient flow early in training).
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut SeededRng) -> Self {
        let w_ih = init::xavier_uniform(&[input_dim, 4 * hidden_dim], input_dim, hidden_dim, rng);
        let w_hh = init::xavier_uniform(&[hidden_dim, 4 * hidden_dim], hidden_dim, hidden_dim, rng);
        let mut bias = Tensor::zeros(&[4 * hidden_dim]);
        for j in hidden_dim..2 * hidden_dim {
            bias.data_mut()[j] = 1.0;
        }
        Self {
            w_ih: Param::new(w_ih),
            w_hh: Param::new(w_hh),
            bias: Param::new(bias),
            input_dim,
            hidden_dim,
            caches: Vec::new(),
        }
    }

    /// Hidden state dimension.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Extracts gate block `block` (0..4) from a `[N, 4H]` pre-activation.
    fn gate_block(pre: &Tensor, block: usize, hidden: usize) -> Tensor {
        let n = pre.dims()[0];
        let mut out = vec![0f32; n * hidden];
        for row in 0..n {
            let src = &pre.data()[row * 4 * hidden + block * hidden..row * 4 * hidden + (block + 1) * hidden];
            out[row * hidden..(row + 1) * hidden].copy_from_slice(src);
        }
        Tensor::from_vec(out, &[n, hidden])
    }

    /// Assembles four `[N, H]` gate gradients into a `[N, 4H]` tensor.
    fn assemble_gates(blocks: [&Tensor; 4], hidden: usize) -> Tensor {
        let n = blocks[0].dims()[0];
        let mut out = vec![0f32; n * 4 * hidden];
        for (b, block) in blocks.iter().enumerate() {
            for row in 0..n {
                let dst = &mut out[row * 4 * hidden + b * hidden..row * 4 * hidden + (b + 1) * hidden];
                dst.copy_from_slice(&block.data()[row * hidden..(row + 1) * hidden]);
            }
        }
        Tensor::from_vec(out, &[n, 4 * hidden])
    }

    /// Extracts timestep `t` from a `[N, T, D]` tensor as `[N, D]`.
    fn timestep(input: &Tensor, t: usize) -> Tensor {
        let dims = input.dims();
        let (n, d) = (dims[0], dims[2]);
        let mut out = Tensor::zeros(&[n, d]);
        Self::timestep_fill(input, t, &mut out);
        out
    }

    fn timestep_fill(input: &Tensor, t: usize, out: &mut Tensor) {
        let dims = input.dims();
        let (n, steps, d) = (dims[0], dims[1], dims[2]);
        out.reshape_in_place(&[n, d]);
        let od = out.data_mut();
        for row in 0..n {
            let src = &input.data()[(row * steps + t) * d..(row * steps + t + 1) * d];
            od[row * d..(row + 1) * d].copy_from_slice(src);
        }
    }

    /// Extracts gate block `block` (0..4) from a `[N, 4H]` pre-activation
    /// into a pooled buffer.
    fn gate_block_pooled(pre: &Tensor, block: usize, hidden: usize, pool: &mut TensorPool) -> Tensor {
        let n = pre.dims()[0];
        let mut out = pool.take_uninit(&[n, hidden]);
        let od = out.data_mut();
        for row in 0..n {
            let src = &pre.data()
                [row * 4 * hidden + block * hidden..row * 4 * hidden + (block + 1) * hidden];
            od[row * hidden..(row + 1) * hidden].copy_from_slice(src);
        }
        out
    }

    /// Writes a `[N, H]` gate tensor into block `block` of the `[N, 4H]`
    /// pre-activation layout (the inverse of [`Lstm::gate_block_pooled`]).
    fn scatter_gate(dgates: &mut [f32], src: &[f32], block: usize, hidden: usize, n: usize) {
        for row in 0..n {
            let dst = &mut dgates
                [row * 4 * hidden + block * hidden..row * 4 * hidden + (block + 1) * hidden];
            dst.copy_from_slice(&src[row * hidden..(row + 1) * hidden]);
        }
    }

    /// Recycles every cached step tensor into the pool.
    fn recycle_caches(&mut self, pool: &mut TensorPool) {
        for cache in self.caches.drain(..) {
            pool.recycle(cache.x);
            pool.recycle(cache.h_prev);
            pool.recycle(cache.c_prev);
            pool.recycle(cache.i);
            pool.recycle(cache.f);
            pool.recycle(cache.g);
            pool.recycle(cache.o);
            pool.recycle(cache.c);
        }
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.rank(), 3, "Lstm expects [N, T, D] input");
        let dims = input.dims();
        let (n, steps, d) = (dims[0], dims[1], dims[2]);
        assert_eq!(d, self.input_dim, "Lstm input dimension mismatch");
        assert!(steps > 0, "Lstm requires at least one timestep");

        let h_dim = self.hidden_dim;
        let mut h = Tensor::zeros(&[n, h_dim]);
        let mut c = Tensor::zeros(&[n, h_dim]);
        self.caches.clear();
        self.caches.reserve(steps);

        for t in 0..steps {
            let x_t = Self::timestep(input, t);
            // pre = x W_ih + h W_hh + b
            let mut pre = x_t.matmul(&self.w_ih.value);
            pre.add_assign(&h.matmul(&self.w_hh.value));
            let pre = pre.add_row_broadcast(&self.bias.value);

            let i = Self::gate_block(&pre, 0, h_dim).sigmoid();
            let f = Self::gate_block(&pre, 1, h_dim).sigmoid();
            let g = Self::gate_block(&pre, 2, h_dim).tanh();
            let o = Self::gate_block(&pre, 3, h_dim).sigmoid();

            let c_new = f.mul(&c).add(&i.mul(&g));
            let h_new = o.mul(&c_new.tanh());

            self.caches.push(StepCache {
                x: x_t,
                h_prev: h,
                c_prev: c,
                i,
                f,
                g,
                o,
                c: c_new.clone(),
            });
            h = h_new;
            c = c_new;
        }
        h
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        assert!(!self.caches.is_empty(), "backward called before forward");
        let h_dim = self.hidden_dim;
        let steps = self.caches.len();
        let n = grad_output.dims()[0];
        let d = self.input_dim;

        let mut grad_input = Tensor::zeros(&[n, steps, d]);
        let mut dh_next = grad_output.clone();
        let mut dc_next = Tensor::zeros(&[n, h_dim]);

        for t in (0..steps).rev() {
            let cache = &self.caches[t];
            let tanh_c = cache.c.tanh();

            // dL/do, dL/dc
            let do_gate = dh_next.mul(&tanh_c);
            let dc = dc_next.add(&dh_next.mul(&cache.o).zip_map(&tanh_c, |g, th| g * (1.0 - th * th)));

            let di = dc.mul(&cache.g);
            let df = dc.mul(&cache.c_prev);
            let dg = dc.mul(&cache.i);

            // Pre-activation gradients through the gate nonlinearities.
            let di_pre = di.zip_map(&cache.i, |g, y| g * y * (1.0 - y));
            let df_pre = df.zip_map(&cache.f, |g, y| g * y * (1.0 - y));
            let dg_pre = dg.zip_map(&cache.g, |g, y| g * (1.0 - y * y));
            let do_pre = do_gate.zip_map(&cache.o, |g, y| g * y * (1.0 - y));

            let dgates = Self::assemble_gates([&di_pre, &df_pre, &dg_pre, &do_pre], h_dim);

            // Parameter gradients.
            self.w_ih.grad.add_assign(&cache.x.matmul_at_b(&dgates));
            self.w_hh.grad.add_assign(&cache.h_prev.matmul_at_b(&dgates));
            let cols = 4 * h_dim;
            let mut db = vec![0f32; cols];
            for row in dgates.data().chunks(cols) {
                for (b, &v) in db.iter_mut().zip(row) {
                    *b += v;
                }
            }
            self.bias.grad.add_assign(&Tensor::from_vec(db, &[cols]));

            // Propagate to input and previous hidden / cell state.
            let dx = dgates.matmul_a_bt(&self.w_ih.value);
            for row in 0..n {
                let src = &dx.data()[row * d..(row + 1) * d];
                let dst_start = (row * steps + t) * d;
                let dst = &mut grad_input.data_mut()[dst_start..dst_start + d];
                dst.copy_from_slice(src);
            }
            dh_next = dgates.matmul_a_bt(&self.w_hh.value);
            dc_next = dc.mul(&cache.f);
        }
        grad_input
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        assert_eq!(input.rank(), 3, "Lstm expects [N, T, D] input");
        let dims = input.dims();
        let (n, steps, d) = (dims[0], dims[1], dims[2]);
        assert_eq!(d, self.input_dim, "Lstm input dimension mismatch");
        assert!(steps > 0, "Lstm requires at least one timestep");

        let h_dim = self.hidden_dim;
        let mut h = pool.take_zeroed(&[n, h_dim]);
        let mut c = pool.take_zeroed(&[n, h_dim]);
        self.recycle_caches(pool);
        self.caches.reserve(steps);

        for t in 0..steps {
            let mut x_t = pool.take_uninit(&[n, d]);
            Self::timestep_fill(input, t, &mut x_t);
            // pre = x W_ih + h W_hh + b
            let mut pre = pool.take_uninit(&[n, 4 * h_dim]);
            x_t.matmul_into(&self.w_ih.value, &mut pre);
            let mut h_proj = pool.take_uninit(&[n, 4 * h_dim]);
            h.matmul_into(&self.w_hh.value, &mut h_proj);
            pre.add_assign(&h_proj);
            pool.recycle(h_proj);
            pre.add_row_broadcast_assign(&self.bias.value);

            let mut i = Self::gate_block_pooled(&pre, 0, h_dim, pool);
            i.sigmoid_in_place();
            let mut f = Self::gate_block_pooled(&pre, 1, h_dim, pool);
            f.sigmoid_in_place();
            let mut g = Self::gate_block_pooled(&pre, 2, h_dim, pool);
            g.tanh_in_place();
            let mut o = Self::gate_block_pooled(&pre, 3, h_dim, pool);
            o.sigmoid_in_place();
            pool.recycle(pre);

            // c_new = f * c + i * g
            let mut c_new = pool.take_uninit(&[n, h_dim]);
            f.zip_map_into(&c, &mut c_new, |a, b| a * b);
            let mut ig = pool.take_uninit(&[n, h_dim]);
            i.zip_map_into(&g, &mut ig, |a, b| a * b);
            c_new.add_assign(&ig);
            pool.recycle(ig);
            // h_new = o * tanh(c_new)
            let mut tanh_c = pool.take_uninit(&[n, h_dim]);
            c_new.map_into(&mut tanh_c, f32::tanh);
            let mut h_new = pool.take_uninit(&[n, h_dim]);
            o.zip_map_into(&tanh_c, &mut h_new, |a, b| a * b);
            pool.recycle(tanh_c);

            let c_cache = pool.take_copy(&c_new);
            self.caches.push(StepCache {
                x: x_t,
                h_prev: h,
                c_prev: c,
                i,
                f,
                g,
                o,
                c: c_cache,
            });
            h = h_new;
            c = c_new;
        }
        pool.recycle(c);
        h
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        assert!(!self.caches.is_empty(), "backward called before forward");
        let h_dim = self.hidden_dim;
        let steps = self.caches.len();
        let n = grad_output.dims()[0];
        let d = self.input_dim;

        let mut grad_input = pool.take_uninit(&[n, steps, d]);
        let mut dh_next = pool.take_copy(grad_output);
        let mut dc_next = pool.take_zeroed(&[n, h_dim]);
        let mut dgates = pool.take_uninit(&[n, 4 * h_dim]);
        let mut scratch_wih = pool.take_uninit(&[d, 4 * h_dim]);
        let mut scratch_whh = pool.take_uninit(&[h_dim, 4 * h_dim]);
        let mut db = pool.take_uninit(&[4 * h_dim]);
        let mut tanh_c = pool.take_uninit(&[n, h_dim]);
        let mut dc = pool.take_uninit(&[n, h_dim]);
        let mut gate_grad = pool.take_uninit(&[n, h_dim]);
        let mut gate_pre = pool.take_uninit(&[n, h_dim]);
        let mut dx = pool.take_uninit(&[n, d]);

        for t in (0..steps).rev() {
            let cache = &self.caches[t];
            cache.c.map_into(&mut tanh_c, f32::tanh);

            // dc = dc_next + dh_next * o * (1 - tanh(c)^2)
            {
                let dcd = dc.data_mut();
                let dnd = dc_next.data();
                let dhd = dh_next.data();
                let od = cache.o.data();
                let thd = tanh_c.data();
                for idx in 0..n * h_dim {
                    let g = dhd[idx] * od[idx];
                    let th = thd[idx];
                    dcd[idx] = dnd[idx] + g * (1.0 - th * th);
                }
            }

            // Assemble the four pre-activation gate gradients directly into
            // the `[i | f | g | o]` block layout of `dgates`.
            {
                let dgd = dgates.data_mut();
                let dcd = dc.data();
                let dhd = dh_next.data();
                let thd = tanh_c.data();
                // di_pre = dc * g_gate sigmoid'(i)
                gate_grad.data_mut().copy_from_slice(dcd);
                for (gg, &gv) in gate_grad.data_mut().iter_mut().zip(cache.g.data()) {
                    *gg *= gv;
                }
                gate_grad.zip_map_into(&cache.i, &mut gate_pre, |g, y| g * y * (1.0 - y));
                Self::scatter_gate(dgd, gate_pre.data(), 0, h_dim, n);
                // df_pre = dc * c_prev sigmoid'(f)
                gate_grad.data_mut().copy_from_slice(dcd);
                for (gg, &cv) in gate_grad.data_mut().iter_mut().zip(cache.c_prev.data()) {
                    *gg *= cv;
                }
                gate_grad.zip_map_into(&cache.f, &mut gate_pre, |g, y| g * y * (1.0 - y));
                Self::scatter_gate(dgd, gate_pre.data(), 1, h_dim, n);
                // dg_pre = dc * i tanh'(g)
                gate_grad.data_mut().copy_from_slice(dcd);
                for (gg, &iv) in gate_grad.data_mut().iter_mut().zip(cache.i.data()) {
                    *gg *= iv;
                }
                gate_grad.zip_map_into(&cache.g, &mut gate_pre, |g, y| g * (1.0 - y * y));
                Self::scatter_gate(dgd, gate_pre.data(), 2, h_dim, n);
                // do_pre = dh * tanh(c) sigmoid'(o)
                for idx in 0..n * h_dim {
                    gate_grad.data_mut()[idx] = dhd[idx] * thd[idx];
                }
                gate_grad.zip_map_into(&cache.o, &mut gate_pre, |g, y| g * y * (1.0 - y));
                Self::scatter_gate(dgd, gate_pre.data(), 3, h_dim, n);
            }

            // Parameter gradients.
            cache.x.matmul_at_b_into(&dgates, &mut scratch_wih);
            self.w_ih.grad.add_assign(&scratch_wih);
            cache.h_prev.matmul_at_b_into(&dgates, &mut scratch_whh);
            self.w_hh.grad.add_assign(&scratch_whh);
            let cols = 4 * h_dim;
            db.fill(0.0);
            for row in dgates.data().chunks(cols) {
                for (b, &v) in db.data_mut().iter_mut().zip(row) {
                    *b += v;
                }
            }
            self.bias.grad.add_assign(&db);

            // Propagate to input and previous hidden / cell state.
            dgates.matmul_a_bt_into(&self.w_ih.value, &mut dx);
            {
                let gid = grad_input.data_mut();
                for row in 0..n {
                    let src = &dx.data()[row * d..(row + 1) * d];
                    let dst_start = (row * steps + t) * d;
                    gid[dst_start..dst_start + d].copy_from_slice(src);
                }
            }
            dgates.matmul_a_bt_into(&self.w_hh.value, &mut dh_next);
            dc.zip_map_into(&cache.f, &mut dc_next, |a, b| a * b);
        }
        pool.recycle(dh_next);
        pool.recycle(dc_next);
        pool.recycle(dgates);
        pool.recycle(scratch_wih);
        pool.recycle(scratch_whh);
        pool.recycle(db);
        pool.recycle(tanh_c);
        pool.recycle(dc);
        pool.recycle(gate_grad);
        pool.recycle(gate_pre);
        pool.recycle(dx);
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&self.w_ih, &self.w_hh, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w_ih);
        f(&self.w_hh);
        f(&self.bias);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w_ih);
        f(&mut self.w_hh);
        f(&mut self.bias);
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic: the per-timestep caches are rebuilt by every
        // forward pass; the construction RNG is consumed at init only.
    }

    fn name(&self) -> &'static str {
        "lstm"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_is_batch_by_hidden() {
        let mut rng = SeededRng::new(0);
        let mut lstm = Lstm::new(4, 6, &mut rng);
        let x = init::normal(&[3, 5, 4], 0.0, 1.0, &mut rng);
        let h = lstm.forward(&x, true);
        assert_eq!(h.dims(), &[3, 6]);
        assert!(!h.has_non_finite());
    }

    #[test]
    fn hidden_state_is_bounded_by_tanh_envelope() {
        let mut rng = SeededRng::new(1);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let x = init::normal(&[2, 20, 3], 0.0, 5.0, &mut rng);
        let h = lstm.forward(&x, true);
        // |h| = |o * tanh(c)| <= 1.
        assert!(h.data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn longer_sequences_change_the_output() {
        let mut rng = SeededRng::new(2);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let short = init::normal(&[1, 2, 2], 0.0, 1.0, &mut rng);
        let h_short = lstm.forward(&short, true).clone();
        let long = Tensor::concat0(&[&short.reshape(&[2, 2]), &Tensor::ones(&[3, 2])])
            .reshape(&[1, 5, 2]);
        let h_long = lstm.forward(&long, true);
        assert_ne!(h_short.data(), h_long.data());
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(3);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let x = init::normal(&[2, 3, 3], 0.0, 1.0, &mut rng);
        let probe = init::normal(&[2, 4], 0.0, 1.0, &mut rng);

        let loss = |lstm: &mut Lstm, x: &Tensor| -> f32 {
            lstm.forward(x, true)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = loss(&mut lstm, &x);
        lstm.zero_grads();
        lstm.backward(&probe);

        let eps = 1e-2;
        // Check a few entries of each weight matrix.
        for &(pi, i, j) in &[(0usize, 0usize, 0usize), (0, 2, 7), (1, 1, 5), (1, 3, 14)] {
            let analytic;
            let numeric;
            if pi == 0 {
                analytic = lstm.w_ih.grad.get(&[i, j]);
                let orig = lstm.w_ih.value.get(&[i, j]);
                lstm.w_ih.value.set(&[i, j], orig + eps);
                let plus = loss(&mut lstm, &x);
                lstm.w_ih.value.set(&[i, j], orig - eps);
                let minus = loss(&mut lstm, &x);
                lstm.w_ih.value.set(&[i, j], orig);
                numeric = (plus - minus) / (2.0 * eps);
            } else {
                analytic = lstm.w_hh.grad.get(&[i, j]);
                let orig = lstm.w_hh.value.get(&[i, j]);
                lstm.w_hh.value.set(&[i, j], orig + eps);
                let plus = loss(&mut lstm, &x);
                lstm.w_hh.value.set(&[i, j], orig - eps);
                let minus = loss(&mut lstm, &x);
                lstm.w_hh.value.set(&[i, j], orig);
                numeric = (plus - minus) / (2.0 * eps);
            }
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + numeric.abs()),
                "param {pi} ({i},{j}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let mut rng = SeededRng::new(4);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x = init::normal(&[1, 4, 2], 0.0, 1.0, &mut rng);
        let probe = init::normal(&[1, 3], 0.0, 1.0, &mut rng);
        let loss = |lstm: &mut Lstm, x: &Tensor| -> f32 {
            lstm.forward(x, true)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = loss(&mut lstm, &x);
        lstm.zero_grads();
        let grad_in = lstm.backward(&probe);

        let eps = 1e-2;
        for idx in [0usize, 3, 5, 7] {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (loss(&mut lstm, &plus) - loss(&mut lstm, &minus)) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[idx]).abs() < 3e-2 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {}",
                grad_in.data()[idx]
            );
        }
    }

    #[test]
    fn forget_gate_bias_is_initialised_to_one() {
        let mut rng = SeededRng::new(5);
        let lstm = Lstm::new(2, 3, &mut rng);
        // Block 1 of the bias (forget gate) is all ones, other blocks zero.
        let b = lstm.bias.value.data();
        assert!(b[0..3].iter().all(|&v| v == 0.0));
        assert!(b[3..6].iter().all(|&v| v == 1.0));
        assert!(b[6..12].iter().all(|&v| v == 0.0));
        assert_eq!(lstm.hidden_dim(), 3);
    }

    #[test]
    fn param_count_matches_gate_matrices() {
        let mut rng = SeededRng::new(6);
        let lstm = Lstm::new(8, 16, &mut rng);
        assert_eq!(lstm.param_count(), 8 * 64 + 16 * 64 + 64);
    }
}
