//! Bounded shard cache + background prefetch pipeline.
//!
//! [`ShardPlane`] fronts a [`ClientDataSource`] with two mechanisms that keep
//! a million-client federation's resident set flat:
//!
//! * a bounded LRU [`ShardCache`] over materialised shards — at most
//!   `capacity` client datasets live at once, least-recently-used evicted
//!   first (re-materialisation is free of determinism risk because shards are
//!   pure functions of the client id, see [`crate::source`]);
//! * a dataloader-style prefetch pipeline — one background worker thread
//!   receives client-id hints over a channel, materialises shards and parks
//!   them in a bounded ring buffer (at most `prefetch_depth` slots, producer
//!   blocks when full), from which the consumer drains into the cache. The
//!   engine hints next round's cohort while the current round trains.
//!
//! Resident-set invariant: `cache.len() <= capacity` always (eviction happens
//! *before* a miss materialises), and `ring.len() + in_flight <=
//! prefetch_depth` (the worker reserves its slot before materialising), so
//! peak resident shards `<= capacity + prefetch_depth`. `tests/tests/
//! scale_plane.rs` pins this with a counting allocator at 100k clients.
//!
//! Everything here is infrastructure, not trajectory: prefetching only moves
//! *when* a shard is synthesised, never what it contains, so cached, evicted,
//! prefetched and cold runs are all bitwise identical.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::dataset::Dataset;
use crate::source::ClientDataSource;

/// Sizing of a [`ShardPlane`].
#[derive(Debug, Clone, Copy)]
pub struct ShardPlaneConfig {
    /// Maximum number of materialised shards the LRU cache holds.
    pub capacity: usize,
    /// Ring-buffer slots of the background prefetcher; `0` disables the
    /// worker thread entirely (all materialisation happens on demand).
    pub prefetch_depth: usize,
}

impl Default for ShardPlaneConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            prefetch_depth: 8,
        }
    }
}

/// Counters describing how a [`ShardPlane`] behaved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// `shard()` calls served from the cache.
    pub hits: u64,
    /// `shard()` calls that materialised on demand.
    pub misses: u64,
    /// Shards that arrived through the prefetch ring.
    pub prefetched: u64,
    /// Shards evicted from the cache.
    pub evictions: u64,
    /// Peak simultaneously resident shards (cache + ring + in flight).
    pub peak_resident: usize,
}

/// Bounded LRU map from client id to materialised shard.
#[derive(Debug, Default)]
struct ShardCache {
    /// client id -> (last-use stamp, shard). A `BTreeMap` keeps iteration
    /// deterministic (and eviction scans are O(capacity), which is tiny).
    entries: BTreeMap<usize, (u64, Arc<Dataset>)>,
    stamp: u64,
}

impl ShardCache {
    fn get(&mut self, client: usize) -> Option<Arc<Dataset>> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(&client).map(|(used, shard)| {
            *used = stamp;
            Arc::clone(shard)
        })
    }

    fn contains(&self, client: usize) -> bool {
        self.entries.contains_key(&client)
    }

    fn insert(&mut self, client: usize, shard: Arc<Dataset>) {
        self.stamp += 1;
        self.entries.insert(client, (self.stamp, shard));
    }

    /// Evicts least-recently-used entries until at most `max_len` remain.
    /// Returns how many were evicted.
    fn evict_to(&mut self, max_len: usize) -> u64 {
        let mut evicted = 0;
        while self.entries.len() > max_len {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(&client, _)| client)
                .expect("non-empty cache");
            self.entries.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Shared state between the consumer and the prefetch worker. One mutex
/// guards the whole plane so the resident-set accounting (`cache + ring +
/// in_flight`) is always observed atomically.
#[derive(Debug, Default)]
struct PlaneState {
    cache: ShardCache,
    /// Prefetched shards awaiting absorption into the cache.
    ring: VecDeque<(usize, Arc<Dataset>)>,
    /// Slots reserved by the worker for shards being materialised right now.
    in_flight: usize,
    /// Hints sent to the worker and not yet landed in the ring.
    queued: BTreeSet<usize>,
    shutdown: bool,
    stats: ShardStats,
}

impl PlaneState {
    fn note_resident(&mut self) {
        let resident = self.cache.len() + self.ring.len() + self.in_flight;
        if resident > self.stats.peak_resident {
            self.stats.peak_resident = resident;
        }
    }

    fn in_ring(&self, client: usize) -> bool {
        self.ring.iter().any(|(id, _)| *id == client)
    }
}

/// A [`ClientDataSource`] behind a bounded LRU cache and an optional
/// background prefetcher. This is the object the sharded engine talks to.
pub struct ShardPlane {
    source: Arc<dyn ClientDataSource>,
    config: ShardPlaneConfig,
    state: Arc<(Mutex<PlaneState>, Condvar)>,
    /// Hint channel to the worker; `None` when prefetching is disabled.
    /// Behind a mutex only because `mpsc::Sender` is not `Sync`.
    requests: Option<Mutex<Sender<usize>>>,
    worker: Option<JoinHandle<()>>,
}

impl ShardPlane {
    /// Builds the plane; spawns the prefetch worker if `prefetch_depth > 0`.
    pub fn new(source: Arc<dyn ClientDataSource>, config: ShardPlaneConfig) -> Self {
        assert!(config.capacity >= 1, "cache capacity must be at least 1");
        let state = Arc::new((Mutex::new(PlaneState::default()), Condvar::new()));
        let (requests, worker) = if config.prefetch_depth > 0 {
            let (tx, rx) = mpsc::channel();
            let handle = Self::spawn_worker(
                Arc::clone(&source),
                Arc::clone(&state),
                rx,
                config.prefetch_depth,
            );
            (Some(Mutex::new(tx)), Some(handle))
        } else {
            (None, None)
        };
        Self {
            source,
            config,
            state,
            requests,
            worker,
        }
    }

    /// Convenience: plane with the default sizing.
    pub fn with_default_config(source: Arc<dyn ClientDataSource>) -> Self {
        Self::new(source, ShardPlaneConfig::default())
    }

    /// The wrapped source.
    pub fn source(&self) -> &Arc<dyn ClientDataSource> {
        &self.source
    }

    /// The plane's sizing.
    pub fn config(&self) -> ShardPlaneConfig {
        self.config
    }

    /// Number of clients in the federation.
    pub fn num_clients(&self) -> usize {
        self.source.num_clients()
    }

    /// Number of classes in the task.
    pub fn num_classes(&self) -> usize {
        self.source.num_classes()
    }

    /// The held-out global test set.
    pub fn test_set(&self) -> &Dataset {
        self.source.test_set()
    }

    /// Task name.
    pub fn name(&self) -> &str {
        self.source.name()
    }

    /// Returns client `client`'s shard, from cache, ring or on-demand
    /// materialisation. Identical bits regardless of which path served it.
    pub fn shard(&self, client: usize) -> Arc<Dataset> {
        let (lock, space) = &*self.state;
        {
            let mut st = lock.lock().expect("shard plane poisoned");
            Self::absorb_ring(&mut st, self.config.capacity);
            space.notify_all();
            if let Some(shard) = st.cache.get(client) {
                st.stats.hits += 1;
                return shard;
            }
            // Make room *before* materialising so the cache never exceeds
            // its capacity, keeping the resident-set bound exact.
            let evicted = st.cache.evict_to(self.config.capacity.saturating_sub(1));
            st.stats.evictions += evicted;
        }
        let shard = self.source.shard(client);
        let mut st = lock.lock().expect("shard plane poisoned");
        st.stats.misses += 1;
        st.cache.insert(client, Arc::clone(&shard));
        st.note_resident();
        shard
    }

    /// Hints that `clients` will be needed soon. No-op without a prefetcher;
    /// already-resident or already-queued ids are skipped. Never blocks the
    /// caller: the worker applies backpressure on its own thread.
    pub fn prefetch(&self, clients: &[usize]) {
        let Some(requests) = &self.requests else {
            return;
        };
        let (lock, _) = &*self.state;
        let mut st = lock.lock().expect("shard plane poisoned");
        let tx = requests.lock().expect("request channel poisoned");
        for &client in clients {
            assert!(client < self.source.num_clients(), "client out of range");
            if st.cache.contains(client) || st.in_ring(client) || st.queued.contains(&client) {
                continue;
            }
            st.queued.insert(client);
            let _ = tx.send(client);
        }
    }

    /// Drains any prefetched shards into the cache and waits until every
    /// outstanding hint has landed. Test/shutdown aid; the engine never needs
    /// it on the hot path.
    pub fn drain(&self) {
        let (lock, space) = &*self.state;
        let mut st = lock.lock().expect("shard plane poisoned");
        loop {
            Self::absorb_ring(&mut st, self.config.capacity);
            space.notify_all();
            if st.queued.is_empty() && st.in_flight == 0 && st.ring.is_empty() {
                return;
            }
            let (next, _) = space
                .wait_timeout(st, std::time::Duration::from_millis(1))
                .expect("shard plane poisoned");
            st = next;
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ShardStats {
        let (lock, _) = &*self.state;
        lock.lock().expect("shard plane poisoned").stats
    }

    /// Moves ring entries into the cache (newest-use order), evicting LRU
    /// entries to stay within capacity.
    fn absorb_ring(st: &mut PlaneState, capacity: usize) {
        while let Some((client, shard)) = st.ring.pop_front() {
            if !st.cache.contains(client) {
                st.cache.insert(client, shard);
                st.stats.prefetched += 1;
            }
            let evicted = st.cache.evict_to(capacity);
            st.stats.evictions += evicted;
        }
    }

    fn spawn_worker(
        source: Arc<dyn ClientDataSource>,
        state: Arc<(Mutex<PlaneState>, Condvar)>,
        rx: Receiver<usize>,
        depth: usize,
    ) -> JoinHandle<()> {
        std::thread::Builder::new()
            .name("shard-prefetch".to_string())
            .spawn(move || {
                while let Ok(client) = rx.recv() {
                    let (lock, space) = &*state;
                    {
                        let mut st = lock.lock().expect("shard plane poisoned");
                        if st.shutdown {
                            return;
                        }
                        if st.cache.contains(client) || st.in_ring(client) {
                            st.queued.remove(&client);
                            space.notify_all();
                            continue;
                        }
                        // Reserve the ring slot before materialising so
                        // ring + in_flight never exceeds the depth.
                        while st.ring.len() + st.in_flight >= depth && !st.shutdown {
                            st = space.wait(st).expect("shard plane poisoned");
                        }
                        if st.shutdown {
                            return;
                        }
                        st.in_flight += 1;
                    }
                    let shard = source.shard(client);
                    let mut st = lock.lock().expect("shard plane poisoned");
                    st.in_flight -= 1;
                    st.ring.push_back((client, shard));
                    st.queued.remove(&client);
                    st.note_resident();
                    space.notify_all();
                }
            })
            .expect("failed to spawn shard prefetch worker")
    }
}

impl Drop for ShardPlane {
    fn drop(&mut self) {
        let (lock, space) = &*self.state;
        {
            let mut st = lock.lock().expect("shard plane poisoned");
            st.shutdown = true;
        }
        space.notify_all();
        // Closing the channel wakes the worker out of `recv`.
        self.requests = None;
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPlane")
            .field("source", &self.source.name())
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federated::SynthCifar10Config;
    use crate::partition::Heterogeneity;
    use crate::source::SynthTaskSource;

    fn plane(capacity: usize, prefetch_depth: usize, clients: usize) -> ShardPlane {
        let source = Arc::new(SynthTaskSource::cifar10(
            &SynthCifar10Config {
                num_clients: clients,
                samples_per_client: 5,
                test_samples: 10,
                ..Default::default()
            },
            Heterogeneity::Dirichlet(0.5),
            9,
        ));
        ShardPlane::new(source, ShardPlaneConfig {
            capacity,
            prefetch_depth,
        })
    }

    #[test]
    fn cache_serves_repeat_access_without_rematerialising() {
        let plane = plane(4, 0, 8);
        let a = plane.shard(3);
        let b = plane.shard(3);
        assert!(Arc::ptr_eq(&a, &b), "repeat access must hit the cache");
        let stats = plane.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn eviction_keeps_cache_bounded_and_rematerialisation_is_bitwise() {
        let plane = plane(2, 0, 10);
        let first = plane.shard(0);
        let before: Vec<f32> = first.features().data().to_vec();
        drop(first);
        // Touch enough other clients to evict client 0.
        for c in 1..10 {
            let _ = plane.shard(c);
        }
        let stats = plane.stats();
        assert!(stats.evictions >= 8, "expected evictions, got {stats:?}");
        assert!(stats.peak_resident <= 2, "cache exceeded capacity: {stats:?}");
        let again = plane.shard(0);
        assert_eq!(
            again.features().data(),
            &before[..],
            "re-materialised shard must be bitwise identical"
        );
    }

    #[test]
    fn prefetched_shards_land_in_cache_and_match_on_demand_bits() {
        let plane = plane(8, 4, 16);
        plane.prefetch(&[2, 5, 7]);
        plane.drain();
        let stats = plane.stats();
        assert_eq!(stats.prefetched, 3, "all hints should land: {stats:?}");
        // Served from cache now.
        let shard = plane.shard(5);
        assert_eq!(plane.stats().hits, 1);
        // Bitwise identical to a cold materialisation.
        let cold = plane.source().materialize(5);
        assert_eq!(shard.features().data(), cold.features().data());
    }

    #[test]
    fn prefetch_respects_ring_depth_bound() {
        let plane = plane(3, 2, 32);
        // Far more hints than ring depth: worker must backpressure, and
        // peak resident never exceeds capacity + depth.
        let hints: Vec<usize> = (0..32).collect();
        plane.prefetch(&hints);
        for c in 0..32 {
            let _ = plane.shard(c);
        }
        plane.drain();
        let stats = plane.stats();
        assert!(
            stats.peak_resident <= 3 + 2,
            "resident shards exceeded capacity + prefetch depth: {stats:?}"
        );
    }

    #[test]
    fn duplicate_hints_are_deduplicated() {
        let plane = plane(8, 4, 8);
        plane.prefetch(&[1, 1, 1, 2]);
        plane.drain();
        let stats = plane.stats();
        assert_eq!(stats.prefetched, 2, "duplicates must collapse: {stats:?}");
    }

    #[test]
    fn zero_depth_disables_prefetching() {
        let plane = plane(4, 0, 8);
        plane.prefetch(&[1, 2, 3]);
        plane.drain();
        assert_eq!(plane.stats().prefetched, 0);
    }
}
