//! Training-acceleration methods (Section III-D).
//!
//! Vanilla FedCross converges slowly because a large α lets each middleware
//! model absorb only a small amount of its collaborator's knowledge per
//! round. The paper proposes two accelerators for the early training stage:
//!
//! * **Propeller models** — fuse each middleware model with several
//!   in-order-selected propeller models instead of a single collaborator,
//! * **Dynamic α** — start at α = 0.5 and ramp it up to the target value, so
//!   early rounds share knowledge coarsely and later rounds fine-tune.
//!
//! `FedCross w/ PM-DA` uses propellers for the first half of the acceleration
//! window and dynamic α for the second half (the third variant of Figure 9).

use serde::{Deserialize, Serialize};

/// Which acceleration method (if any) FedCross applies, and for how long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub enum Acceleration {
    /// Vanilla FedCross: single collaborator, constant α.
    #[default]
    None,
    /// Propeller models for the first `until_round` rounds.
    PropellerModels {
        /// Number of propeller models fused with each middleware model.
        propellers: usize,
        /// Acceleration is active for rounds `< until_round`.
        until_round: usize,
    },
    /// Dynamic α for the first `until_round` rounds: α ramps linearly from
    /// `start_alpha` to the configured target α.
    DynamicAlpha {
        /// α used at round 0 (the paper starts from 0.5).
        start_alpha: f32,
        /// Acceleration is active for rounds `< until_round`.
        until_round: usize,
    },
    /// Propeller models for the first `switch_round` rounds, dynamic α from
    /// `switch_round` until `until_round`.
    PropellerThenDynamic {
        /// Number of propeller models in the first phase.
        propellers: usize,
        /// Round at which the propeller phase ends and dynamic α begins.
        switch_round: usize,
        /// Acceleration is inactive from this round onwards.
        until_round: usize,
    },
}


impl Acceleration {
    /// The paper's "FedCross w/ PM" variant (Figure 9): propeller models for
    /// the first 100 rounds.
    pub fn paper_pm() -> Self {
        Acceleration::PropellerModels {
            propellers: 3,
            until_round: 100,
        }
    }

    /// The paper's "FedCross w/ DA" variant: dynamic α for the first 100
    /// rounds, ramping from 0.5.
    pub fn paper_da() -> Self {
        Acceleration::DynamicAlpha {
            start_alpha: 0.5,
            until_round: 100,
        }
    }

    /// The paper's "FedCross w/ PM-DA" variant: propellers for 50 rounds,
    /// then dynamic α until round 100.
    pub fn paper_pm_da() -> Self {
        Acceleration::PropellerThenDynamic {
            propellers: 3,
            switch_round: 50,
            until_round: 100,
        }
    }

    /// Effective α at `round`, given the configured target `alpha`.
    pub fn alpha_at(&self, round: usize, target_alpha: f32) -> f32 {
        match *self {
            Acceleration::None | Acceleration::PropellerModels { .. } => target_alpha,
            Acceleration::DynamicAlpha {
                start_alpha,
                until_round,
            } => Self::ramp(round, 0, until_round, start_alpha, target_alpha),
            Acceleration::PropellerThenDynamic {
                switch_round,
                until_round,
                ..
            } => {
                if round < switch_round {
                    target_alpha
                } else {
                    Self::ramp(round, switch_round, until_round, 0.5, target_alpha)
                }
            }
        }
    }

    /// Number of propeller models to fuse with at `round` (1 means a single
    /// collaborative model, i.e. vanilla cross-aggregation).
    pub fn propellers_at(&self, round: usize) -> usize {
        match *self {
            Acceleration::None | Acceleration::DynamicAlpha { .. } => 1,
            Acceleration::PropellerModels {
                propellers,
                until_round,
            } => {
                if round < until_round {
                    propellers.max(1)
                } else {
                    1
                }
            }
            Acceleration::PropellerThenDynamic {
                propellers,
                switch_round,
                ..
            } => {
                if round < switch_round {
                    propellers.max(1)
                } else {
                    1
                }
            }
        }
    }

    /// A short label used in figures ("vanilla", "w/ PM", "w/ DA", "w/ PM-DA").
    pub fn label(&self) -> &'static str {
        match self {
            Acceleration::None => "vanilla",
            Acceleration::PropellerModels { .. } => "w/ PM",
            Acceleration::DynamicAlpha { .. } => "w/ DA",
            Acceleration::PropellerThenDynamic { .. } => "w/ PM-DA",
        }
    }

    fn ramp(round: usize, start_round: usize, end_round: usize, from: f32, to: f32) -> f32 {
        if round >= end_round || end_round <= start_round {
            return to;
        }
        let progress = (round.saturating_sub(start_round)) as f32
            / (end_round - start_round) as f32;
        let alpha = from + (to - from) * progress;
        // Keep within the admissible CrossAggr range.
        alpha.clamp(0.5, to.max(0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_keeps_target_alpha_and_single_collaborator() {
        let acc = Acceleration::None;
        assert_eq!(acc.alpha_at(0, 0.99), 0.99);
        assert_eq!(acc.alpha_at(500, 0.99), 0.99);
        assert_eq!(acc.propellers_at(0), 1);
        assert_eq!(acc.label(), "vanilla");
    }

    #[test]
    fn propeller_acceleration_uses_extra_models_then_stops() {
        let acc = Acceleration::PropellerModels {
            propellers: 4,
            until_round: 10,
        };
        assert_eq!(acc.propellers_at(0), 4);
        assert_eq!(acc.propellers_at(9), 4);
        assert_eq!(acc.propellers_at(10), 1);
        assert_eq!(acc.alpha_at(5, 0.99), 0.99);
        assert_eq!(acc.label(), "w/ PM");
    }

    #[test]
    fn dynamic_alpha_ramps_from_start_to_target() {
        let acc = Acceleration::DynamicAlpha {
            start_alpha: 0.5,
            until_round: 100,
        };
        assert!((acc.alpha_at(0, 0.99) - 0.5).abs() < 1e-6);
        let mid = acc.alpha_at(50, 0.99);
        assert!(mid > 0.6 && mid < 0.9, "midpoint alpha {mid}");
        assert!((acc.alpha_at(100, 0.99) - 0.99).abs() < 1e-6);
        assert!((acc.alpha_at(500, 0.99) - 0.99).abs() < 1e-6);
        assert_eq!(acc.propellers_at(3), 1);
        assert_eq!(acc.label(), "w/ DA");
    }

    #[test]
    fn dynamic_alpha_is_monotone_nondecreasing() {
        let acc = Acceleration::DynamicAlpha {
            start_alpha: 0.5,
            until_round: 40,
        };
        let mut prev = 0.0;
        for round in 0..60 {
            let a = acc.alpha_at(round, 0.95);
            assert!(a >= prev - 1e-6, "alpha decreased at round {round}");
            assert!((0.5..1.0).contains(&a));
            prev = a;
        }
    }

    #[test]
    fn pm_da_switches_phases() {
        let acc = Acceleration::PropellerThenDynamic {
            propellers: 3,
            switch_round: 20,
            until_round: 40,
        };
        // Phase 1: propellers, target alpha.
        assert_eq!(acc.propellers_at(5), 3);
        assert_eq!(acc.alpha_at(5, 0.99), 0.99);
        // Phase 2: single collaborator, ramping alpha.
        assert_eq!(acc.propellers_at(25), 1);
        let a25 = acc.alpha_at(25, 0.99);
        assert!((0.5..0.99).contains(&a25));
        // After the window: vanilla behaviour.
        assert_eq!(acc.propellers_at(60), 1);
        assert_eq!(acc.alpha_at(60, 0.99), 0.99);
        assert_eq!(acc.label(), "w/ PM-DA");
    }

    #[test]
    fn paper_presets_match_section_iv_e3() {
        assert_eq!(
            Acceleration::paper_pm(),
            Acceleration::PropellerModels {
                propellers: 3,
                until_round: 100
            }
        );
        assert_eq!(
            Acceleration::paper_da(),
            Acceleration::DynamicAlpha {
                start_alpha: 0.5,
                until_round: 100
            }
        );
        match Acceleration::paper_pm_da() {
            Acceleration::PropellerThenDynamic {
                switch_round,
                until_round,
                ..
            } => {
                assert_eq!(switch_round, 50);
                assert_eq!(until_round, 100);
            }
            other => panic!("unexpected preset {other:?}"),
        }
    }
}
