//! Table III: FedCross test accuracy for each (α, selection strategy) pair on
//! CIFAR-10 with β = 1.0.
//!
//! The paper's findings to reproduce: lowest-similarity wins for most α,
//! highest-similarity is the worst strategy, the best α is 0.99, and
//! α = 0.999 collapses. Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin table3_alpha_strategy [--rounds N] [--all-alphas]
//! ```

use fedcross::{Acceleration, AlgorithmSpec, SelectionStrategy};
use fedcross_bench::report::{format_mean_std, print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());

    let alphas: Vec<f32> = if args.flag("--all-alphas") {
        vec![0.5, 0.8, 0.9, 0.95, 0.99, 0.999]
    } else {
        vec![0.5, 0.9, 0.99, 0.999]
    };
    let strategies = [
        SelectionStrategy::InOrder,
        SelectionStrategy::HighestSimilarity,
        SelectionStrategy::LowestSimilarity,
    ];

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(1.0));
    let data = build_task(task, &config, config.seed);

    println!("Table III — Test accuracy (%) with different alpha settings (CIFAR-10, beta=1.0, CNN)");
    println!(
        "({} clients, K={}, {} rounds)\n",
        config.num_clients, config.clients_per_round, config.rounds
    );
    print_header(&[
        ("alpha", 7),
        ("In-Order", 16),
        ("Highest Similarity", 20),
        ("Lowest Similarity", 18),
    ]);

    let mut json_rows = Vec::new();
    for &alpha in &alphas {
        let mut cells = vec![(format!("{alpha}"), 7)];
        let mut row_json = serde_json::json!({ "alpha": alpha });
        for strategy in strategies {
            let spec = AlgorithmSpec::FedCross {
                alpha,
                strategy,
                acceleration: Acceleration::None,
            };
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let outcome = run_method_on(spec, &data, template, &config, &task.label(), "CNN");
            let (mean, std) = outcome.accuracy_mean_std();
            cells.push((
                format_mean_std(mean, std),
                match strategy {
                    SelectionStrategy::InOrder => 16,
                    SelectionStrategy::HighestSimilarity => 20,
                    SelectionStrategy::LowestSimilarity => 18,
                },
            ));
            row_json[strategy.to_string()] = serde_json::json!({ "mean": mean, "std": std });
        }
        print_row(&cells);
        json_rows.push(row_json);
    }
    write_json("table3_alpha_strategy.json", &json_rows);
    println!("\nPaper shape to check: lowest-similarity is best for most alpha values,");
    println!("highest-similarity is the worst strategy, and alpha=0.999 collapses.");
}
