//! Shape and stride bookkeeping for row-major dense tensors.

use serde::{Deserialize, Serialize};

/// A tensor shape: an ordered list of dimension extents.
///
/// Shapes are stored in row-major (C) order: the last dimension is contiguous
/// in memory. A rank-0 shape (empty dimension list) denotes a scalar with one
/// element.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions (the rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements the shape describes.
    ///
    /// A rank-0 shape has one element (a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the extent of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Returns row-major strides (in elements) for this shape.
    ///
    /// `strides()[i]` is the number of elements to skip to advance by one along
    /// dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0usize; self.dims.len()];
        let mut acc = 1usize;
        for (i, d) in self.dims.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Converts a multi-dimensional index into a flat row-major offset.
    ///
    /// Returns `None` if the index has the wrong rank or any component is out
    /// of bounds.
    pub fn flat_index(&self, index: &[usize]) -> Option<usize> {
        if index.len() != self.dims.len() {
            return None;
        }
        let mut offset = 0usize;
        let strides = self.strides();
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return None;
            }
            offset += i * s;
        }
        Some(offset)
    }

    /// Converts a flat row-major offset back into a multi-dimensional index.
    ///
    /// Returns `None` if the offset is out of range.
    pub fn unflatten_index(&self, mut offset: usize) -> Option<Vec<usize>> {
        if offset >= self.numel() {
            return None;
        }
        let strides = self.strides();
        let mut index = vec![0usize; self.dims.len()];
        for (i, &s) in strides.iter().enumerate() {
            index[i] = offset / s;
            offset %= s;
        }
        Some(index)
    }

    /// Returns `true` when both shapes describe the same extents.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_empty_shape_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn numel_multiplies_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).numel(), 24);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flat_index_roundtrip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.numel() {
            let idx = s.unflatten_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx), Some(flat));
        }
    }

    #[test]
    fn flat_index_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 2]);
        assert_eq!(s.flat_index(&[2, 0]), None);
        assert_eq!(s.flat_index(&[0, 0, 0]), None);
    }

    #[test]
    fn unflatten_rejects_out_of_range() {
        let s = Shape::new(&[2, 2]);
        assert_eq!(s.unflatten_index(4), None);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[7, 9]);
        assert_eq!(s.dim(0), 7);
        assert_eq!(s.dim(1), 9);
        assert_eq!(s.rank(), 2);
    }

    #[test]
    fn from_vec_and_slice() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert!(a.same_as(&b));
    }
}
