//! Flat parameter-vector helpers.
//!
//! Federated aggregation never looks inside a model: FedAvg, FedProx's
//! proximal term, SCAFFOLD's control variates and FedCross' cross-aggregation
//! all operate on the flattened parameter vectors exchanged between clients
//! and the cloud server. This module collects the vector algebra they share.

use fedcross_tensor::stats::{cosine_similarity, euclidean_distance};

/// A flattened model parameter vector.
pub type ParamVec = Vec<f32>;

/// Element-wise mean of a set of equally weighted parameter vectors.
///
/// This is the `GlobalModelGen` step of FedCross (Section III-B3) as well as
/// plain FedAvg over clients with equal sample counts.
///
/// # Panics
/// Panics if `vectors` is empty or the vectors have different lengths.
pub fn average(vectors: &[ParamVec]) -> ParamVec {
    assert!(!vectors.is_empty(), "average requires at least one vector");
    weighted_average(vectors, &vec![1.0; vectors.len()])
}

/// Weighted element-wise average of parameter vectors.
///
/// Weights are normalised internally, matching FedAvg's sample-count
/// weighting `w = Σ (n_i / n) w_i`.
///
/// # Panics
/// Panics if inputs are empty, lengths differ, or the weights sum to zero.
pub fn weighted_average(vectors: &[ParamVec], weights: &[f32]) -> ParamVec {
    assert!(!vectors.is_empty(), "weighted_average requires vectors");
    assert_eq!(
        vectors.len(),
        weights.len(),
        "one weight per vector is required"
    );
    let dim = vectors[0].len();
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut out = vec![0f32; dim];
    for (vec, &w) in vectors.iter().zip(weights) {
        assert_eq!(vec.len(), dim, "all vectors must have identical length");
        let scale = w / total;
        for (o, &v) in out.iter_mut().zip(vec) {
            *o += scale * v;
        }
    }
    out
}

/// Convex interpolation `alpha * a + (1 - alpha) * b`.
///
/// This is exactly the FedCross `CrossAggr` fusion rule (Section III-B2) with
/// `a` the uploaded middleware model and `b` its collaborative model.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn interpolate(a: &[f32], b: &[f32], alpha: f32) -> ParamVec {
    assert_eq!(a.len(), b.len(), "interpolate requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
        .collect()
}

/// In-place `target += alpha * delta`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add_scaled(target: &mut [f32], delta: &[f32], alpha: f32) {
    assert_eq!(target.len(), delta.len(), "add_scaled requires equal lengths");
    for (t, &d) in target.iter_mut().zip(delta) {
        *t += alpha * d;
    }
}

/// Element-wise difference `a - b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn difference(a: &[f32], b: &[f32]) -> ParamVec {
    assert_eq!(a.len(), b.len(), "difference requires equal lengths");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Squared L2 distance between two parameter vectors.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_distance requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>() as f32
}

/// L2 norm of a parameter vector.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
}

/// Cosine similarity between two parameter vectors (re-exported from the
/// tensor crate so callers only need `fedcross-nn`).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_similarity(a, b)
}

/// Euclidean distance between two parameter vectors.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    euclidean_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_identical_vectors_is_the_vector() {
        let v = vec![1.0, -2.0, 3.0];
        let avg = average(&[v.clone(), v.clone(), v.clone()]);
        assert_eq!(avg, v);
    }

    #[test]
    fn average_of_two_vectors_is_midpoint() {
        let avg = average(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(avg, vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let avg = weighted_average(&[vec![0.0], vec![10.0]], &[1.0, 3.0]);
        assert!((avg[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_average_is_scale_invariant_in_weights() {
        let vs = [vec![1.0, 2.0], vec![3.0, 6.0]];
        let a = weighted_average(&vs, &[1.0, 2.0]);
        let b = weighted_average(&vs, &[10.0, 20.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn weighted_average_rejects_zero_weights() {
        let _ = weighted_average(&[vec![1.0]], &[0.0]);
    }

    #[test]
    fn interpolate_endpoints() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert_eq!(interpolate(&a, &b, 1.0), a);
        assert_eq!(interpolate(&a, &b, 0.0), b);
        assert_eq!(interpolate(&a, &b, 0.5), vec![2.0, 3.0]);
    }

    #[test]
    fn interpolate_matches_cross_aggr_formula() {
        // CrossAggr(v, v_co) = α v + (1-α) v_co
        let v = vec![2.0, -4.0, 8.0];
        let co = vec![0.0, 0.0, 0.0];
        let fused = interpolate(&v, &co, 0.99);
        for (f, x) in fused.iter().zip(&v) {
            assert!((f - 0.99 * x).abs() < 1e-6);
        }
    }

    #[test]
    fn add_scaled_updates_in_place() {
        let mut t = vec![1.0, 1.0];
        add_scaled(&mut t, &[2.0, -2.0], 0.5);
        assert_eq!(t, vec![2.0, 0.0]);
    }

    #[test]
    fn difference_and_distance_agree() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.0, 0.0, 0.0];
        let d = difference(&a, &b);
        assert_eq!(d, a);
        assert!((squared_distance(&a, &b) - 14.0).abs() < 1e-6);
        assert!((l2_norm(&a) - 14f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cosine_and_euclidean_wrappers() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!(cosine(&a, &b).abs() < 1e-6);
        assert!((euclidean(&a, &b) - 2f32.sqrt()).abs() < 1e-6);
    }
}
