//! Allocation-count regression test for the persistent round plane.
//!
//! PR 2 pinned "a steady-state minibatch *step* allocates nothing"; this
//! binary extends the pin to the round boundary: once the worker pool, the
//! evaluation worker and the server buffers are warm, a whole FedCross
//! communication round — dispatch, K clients of local training, upload,
//! cross-aggregation, global-model generation **and** test-set evaluation —
//! performs **zero full-model-scale heap allocations**. Two secondary pins
//! back that up: the scratch arenas (client workers + eval worker) must serve
//! every steady-state checkout from their free lists (their fresh-allocation
//! counters freeze), and the total per-round allocation count must stay an
//! O(K + batches) bookkeeping constant — orders of magnitude below anything
//! that scales with the model dimension or reallocates per step. (The exact
//! total jitters by a few dozen with the epoch shuffle's interleaving of
//! free-list traffic, so the bound is a ceiling rather than an equality.)
//!
//! "Full-model-scale" is enforced with a size threshold: the test model's
//! parameter vector is ~400 KB while every legitimate per-round temporary
//! (selection indices, job vectors, update metadata) is well under
//! [`LARGE_BYTES`], so any reintroduced model clone, `params_flat()` upload
//! or per-eval activation buffer trips the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Allocations at or above this size count as "full-model-scale".
const LARGE_BYTES: usize = 64 * 1024;

struct CountingAllocator;

static TOTAL: AtomicUsize = AtomicUsize::new(0);
static LARGE: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        TOTAL.fetch_add(1, Ordering::Relaxed);
        if layout.size() >= LARGE_BYTES {
            LARGE.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        TOTAL.fetch_add(1, Ordering::Relaxed);
        if new_size >= LARGE_BYTES {
            LARGE.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn counts() -> (usize, usize) {
    (TOTAL.load(Ordering::Relaxed), LARGE.load(Ordering::Relaxed))
}

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{
    ClientWorkerPool, CommTracker, EvalWorker, FederatedAlgorithm, LocalTrainConfig,
};
use fedcross_nn::layers::{Dropout, Flatten, Linear, Relu};
use fedcross_nn::Sequential;
use fedcross_tensor::SeededRng;

// NOTE: this binary contains exactly one #[test] so no concurrent test
// thread can pollute the global allocation counters.
#[test]
fn steady_state_rounds_and_eval_perform_zero_full_model_allocations() {
    let k = 4usize;
    let mut rng = SeededRng::new(7);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 20,
            test_samples: 40,
            ..Default::default()
        },
        // IID so every client shard has the same size: the arenas then see a
        // fixed set of batch shapes and must freeze after warm-up. (Under
        // Dirichlet skew each new client→slot pairing introduces new batch
        // shapes, which legitimately allocates — the zero-large-allocation
        // pin below still holds there, but the arena-freeze pin would not.)
        Heterogeneity::Iid,
        &mut rng,
    );
    // ~100k parameters (~400 KB as f32) — an order of magnitude above
    // LARGE_BYTES — including a dropout layer so the reseed-on-dispatch path
    // is in the measured loop.
    let template = Sequential::new("alloc-probe")
        .push(Flatten::new())
        .push(Linear::new(3 * 16 * 16, 128, &mut rng))
        .push(Relu::new())
        .push(Dropout::new(0.2, &mut rng))
        .push(Linear::new(128, 10, &mut rng))
        .boxed();
    assert!(
        template.param_count() * 4 >= 4 * LARGE_BYTES,
        "the probe model must dwarf the large-allocation threshold"
    );

    let local = LocalTrainConfig {
        epochs: 1,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 0.0,
    };
    let mut algorithm = FedCross::new(
        FedCrossConfig {
            alpha: 0.9,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
            ..Default::default()
        },
        template.params_flat(),
        k,
    );

    // The persistent round plane, exactly as `Simulation` wires it.
    let master = SeededRng::new(99);
    let mut pool = ClientWorkerPool::new();
    let mut eval_worker = EvalWorker::new(template.as_ref());
    let mut global_buf: Vec<f32> = Vec::new();
    let mut comm = CommTracker::new();

    let run_round = |round: usize,
                         algorithm: &mut FedCross,
                         pool: &mut ClientWorkerPool,
                         eval_worker: &mut EvalWorker,
                         global_buf: &mut Vec<f32>,
                         comm: &mut CommTracker| {
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            local,
            k,
            master.fork(round as u64),
            comm,
        )
        .with_worker_pool(pool);
        algorithm.run_round(round, &mut ctx);
        algorithm.global_params_into(global_buf);
        let eval = eval_worker.evaluate_params(global_buf, data.test_set(), 16);
        assert!(eval.loss.is_finite());
    };

    // Warm-up: two rounds populate the worker slots, arenas, upload blocks,
    // velocity buffers, the eval worker and the global buffer. (The second
    // round catches one-time free-list growth, as in the PR 2 test.)
    for round in 0..2 {
        run_round(round, &mut algorithm, &mut pool, &mut eval_worker, &mut global_buf, &mut comm);
    }
    let (_, large_warm) = counts();
    assert!(large_warm > 0, "warm-up must allocate the plane");
    assert_eq!(pool.models_built(), k);

    // Steady state: every subsequent round (training + upload + fusion +
    // global-model generation + evaluation) must perform ZERO
    // full-model-scale allocations, the arenas must serve everything from
    // their free lists, and the total allocation count must stay a small
    // bookkeeping constant.
    let arena_warm = pool.arena_fresh_allocations();
    let eval_arena_warm = eval_worker.arena_fresh_allocations();
    assert!(arena_warm > 0 && eval_arena_warm > 0);
    let mut totals = Vec::new();
    for round in 2..8 {
        let (total_before, large_before) = counts();
        run_round(round, &mut algorithm, &mut pool, &mut eval_worker, &mut global_buf, &mut comm);
        let (total_after, large_after) = counts();
        assert_eq!(
            large_after - large_before,
            0,
            "round {round} performed {} full-model-scale allocation(s)",
            large_after - large_before
        );
        totals.push(total_after - total_before);
    }
    assert_eq!(
        pool.arena_fresh_allocations(),
        arena_warm,
        "worker arenas must serve every steady-state checkout from their free lists"
    );
    assert_eq!(
        eval_worker.arena_fresh_allocations(),
        eval_arena_warm,
        "the eval arena must serve every steady-state checkout from its free lists"
    );
    // Observed steady totals sit around 110–175 (selection indices, job and
    // update vectors, partner lists, per-batch argmax buffers). One stray
    // allocation per SGD step would add K·steps ≈ +32 and a per-batch
    // activation leak ≈ +50, so the ceiling is tight enough to catch
    // per-step regressions while tolerating shuffle-dependent jitter.
    for (i, &total) in totals.iter().enumerate() {
        assert!(
            total <= 256,
            "steady-state round {} performed {total} allocations (ceiling 256): \
             something is allocating per step or per model",
            i + 2
        );
    }
    assert_eq!(
        pool.models_built(),
        k,
        "steady-state rounds must not construct models"
    );
}
