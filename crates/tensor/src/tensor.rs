//! The dense row-major `f32` tensor type.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` values.
///
/// This is the single numeric container used throughout the FedCross
/// reproduction: model parameters, gradients, activations, datasets and the
/// flattened parameter vectors exchanged between cloud server and clients are
/// all `Tensor`s.
///
/// Shape-sensitive binary operations panic on mismatch (these are programming
/// errors in a training loop); constructors and reshapes have fallible `try_*`
/// variants for data coming from outside the library.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the number of elements implied by
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        Self::try_from_vec(data, dims).expect("data length must match shape")
    }

    /// Fallible variant of [`Tensor::from_vec`].
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        // alloc: cold — construction-time zero init; round paths use pooled take_uninit
        let data = vec![0f32; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.numel()];
        Self { shape, data }
    }

    /// Creates a tensor with the same shape as `other`, filled with zeros.
    pub fn zeros_like(other: &Tensor) -> Self {
        Self::zeros(other.shape.dims())
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a rank-1 tensor containing `0, 1, ..., n-1`.
    pub fn arange(n: usize) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n])
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Shape::new(&[]),
            data: vec![value],
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Returns the tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Returns the number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Returns the underlying data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data slice mutably (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its raw data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn get(&self, index: &[usize]) -> f32 {
        let flat = self
            .shape
            .flat_index(index)
            // panic: documented bounds-check contract of get/set
            .unwrap_or_else(|| panic!("index {index:?} out of bounds for shape {}", self.shape));
        self.data[flat]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self
            .shape
            .flat_index(index)
            // panic: documented bounds-check contract of get/set
            .unwrap_or_else(|| panic!("index {index:?} out of bounds for shape {}", self.shape));
        self.data[flat] = value;
    }

    /// Returns the single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a reshaped copy sharing the same element order.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        self.try_reshape(dims).expect("reshape element count must match")
    }

    /// Fallible variant of [`Tensor::reshape`].
    pub fn try_reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.numel() {
            return Err(TensorError::InvalidReshape {
                from: self.numel(),
                to: shape.numel(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (no data copy).
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "reshape element count must match"
        );
        self.shape = shape;
    }

    /// Flattens to a rank-1 tensor.
    pub fn flatten(&self) -> Tensor {
        Tensor {
            shape: Shape::new(&[self.numel()]),
            data: self.data.clone(),
        }
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2 or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.dims()[1];
        let start = i * cols;
        Tensor::from_vec(self.data[start..start + cols].to_vec(), &[cols])
    }

    /// Copies `values` into row `i` of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if shapes do not line up.
    pub fn set_row(&mut self, i: usize, values: &[f32]) {
        assert_eq!(self.rank(), 2, "set_row() requires a rank-2 tensor");
        let cols = self.dims()[1];
        assert_eq!(values.len(), cols, "row length mismatch");
        let start = i * cols;
        self.data[start..start + cols].copy_from_slice(values);
    }

    /// Selects a batch of rows (for rank >= 1, along dimension 0).
    ///
    /// The returned tensor has the same trailing dimensions with dimension 0
    /// replaced by `indices.len()`.
    pub fn index_select0(&self, indices: &[usize]) -> Tensor {
        assert!(self.rank() >= 1, "index_select0 requires rank >= 1");
        let dims = self.dims();
        let row_len: usize = dims[1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[0] = indices.len();
        let mut data = Vec::with_capacity(indices.len() * row_len);
        for &i in indices {
            assert!(i < dims[0], "index {i} out of bounds for dim0 {}", dims[0]);
            data.extend_from_slice(&self.data[i * row_len..(i + 1) * row_len]);
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Destination-passing form of [`Tensor::index_select0`]: gathers the
    /// selected rows into `out`, resizing its buffer as needed. When `out`'s
    /// backing capacity already covers the result (e.g. a reused minibatch
    /// gather buffer), no allocation is performed.
    pub fn index_select0_into(&self, indices: &[usize], out: &mut Tensor) {
        assert!(self.rank() >= 1, "index_select0_into requires rank >= 1");
        let dims = self.dims();
        let row_len: usize = dims[1..].iter().product();
        let mut out_dims = [0usize; crate::shape::MAX_RANK];
        out_dims[..dims.len()].copy_from_slice(dims);
        out_dims[0] = indices.len();
        out.data.clear();
        out.data.reserve(indices.len() * row_len);
        for &i in indices {
            assert!(i < dims[0], "index {i} out of bounds for dim0 {}", dims[0]);
            out.data
                .extend_from_slice(&self.data[i * row_len..(i + 1) * row_len]);
        }
        out.shape = Shape::new(&out_dims[..dims.len()]);
    }

    /// Concatenates tensors along dimension 0. All trailing dims must match.
    ///
    /// # Panics
    /// Panics if the list is empty or trailing dimensions differ.
    pub fn concat0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat0 requires at least one tensor");
        let trailing: &[usize] = &parts[0].dims()[1..];
        let mut dim0 = 0usize;
        let mut data = Vec::new();
        for p in parts {
            assert_eq!(&p.dims()[1..], trailing, "trailing dimensions must match");
            dim0 += p.dims()[0];
            data.extend_from_slice(p.data());
        }
        let mut dims = vec![dim0];
        dims.extend_from_slice(trailing);
        Tensor::from_vec(data, &dims)
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic
    // ------------------------------------------------------------------

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape.same_as(&other.shape),
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }

    /// Element-wise addition, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction, returning a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication, returning a new tensor.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division, returning a new tensor.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "div");
        self.zip_map(other, |a, b| a / b)
    }

    /// In-place element-wise addition: `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place element-wise subtraction: `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other, "sub_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// In-place AXPY: `self += alpha * other`.
    ///
    /// This is the primitive every FL aggregation rule in the workspace is
    /// built from (FedAvg weighted sums, FedCross `α·v_i + (1-α)·v_co`,
    /// SCAFFOLD control-variate corrections).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales all elements in place: `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in self.data.iter_mut() {
            *a *= alpha;
        }
    }

    /// Returns `self * alpha` as a new tensor.
    pub fn scaled(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// Adds a scalar to every element, returning a new tensor.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Fills the tensor with a constant value.
    pub fn fill(&mut self, value: f32) {
        for a in self.data.iter_mut() {
            *a = value;
        }
    }

    /// Applies a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            // alloc: cold — allocating tensor map; round paths use map_into
            shape: self.shape.clone(),
            // alloc: cold — allocating tensor map; round paths use map_into
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies a function to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for a in self.data.iter_mut() {
            *a = f(*a);
        }
    }

    /// Destination-passing form of [`Tensor::map`]: writes `f` applied to
    /// every element into `out` (which takes this tensor's shape). Bitwise
    /// identical to the allocating form.
    ///
    /// # Panics
    /// Panics if `out` has a different element count.
    pub fn map_into(&self, out: &mut Tensor, f: impl Fn(f32) -> f32) {
        assert_eq!(self.numel(), out.numel(), "map_into: element count mismatch");
        // alloc: bounded — dims-vector clone, a few usizes
        out.shape = self.shape.clone();
        for (o, &x) in out.data.iter_mut().zip(&self.data) {
            *o = f(x);
        }
    }

    /// Destination-passing form of [`Tensor::zip_map`]; bitwise identical to
    /// the allocating form.
    ///
    /// # Panics
    /// Panics on shape mismatch with `other` or element-count mismatch with
    /// `out`.
    pub fn zip_map_into(&self, other: &Tensor, out: &mut Tensor, f: impl Fn(f32, f32) -> f32) {
        self.assert_same_shape(other, "zip_map_into");
        assert_eq!(
            self.numel(),
            out.numel(),
            "zip_map_into: element count mismatch"
        );
        // alloc: bounded — dims-vector clone, a few usizes
        out.shape = self.shape.clone();
        for ((o, &a), &b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = f(a, b);
        }
    }

    /// Copies another tensor's shape and contents into this one.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn copy_from(&mut self, src: &Tensor) {
        assert_eq!(self.numel(), src.numel(), "copy_from: element count mismatch");
        self.shape = src.shape.clone();
        self.data.copy_from_slice(&src.data);
    }

    /// Combines two same-shaped tensors element-wise with `f`.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Adds a rank-1 bias vector to every row of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if `self` is not rank-2 or the bias length differs from the
    /// number of columns.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires rank-2 input");
        let cols = self.dims()[1];
        assert_eq!(bias.numel(), cols, "bias length must equal column count");
        let mut out = self.clone();
        for row in out.data.chunks_mut(cols) {
            for (x, b) in row.iter_mut().zip(bias.data()) {
                *x += b;
            }
        }
        out
    }

    /// Adds a rank-1 bias vector to every row of this rank-2 tensor in place.
    /// Bitwise identical to [`Tensor::add_row_broadcast`].
    ///
    /// # Panics
    /// Panics if `self` is not rank-2 or the bias length differs from the
    /// number of columns.
    pub fn add_row_broadcast_assign(&mut self, bias: &Tensor) {
        assert_eq!(self.rank(), 2, "add_row_broadcast_assign requires rank-2 input");
        let cols = self.dims()[1];
        assert_eq!(bias.numel(), cols, "bias length must equal column count");
        for row in self.data.chunks_mut(cols) {
            for (x, b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Clamps every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
    }

    #[test]
    fn try_from_vec_rejects_mismatch() {
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 3]).is_err());
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 3]).data().iter().all(|&x| x == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&x| x == 1.0));
        assert!(Tensor::full(&[2, 2], 7.5).data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn arange_counts_up() {
        assert_eq!(Tensor::arange(4).data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(2.5).item(), 2.5);
    }

    #[test]
    #[should_panic]
    fn item_panics_on_multi_element() {
        Tensor::zeros(&[2]).item();
    }

    #[test]
    fn set_and_get() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 3.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
    }

    #[test]
    fn reshape_roundtrip() {
        let t = Tensor::arange(12).reshape(&[3, 4]);
        assert_eq!(t.dims(), &[3, 4]);
        let back = t.reshape(&[12]);
        assert_eq!(back.data(), t.data());
        assert!(t.try_reshape(&[5, 5]).is_err());
    }

    #[test]
    fn reshape_in_place_keeps_data() {
        let mut t = Tensor::arange(6);
        t.reshape_in_place(&[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.get(&[1, 2]), 5.0);
    }

    #[test]
    fn flatten_preserves_order() {
        let t = Tensor::arange(8).reshape(&[2, 2, 2]);
        assert_eq!(t.flatten().dims(), &[8]);
        assert_eq!(t.flatten().data(), t.data());
    }

    #[test]
    fn row_and_set_row() {
        let mut t = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(t.row(1).data(), &[3.0, 4.0, 5.0]);
        t.set_row(0, &[9.0, 8.0, 7.0]);
        assert_eq!(t.row(0).data(), &[9.0, 8.0, 7.0]);
    }

    #[test]
    fn index_select0_gathers_rows() {
        let t = Tensor::arange(12).reshape(&[4, 3]);
        let sel = t.index_select0(&[2, 0]);
        assert_eq!(sel.dims(), &[2, 3]);
        assert_eq!(sel.row(0).data(), &[6.0, 7.0, 8.0]);
        assert_eq!(sel.row(1).data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn concat0_stacks_rows() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = Tensor::arange(3).reshape(&[1, 3]);
        let c = Tensor::concat0(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 3]);
        assert_eq!(c.row(2).data(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    #[should_panic]
    fn add_panics_on_shape_mismatch() {
        let _ = Tensor::zeros(&[2]).add(&Tensor::zeros(&[3]));
    }

    #[test]
    fn in_place_ops() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
        a.fill(0.0);
        assert_eq!(a.data(), &[0.0, 0.0]);
    }

    #[test]
    fn scaled_and_add_scalar() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        assert_eq!(a.scaled(3.0).data(), &[3.0, -6.0]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, 4.0, 9.0], &[3]);
        assert_eq!(a.map(f32::sqrt).data(), &[1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(a.zip_map(&b, |x, y| x - y).data(), &[0.0, 2.0, 6.0]);
        let mut c = a.clone();
        c.map_in_place(|x| x + 1.0);
        assert_eq!(c.data(), &[2.0, 5.0, 10.0]);
    }

    #[test]
    fn add_row_broadcast_adds_bias_per_row() {
        let x = Tensor::arange(6).reshape(&[2, 3]);
        let bias = Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let y = x.add_row_broadcast(&bias);
        assert_eq!(y.row(0).data(), &[10.0, 21.0, 32.0]);
        assert_eq!(y.row(1).data(), &[13.0, 24.0, 35.0]);
    }

    #[test]
    fn clamp_limits_range() {
        let a = Tensor::from_vec(vec![-5.0, 0.5, 5.0], &[3]);
        assert_eq!(a.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn has_non_finite_detects_nan_and_inf() {
        let ok = Tensor::ones(&[3]);
        assert!(!ok.has_non_finite());
        let bad = Tensor::from_vec(vec![1.0, f32::NAN], &[2]);
        assert!(bad.has_non_finite());
        let inf = Tensor::from_vec(vec![1.0, f32::INFINITY], &[2]);
        assert!(inf.has_non_finite());
    }

    #[test]
    fn zeros_like_matches_shape() {
        let a = Tensor::ones(&[3, 4]);
        let z = Tensor::zeros_like(&a);
        assert_eq!(z.dims(), a.dims());
        assert!(z.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tensor_implements_serde_traits() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Tensor>();
    }
}
