//! Dense linear algebra: matrix multiplication and transposition.
//!
//! Matrix multiplication is the dominant kernel of every model in the
//! reproduction (fully-connected layers directly, convolutions via `im2col`,
//! LSTM gate projections). All three variants (`matmul`, `matmul_at_b`,
//! `matmul_a_bt`) share one cache-blocked, register-tiled micro-kernel
//! ([`gemm_accum`]): the transposed operand is packed into a row-major panel
//! first (tiled transpose), then a single `MR x NR` register tile streams
//! through `KC`-sized blocks of the reduction dimension.
//!
//! **Bitwise stability.** Every output element accumulates its products in
//! strictly increasing `p` (reduction-index) order with one rounded multiply
//! and one rounded add per step — exactly the order of the naive `ikj` loop —
//! so fixed-seed training trajectories are bitwise independent of the
//! blocking parameters, the thread count, and of whether the destination-
//! passing (`*_into`) or allocating form is used.

use crate::Tensor;
use rayon::prelude::*;
use std::cell::RefCell;

/// Minimum number of multiply-accumulate operations (`m·k·n`) before a matmul
/// variant switches to rayon.
///
/// All three variants (`matmul`, `matmul_at_b`, `matmul_a_bt`) share this one
/// flop-based rule, so the parallel/serial decision is consistent regardless
/// of which operand is transposed: tiny products (LSTM cells on small hidden
/// sizes, per-sample ops) stay single-threaded rather than paying the
/// fork/join overhead, while gradient products with a small `m·n` output but
/// a deep `k` reduction (batch dimension) still parallelise.
const PAR_THRESHOLD_FLOPS: usize = 512 * 1024;

/// Reduction-dimension block size of the micro-kernel: the active `KC x NR`
/// panel of `b` (8 KiB) plus `MR` rows of `a` stay L1-resident while a
/// register tile is accumulated.
const KC: usize = 256;
/// Rows per register tile.
const MR: usize = 6;
/// Columns per register tile (one 8-wide f32 vector on AVX2/NEON).
const NR: usize = 8;

#[inline]
fn parallel_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PAR_THRESHOLD_FLOPS
}

thread_local! {
    /// Per-thread packing scratch for the transposed operand; grows to the
    /// largest panel seen and is reused by every subsequent call, so
    /// steady-state matmuls perform no packing allocations.
    static PACK_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Writes the transpose of the row-major `src` matrix (`rows x cols`) into
/// `dst` (`cols x rows`), walking 8x8 tiles so both sides stay cache-resident.
/// Pure data movement — bitwise-neutral by construction.
///
/// # Panics
/// Panics if `dst` is shorter than `rows * cols`.
pub fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    const TILE: usize = 8;
    assert!(dst.len() >= rows * cols, "transpose_into: dst too short");
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TILE).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TILE).min(cols);
            for r in r0..r1 {
                let row = &src[r * cols..r * cols + cols];
                for c in c0..c1 {
                    dst[c * rows + r] = row[c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// `R x NR` register tile: accumulates `pc` products into `R * NR`
/// accumulators held in registers, loading/storing the output tile once per
/// `KC` block instead of once per `p` step. `R` is monomorphised (`MR` for
/// full tiles, 4/2/1 for the `m % MR` remainder) so every row count keeps
/// the 8-wide vectorised inner loop. Per-element accumulation order is
/// strictly increasing `p`.
#[inline]
#[allow(clippy::too_many_arguments)]
fn micro_tile<const R: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    j0: usize,
    p0: usize,
    pc: usize,
    k: usize,
    n: usize,
) {
    let mut acc = [[0f32; NR]; R];
    for (r, acc_row) in acc.iter_mut().enumerate() {
        let base = (i0 + r) * n + j0;
        acc_row.copy_from_slice(&out[base..base + NR]);
    }
    for p in p0..p0 + pc {
        let bv: [f32; NR] = b[p * n + j0..p * n + j0 + NR]
            .try_into()
            .expect("slice is exactly NR elements by construction");
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * k + p];
            for (l, x) in acc_row.iter_mut().enumerate() {
                *x += av * bv[l];
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        let base = (i0 + r) * n + j0;
        out[base..base + NR].copy_from_slice(acc_row);
    }
}

/// Scalar edge tile for the `m % MR` / `n % NR` remainders; same per-element
/// accumulation order as the register tile.
#[inline]
#[allow(clippy::too_many_arguments)]
fn edge_tile(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    ic: usize,
    j0: usize,
    jc: usize,
    p0: usize,
    pc: usize,
    k: usize,
    n: usize,
) {
    for i in i0..i0 + ic {
        let a_row = &a[i * k..i * k + k];
        for j in j0..j0 + jc {
            let mut acc = out[i * n + j];
            for p in p0..p0 + pc {
                acc += a_row[p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Accumulates `out[i, j] += Σ_{p in p_lo..p_hi} a[i, p] · b[p, j]` over the
/// row-major operands `a` (`m x k`) and `b` (`k x n`).
///
/// This is the one shared inner kernel of all matmul variants. `out` must be
/// initialised (zeros for a plain product, partial sums to continue one).
#[allow(clippy::too_many_arguments)]
fn gemm_accum(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    p_lo: usize,
    p_hi: usize,
) {
    let mut p0 = p_lo;
    while p0 < p_hi {
        let pc = KC.min(p_hi - p0);
        let mut i0 = 0;
        while i0 < m {
            // Pick the widest register tile that fits the remaining rows so
            // the vectorised inner loop covers every row of the matrix.
            let ic = match m - i0 {
                rem if rem >= MR => MR,
                rem if rem >= 4 => 4,
                rem if rem >= 2 => 2,
                _ => 1,
            };
            let mut j0 = 0;
            while j0 + NR <= n {
                match ic {
                    MR => micro_tile::<MR>(out, a, b, i0, j0, p0, pc, k, n),
                    4 => micro_tile::<4>(out, a, b, i0, j0, p0, pc, k, n),
                    2 => micro_tile::<2>(out, a, b, i0, j0, p0, pc, k, n),
                    _ => micro_tile::<1>(out, a, b, i0, j0, p0, pc, k, n),
                }
                j0 += NR;
            }
            if j0 < n {
                edge_tile(out, a, b, i0, ic, j0, n - j0, p0, pc, k, n);
            }
            i0 += ic;
        }
        p0 += pc;
    }
}

/// Full product `out += a · b`, fanning row blocks out to rayon when the flop
/// count warrants it. Each row's reduction stays on one thread, so the result
/// is bitwise identical to the serial kernel.
fn gemm(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    if parallel_worthwhile(m, k, n) && m > MR && n > 0 {
        out.par_chunks_mut(MR * n)
            .enumerate()
            .for_each(|(chunk, rows_out)| {
                let i0 = chunk * MR;
                let rows = rows_out.len() / n;
                gemm_accum(rows_out, &a[i0 * k..(i0 + rows) * k], b, rows, k, n, 0, k);
            });
    } else {
        gemm_accum(out, a, b, m, k, n, 0, k);
    }
}

/// Runs `body` with a thread-local scratch buffer holding the transpose of
/// `src` (`rows x cols`, transposed panel is `cols x rows`).
///
/// The buffer is moved out of the thread-local cell for the duration of
/// `body` (and returned afterwards), so no `RefCell` borrow is held across
/// the rayon parallel regions inside `body` — with a work-stealing rayon a
/// stolen task that re-enters this function on the same thread simply takes
/// an empty vector instead of panicking on a nested borrow.
fn with_packed_transpose<R>(
    src: &[f32],
    rows: usize,
    cols: usize,
    body: impl FnOnce(&[f32]) -> R,
) -> R {
    let mut scratch = PACK_SCRATCH.with(std::cell::RefCell::take);
    if scratch.len() < rows * cols {
        scratch.resize(rows * cols, 0.0);
    }
    transpose_into(src, rows, cols, &mut scratch);
    let result = body(&scratch[..rows * cols]);
    PACK_SCRATCH.with(|cell| {
        // Keep the larger buffer if a nested call installed its own.
        let mut current = cell.borrow_mut();
        if current.len() < scratch.len() {
            *current = scratch;
        }
    });
    result
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    /// Panics if either tensor is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, n) = self.matmul_dims(other);
        let mut out = Tensor::zeros(&[m, n]);
        self.matmul_into_prepared(other, &mut out);
        out
    }

    /// Destination-passing form of [`Tensor::matmul`]: writes the product into
    /// `out` (any tensor with `m * n` elements, reshaped in place). Bitwise
    /// identical to the allocating form.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, n) = self.matmul_dims(other);
        assert_eq!(out.numel(), m * n, "matmul_into: wrong output size");
        out.reshape_in_place(&[m, n]);
        out.fill(0.0);
        self.matmul_into_prepared(other, out);
    }

    fn matmul_dims(&self, other: &Tensor) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "matmul: left operand must be rank-2");
        assert_eq!(other.rank(), 2, "matmul: right operand must be rank-2");
        let (k, k2) = (self.dims()[1], other.dims()[0]);
        assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
        (self.dims()[0], other.dims()[1])
    }

    fn matmul_into_prepared(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let n = other.dims()[1];
        gemm(out.data_mut(), self.data(), other.data(), m, k, n);
    }

    /// Computes `self^T * other` without materialising the transpose:
    /// `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// Used by linear/conv backward passes to form weight gradients. The `k`
    /// dimension here is the batch/spatial reduction axis, so it is typically
    /// much larger than the `m x n` output; above the shared flop threshold
    /// the reduction is split into `k`-blocks reduced per thread and summed,
    /// which parallelises even when the output itself is small.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        let (m, n) = self.matmul_at_b_dims(other);
        let mut out = Tensor::zeros(&[m, n]);
        self.matmul_at_b_into_prepared(other, &mut out);
        out
    }

    /// Destination-passing form of [`Tensor::matmul_at_b`]; bitwise identical
    /// to the allocating form.
    pub fn matmul_at_b_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, n) = self.matmul_at_b_dims(other);
        assert_eq!(out.numel(), m * n, "matmul_at_b_into: wrong output size");
        out.reshape_in_place(&[m, n]);
        out.fill(0.0);
        self.matmul_at_b_into_prepared(other, out);
    }

    fn matmul_at_b_dims(&self, other: &Tensor) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "matmul_at_b: left operand must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_at_b: right operand must be rank-2");
        let (k, k2) = (self.dims()[0], other.dims()[0]);
        assert_eq!(k, k2, "matmul_at_b: leading dimensions differ ({k} vs {k2})");
        (self.dims()[1], other.dims()[1])
    }

    fn matmul_at_b_into_prepared(&self, other: &Tensor, out: &mut Tensor) {
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let n = other.dims()[1];
        let b = other.data();
        with_packed_transpose(self.data(), k, m, |at| {
            if parallel_worthwhile(m, k, n) && k >= 2 {
                // Block over k and reduce per block in parallel, then sum the
                // partials in block order. The block length is a fixed
                // function of `k` alone — never of the machine's thread count
                // — so the f32 summation grouping (and therefore every seeded
                // training trajectory) is bitwise identical across machines.
                const K_BLOCK_ROWS: usize = 1024;
                let blocks = k.div_ceil(K_BLOCK_ROWS);
                if blocks == 1 {
                    // A single block reduces exactly like the serial kernel;
                    // skip the partial-buffer machinery (and its allocations).
                    gemm_accum(out.data_mut(), at, b, m, k, n, 0, k);
                    return;
                }
                let partials: Vec<Vec<f32>> = (0..blocks)
                    .into_par_iter()
                    .map(|block| {
                        let start = block * K_BLOCK_ROWS;
                        let end = ((block + 1) * K_BLOCK_ROWS).min(k);
                        // alloc: bounded — per-block partials on the multi-block parallel path; single-block path allocates none
                        let mut partial = vec![0f32; m * n];
                        gemm_accum(&mut partial, at, b, m, k, n, start, end);
                        partial
                    })
                    // alloc: bounded — per-block partials on the multi-block parallel path; single-block path allocates none
                    .collect();
                let od = out.data_mut();
                for partial in partials {
                    for (o, &p) in od.iter_mut().zip(&partial) {
                        *o += p;
                    }
                }
            } else {
                gemm_accum(out.data_mut(), at, b, m, k, n, 0, k);
            }
        });
    }

    /// Computes `self * other^T` without materialising the transpose:
    /// `[m, k] x [n, k]^T -> [m, n]`.
    ///
    /// Used by linear/conv backward passes to propagate gradients to inputs.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Tensor {
        let (m, n) = self.matmul_a_bt_dims(other);
        let mut out = Tensor::zeros(&[m, n]);
        self.matmul_a_bt_into_prepared(other, &mut out);
        out
    }

    /// Destination-passing form of [`Tensor::matmul_a_bt`]; bitwise identical
    /// to the allocating form.
    pub fn matmul_a_bt_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, n) = self.matmul_a_bt_dims(other);
        assert_eq!(out.numel(), m * n, "matmul_a_bt_into: wrong output size");
        out.reshape_in_place(&[m, n]);
        out.fill(0.0);
        self.matmul_a_bt_into_prepared(other, out);
    }

    fn matmul_a_bt_dims(&self, other: &Tensor) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "matmul_a_bt: left operand must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_a_bt: right operand must be rank-2");
        let (k, k2) = (self.dims()[1], other.dims()[1]);
        assert_eq!(k, k2, "matmul_a_bt: inner dimensions differ ({k} vs {k2})");
        (self.dims()[0], other.dims()[0])
    }

    fn matmul_a_bt_into_prepared(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let n = other.dims()[0];
        with_packed_transpose(other.data(), n, k, |bt| {
            gemm(out.data_mut(), self.data(), bt, m, k, n);
        });
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0f32; m * n];
        transpose_into(self.data(), m, n, &mut out);
        Tensor::from_vec(out, &[n, m])
    }

    /// Matrix–vector product: `[m, n] x [n] -> [m]`.
    ///
    /// # Panics
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec: matrix must be rank-2");
        assert_eq!(v.rank(), 1, "matvec: vector must be rank-1");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(n, v.numel(), "matvec: dimension mismatch");
        let mut out = vec![0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data()[i * n..(i + 1) * n];
            *o = row.iter().zip(v.data()).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer: left operand must be rank-1");
        assert_eq!(other.rank(), 1, "outer: right operand must be rank-1");
        let (m, n) = (self.numel(), other.numel());
        let mut out = vec![0f32; m * n];
        for (i, &a) in self.data().iter().enumerate() {
            for (j, &b) in other.data().iter().enumerate() {
                out[i * n + j] = a * b;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    /// The seed's naive ikj loop — the bitwise reference every blocked kernel
    /// must reproduce exactly.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a_ip = a.data()[i * k + p];
                for j in 0..n {
                    out[i * n + j] += a_ip * b.data()[p * n + j];
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|x| x.to_bits()).collect()
    }

    fn patterned(numel: usize, dims: &[usize], scale: f32) -> Tensor {
        Tensor::from_vec(
            (0..numel)
                .map(|i| ((i * 31 % 17) as f32 - 8.0) * scale)
                .collect(),
            dims,
        )
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::arange(9).reshape(&[3, 3]);
        let c = a.matmul(&Tensor::eye(3));
        assert_eq!(c.data(), a.data());
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_bad_inner_dim() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn blocked_kernel_is_bitwise_identical_to_naive_ikj() {
        // Odd shapes: non-multiples of the MR/NR/KC tile sizes, single rows
        // and columns, reduction dims straddling the KC block edge.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 300, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (13, 257, 9),
            (16, 511, 24),
            (33, 64, 63),
        ] {
            let a = patterned(m * k, &[m, k], 0.25);
            let b = patterned(k * n, &[k, n], 0.5);
            let blocked = a.matmul(&b);
            let naive = naive_matmul(&a, &b);
            assert_eq!(bits(&blocked), bits(&naive), "shape ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_handles_empty_dimensions() {
        assert_eq!(
            Tensor::zeros(&[0, 4]).matmul(&Tensor::zeros(&[4, 3])).dims(),
            &[0, 3]
        );
        assert_eq!(
            Tensor::zeros(&[2, 0]).matmul(&Tensor::zeros(&[0, 3])).data(),
            &[0.0; 6]
        );
        assert_eq!(
            Tensor::zeros(&[2, 4]).matmul(&Tensor::zeros(&[4, 0])).numel(),
            0
        );
    }

    #[test]
    fn into_forms_match_allocating_forms_bitwise() {
        let a = patterned(7 * 13, &[7, 13], 0.3);
        let b = patterned(13 * 9, &[13, 9], 0.7);
        let bt = patterned(9 * 13, &[9, 13], 0.7);
        let at = patterned(13 * 7, &[13, 7], 0.3);

        let mut out = Tensor::full(&[63], f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(bits(&a.matmul(&b)), bits(&out));

        let mut out = Tensor::full(&[63], f32::NAN);
        a.matmul_a_bt_into(&bt, &mut out);
        assert_eq!(bits(&a.matmul_a_bt(&bt)), bits(&out));

        let mut out = Tensor::full(&[63], f32::NAN);
        at.matmul_at_b_into(&b, &mut out);
        assert_eq!(bits(&at.matmul_at_b(&b)), bits(&out));
    }

    #[test]
    fn matmul_large_matches_naive() {
        // Large enough to cross the parallel threshold.
        let m = 130;
        let k = 40;
        let n = 135;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i % 7) as f32) * 0.5 - 1.0).collect(),
            &[k, n],
        );
        let c = a.matmul(&b);
        assert_eq!(bits(&c), bits(&naive_matmul(&a, &b)));
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let b = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.5).collect(), &[4, 2]);
        let fused = a.matmul_at_b(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(approx_eq(fused.data(), explicit.data(), 1e-5));
    }

    #[test]
    fn matmul_at_b_parallel_reduction_matches_explicit_transpose() {
        // Deep k with a small m x n output: crosses the shared flop threshold
        // (m·k·n = 16·4096·16 = 1M) so the blocked parallel reduction runs.
        let (k, m, n) = (4096usize, 16usize, 16usize);
        let a = Tensor::from_vec(
            (0..k * m).map(|i| ((i % 11) as f32) * 0.25 - 1.0).collect(),
            &[k, m],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i % 7) as f32) * 0.5 - 1.5).collect(),
            &[k, n],
        );
        let fused = a.matmul_at_b(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(fused.dims(), &[m, n]);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            // The blocked reduction reassociates the k-sum; allow f32 slack.
            assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_a_bt_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|i| (i as f32) - 10.0).collect(), &[5, 4]);
        let fused = a.matmul_a_bt(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(approx_eq(fused.data(), explicit.data(), 1e-5));
    }

    #[test]
    fn fused_transpose_forms_are_bitwise_identical_to_packed_matmul() {
        // matmul_a_bt(a, b) must equal matmul(a, b^T) bit for bit (both run
        // the same kernel over the same packed panel), including odd shapes.
        for &(m, k, n) in &[(1usize, 3usize, 1usize), (5, 11, 7), (12, 300, 20)] {
            let a = patterned(m * k, &[m, k], 0.2);
            let b = patterned(n * k, &[n, k], 0.4);
            assert_eq!(bits(&a.matmul_a_bt(&b)), bits(&a.matmul(&b.transpose())));
            let at = patterned(k * m, &[k, m], 0.2);
            let c = patterned(k * n, &[k, n], 0.4);
            if !parallel_worthwhile(m, k, n) {
                assert_eq!(bits(&at.matmul_at_b(&c)), bits(&at.transpose().matmul(&c)));
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn tiled_transpose_matches_naive_on_odd_shapes() {
        for &(rows, cols) in &[(1usize, 1usize), (3, 17), (8, 8), (9, 33), (40, 7)] {
            let src: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            let mut dst = vec![0f32; rows * cols];
            transpose_into(&src, rows, cols, &mut dst);
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(dst[c * rows + r], src[r * cols + c]);
                }
            }
        }
    }

    #[test]
    fn matvec_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        assert_eq!(a.matvec(&v).data(), &[-1.0, -1.0]);
    }

    #[test]
    fn outer_product_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_associativity_with_identity_chain() {
        let a = Tensor::arange(4).reshape(&[2, 2]);
        let i = Tensor::eye(2);
        let left = a.matmul(&i).matmul(&i);
        assert_eq!(left, a);
    }
}
