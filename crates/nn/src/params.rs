//! The flat parameter plane: [`ParamBlock`] plus the vector kernels every
//! aggregation rule runs on.
//!
//! Federated aggregation never looks inside a model: FedAvg, FedProx's
//! proximal term, SCAFFOLD's control variates and FedCross' cross-aggregation
//! all operate on the flattened parameter vectors exchanged between clients
//! and the cloud server. This module collects the vector algebra they share,
//! in two layers:
//!
//! * **[`ParamBlock`]** — an `Arc`-backed, cheaply clonable, copy-on-write
//!   parameter vector. Dispatching a model to a client is an `Arc` bump, not
//!   an `O(d)` copy; the buffer is only duplicated when someone actually
//!   mutates a shared block. This is the type the round pipeline
//!   (`TrainJob` / `LocalUpdate` / the FedCross middleware list) moves around.
//! * **In-place fused kernels** — `*_into` destination-passing variants of
//!   every aggregation kernel ([`interpolate_into`], [`average_into`],
//!   [`weighted_average_into`], ...), written with the same chunked-unrolled
//!   (8-wide, auto-vectorizable) inner-loop shape as the pairwise-distance
//!   kernels in `fedcross_tensor::stats`. The allocating versions are thin
//!   wrappers over these, so both paths are numerically identical
//!   element-for-element.

use fedcross_tensor::stats::{cosine_similarity, euclidean_distance, squared_distance_slices};
use std::sync::Arc;

/// A flattened model parameter vector.
pub type ParamVec = Vec<f32>;

/// Chunk width of the unrolled in-place kernels (matches
/// `fedcross_tensor::stats::KERNEL_LANES`).
const LANES: usize = fedcross_tensor::stats::KERNEL_LANES;

/// An `Arc`-backed, copy-on-write flat parameter vector.
///
/// `clone()` is a reference-count bump; mutation goes through
/// [`ParamBlock::make_mut`], which duplicates the buffer only when it is
/// shared. The round pipeline dispatches middleware models to clients as
/// `ParamBlock`s, so the per-round `O(K·d)` clone storm of a `Vec<f32>`
/// pipeline collapses to `O(K)` pointer copies.
#[derive(Debug, Clone, Default)]
pub struct ParamBlock {
    data: Arc<Vec<f32>>,
}

impl ParamBlock {
    /// Wraps an owned vector (no copy).
    pub fn new(data: Vec<f32>) -> Self {
        Self {
            data: Arc::new(data),
        }
    }

    /// A zero-filled block of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        // alloc: cold — construction-time zero init; round paths use pooled take_uninit
        Self::new(vec![0f32; dim])
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the block holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The parameters as a slice.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access with copy-on-write semantics: if this block shares its
    /// buffer with other clones the buffer is duplicated first, otherwise the
    /// existing allocation is reused as-is.
    pub fn make_mut(&mut self) -> &mut Vec<f32> {
        Arc::make_mut(&mut self.data)
    }

    /// Extracts the owned vector, reusing the allocation when this block is
    /// the unique owner and copying otherwise.
    pub fn into_vec(self) -> Vec<f32> {
        // alloc: cold — shared-owner fallback copy on handoff
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Copies the parameters into a fresh vector.
    pub fn to_vec(&self) -> Vec<f32> {
        (*self.data).clone()
    }

    /// Whether this block is the unique owner of its buffer (no outstanding
    /// clones). Exposed so tests can assert the zero-copy dispatch invariant.
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Number of `ParamBlock` clones currently sharing this buffer.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Whether two blocks share the same underlying buffer.
    pub fn ptr_eq(&self, other: &ParamBlock) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl std::ops::Deref for ParamBlock {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl AsRef<[f32]> for ParamBlock {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl From<Vec<f32>> for ParamBlock {
    fn from(data: Vec<f32>) -> Self {
        Self::new(data)
    }
}

impl From<&[f32]> for ParamBlock {
    fn from(data: &[f32]) -> Self {
        Self::new(data.to_vec())
    }
}

impl From<&Vec<f32>> for ParamBlock {
    fn from(data: &Vec<f32>) -> Self {
        Self::new(data.clone())
    }
}

impl From<&ParamBlock> for ParamBlock {
    fn from(block: &ParamBlock) -> Self {
        // A reference-count bump, preserving the zero-copy dispatch path for
        // callers that pass `&block` through `impl Into<ParamBlock>` APIs.
        block.clone()
    }
}

impl FromIterator<f32> for ParamBlock {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl PartialEq for ParamBlock {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

impl serde::Serialize for ParamBlock {
    /// Serialises as a plain JSON array of scalars, indistinguishable from a
    /// `Vec<f32>` on disk. The shim's shortest-round-trip float formatting
    /// makes the JSON round trip bitwise exact for every finite `f32`, which
    /// the resume plane's bitwise-identity guarantee relies on.
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(self.as_slice())
    }
}

impl serde::Deserialize for ParamBlock {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        <Vec<f32> as serde::Deserialize>::from_value(value).map(ParamBlock::new)
    }
}

impl PartialEq<Vec<f32>> for ParamBlock {
    fn eq(&self, other: &Vec<f32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<ParamBlock> for Vec<f32> {
    fn eq(&self, other: &ParamBlock) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f32]> for ParamBlock {
    fn eq(&self, other: &[f32]) -> bool {
        self.as_slice() == other
    }
}

/// In-place weighted accumulation `out[i] += scale * v[i]`, chunked-unrolled.
///
/// This is the shared inner loop of the averaging kernels; the per-element
/// arithmetic is exactly `out += scale * v`, so results are bitwise identical
/// to a naive loop.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
fn accumulate_scaled(out: &mut [f32], v: &[f32], scale: f32) {
    assert_eq!(out.len(), v.len(), "accumulate requires equal lengths");
    let mut out_chunks = out.chunks_exact_mut(LANES);
    let mut v_chunks = v.chunks_exact(LANES);
    for (oc, vc) in (&mut out_chunks).zip(&mut v_chunks) {
        for lane in 0..LANES {
            oc[lane] += scale * vc[lane];
        }
    }
    for (o, &x) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(v_chunks.remainder())
    {
        *o += scale * x;
    }
}

/// Element-wise mean of a set of equally weighted parameter vectors.
///
/// This is the `GlobalModelGen` step of FedCross (Section III-B3) as well as
/// plain FedAvg over clients with equal sample counts.
///
/// # Panics
/// Panics if `vectors` is empty or the vectors have different lengths.
pub fn average<V: AsRef<[f32]>>(vectors: &[V]) -> ParamVec {
    assert!(!vectors.is_empty(), "average requires at least one vector");
    // alloc: bounded — one param-vector accumulator per baseline round; FedCross rounds use *_into kernels
    let mut out = vec![0f32; vectors[0].as_ref().len()];
    average_into(&mut out, vectors);
    out
}

/// Destination-passing [`average`]: writes the mean into `out`, reusing its
/// allocation. Allocation-free: the uniform weight is applied directly
/// (`1/K` equals the normalised weight `1.0 / Σ 1.0` bit-for-bit for any
/// realistic `K`, so results are identical to
/// [`weighted_average_into`] with all-ones weights).
///
/// # Panics
/// Panics if `vectors` is empty, the vectors have different lengths, or `out`
/// has the wrong length.
pub fn average_into<V: AsRef<[f32]>>(out: &mut [f32], vectors: &[V]) {
    assert!(!vectors.is_empty(), "average requires at least one vector");
    let dim = vectors[0].as_ref().len();
    assert_eq!(out.len(), dim, "output length must match the vectors");
    let scale = 1.0 / vectors.len() as f32;
    out.fill(0.0);
    for vec in vectors {
        let vec = vec.as_ref();
        assert_eq!(vec.len(), dim, "all vectors must have identical length");
        accumulate_scaled(out, vec, scale);
    }
}

/// Weighted element-wise average of parameter vectors.
///
/// Weights are normalised internally, matching FedAvg's sample-count
/// weighting `w = Σ (n_i / n) w_i`.
///
/// # Panics
/// Panics if inputs are empty, lengths differ, or the weights sum to zero.
pub fn weighted_average<V: AsRef<[f32]>>(vectors: &[V], weights: &[f32]) -> ParamVec {
    assert!(!vectors.is_empty(), "weighted_average requires vectors");
    let mut out = vec![0f32; vectors[0].as_ref().len()];
    weighted_average_into(&mut out, vectors, weights);
    out
}

/// Destination-passing [`weighted_average`]: writes the weighted mean into
/// `out`, reusing its allocation. Numerically identical to the allocating
/// version element-for-element.
///
/// # Panics
/// Panics if inputs are empty, lengths differ, the weights sum to zero, or
/// `out` has the wrong length.
pub fn weighted_average_into<V: AsRef<[f32]>>(out: &mut [f32], vectors: &[V], weights: &[f32]) {
    assert!(!vectors.is_empty(), "weighted_average requires vectors");
    assert_eq!(
        vectors.len(),
        weights.len(),
        "one weight per vector is required"
    );
    let dim = vectors[0].as_ref().len();
    assert_eq!(out.len(), dim, "output length must match the vectors");
    let total: f32 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    out.fill(0.0);
    for (vec, &w) in vectors.iter().zip(weights) {
        let vec = vec.as_ref();
        assert_eq!(vec.len(), dim, "all vectors must have identical length");
        accumulate_scaled(out, vec, w / total);
    }
}

/// Convex interpolation `alpha * a + (1 - alpha) * b`.
///
/// This is exactly the FedCross `CrossAggr` fusion rule (Section III-B2) with
/// `a` the uploaded middleware model and `b` its collaborative model.
///
/// # Panics
/// Panics if the vectors have different lengths.
pub fn interpolate(a: &[f32], b: &[f32], alpha: f32) -> ParamVec {
    let mut out = vec![0f32; a.len()];
    interpolate_into(&mut out, a, b, alpha);
    out
}

/// Destination-passing [`interpolate`]: writes `alpha * a + (1 - alpha) * b`
/// into `out` with the chunked-unrolled inner loop. `out` may alias neither
/// input borrow-wise, but reusing a retired buffer (e.g. last round's
/// middleware model) is exactly the intended use.
///
/// # Panics
/// Panics if the lengths differ.
pub fn interpolate_into(out: &mut [f32], a: &[f32], b: &[f32], alpha: f32) {
    assert_eq!(a.len(), b.len(), "interpolate requires equal lengths");
    assert_eq!(out.len(), a.len(), "output length must match the inputs");
    let beta = 1.0 - alpha;
    let mut out_chunks = out.chunks_exact_mut(LANES);
    let mut a_chunks = a.chunks_exact(LANES);
    let mut b_chunks = b.chunks_exact(LANES);
    for ((oc, ac), bc) in (&mut out_chunks).zip(&mut a_chunks).zip(&mut b_chunks) {
        for lane in 0..LANES {
            oc[lane] = alpha * ac[lane] + beta * bc[lane];
        }
    }
    for ((o, &x), &y) in out_chunks
        .into_remainder()
        .iter_mut()
        .zip(a_chunks.remainder())
        .zip(b_chunks.remainder())
    {
        *o = alpha * x + beta * y;
    }
}

/// In-place `target += alpha * delta`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add_scaled(target: &mut [f32], delta: &[f32], alpha: f32) {
    accumulate_scaled(target, delta, alpha);
}

/// Element-wise difference `a - b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn difference(a: &[f32], b: &[f32]) -> ParamVec {
    assert_eq!(a.len(), b.len(), "difference requires equal lengths");
    // alloc: bounded — param-sized delta on baseline/compress paths
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// In-place element-wise addition `target += v`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add_into(target: &mut [f32], v: &[f32]) {
    assert_eq!(target.len(), v.len(), "add_into requires equal lengths");
    for (t, &x) in target.iter_mut().zip(v) {
        *t += x;
    }
}

/// In-place element-wise subtraction `target -= v`.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub_into(target: &mut [f32], v: &[f32]) {
    assert_eq!(target.len(), v.len(), "sub_into requires equal lengths");
    for (t, &x) in target.iter_mut().zip(v) {
        *t -= x;
    }
}

/// Squared L2 distance between two parameter vectors.
pub fn squared_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "squared_distance requires equal lengths");
    squared_distance_slices(a, b) as f32
}

/// L2 norm of a parameter vector.
pub fn l2_norm(a: &[f32]) -> f32 {
    a.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt() as f32
}

/// Cosine similarity between two parameter vectors (re-exported from the
/// tensor crate so callers only need `fedcross-nn`).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_similarity(a, b)
}

/// Euclidean distance between two parameter vectors.
pub fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    euclidean_distance(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_of_identical_vectors_is_the_vector() {
        let v = vec![1.0, -2.0, 3.0];
        let avg = average(&[v.clone(), v.clone(), v.clone()]);
        assert_eq!(avg, v);
    }

    #[test]
    fn average_of_two_vectors_is_midpoint() {
        let avg = average(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(avg, vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let avg = weighted_average(&[vec![0.0], vec![10.0]], &[1.0, 3.0]);
        assert!((avg[0] - 7.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_average_is_scale_invariant_in_weights() {
        let vs = [vec![1.0, 2.0], vec![3.0, 6.0]];
        let a = weighted_average(&vs, &[1.0, 2.0]);
        let b = weighted_average(&vs, &[10.0, 20.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn weighted_average_rejects_zero_weights() {
        let _ = weighted_average(&[vec![1.0]], &[0.0]);
    }

    #[test]
    fn interpolate_endpoints() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert_eq!(interpolate(&a, &b, 1.0), a);
        assert_eq!(interpolate(&a, &b, 0.0), b);
        assert_eq!(interpolate(&a, &b, 0.5), vec![2.0, 3.0]);
    }

    #[test]
    fn interpolate_matches_cross_aggr_formula() {
        // CrossAggr(v, v_co) = α v + (1-α) v_co
        let v = vec![2.0, -4.0, 8.0];
        let co = vec![0.0, 0.0, 0.0];
        let fused = interpolate(&v, &co, 0.99);
        for (f, x) in fused.iter().zip(&v) {
            assert!((f - 0.99 * x).abs() < 1e-6);
        }
    }

    #[test]
    fn add_scaled_updates_in_place() {
        let mut t = vec![1.0, 1.0];
        add_scaled(&mut t, &[2.0, -2.0], 0.5);
        assert_eq!(t, vec![2.0, 0.0]);
    }

    #[test]
    fn difference_and_distance_agree() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.0, 0.0, 0.0];
        let d = difference(&a, &b);
        assert_eq!(d, a);
        assert!((squared_distance(&a, &b) - 14.0).abs() < 1e-6);
        assert!((l2_norm(&a) - 14f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cosine_and_euclidean_wrappers() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!(cosine(&a, &b).abs() < 1e-6);
        assert!((euclidean(&a, &b) - 2f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_and_sub_into_are_inverses() {
        let mut t = vec![1.0, -2.0, 3.5];
        let v = vec![0.5, 0.5, -1.5];
        add_into(&mut t, &v);
        sub_into(&mut t, &v);
        assert_eq!(t, vec![1.0, -2.0, 3.5]);
    }

    // --- ParamBlock ---

    #[test]
    fn param_block_clone_is_shared_until_mutated() {
        let mut a = ParamBlock::from(vec![1.0, 2.0, 3.0]);
        assert!(a.is_unique());
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.ref_count(), 2);
        // Copy-on-write: mutating `a` leaves `b` untouched.
        a.make_mut()[0] = 9.0;
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.as_slice(), &[9.0, 2.0, 3.0]);
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
        assert!(a.is_unique() && b.is_unique());
    }

    #[test]
    fn unique_param_block_mutates_without_copying() {
        let mut a = ParamBlock::from(vec![0.0; 16]);
        let before = a.as_slice().as_ptr();
        a.make_mut()[3] = 5.0;
        assert_eq!(a.as_slice().as_ptr(), before, "unique block must not copy");
    }

    #[test]
    fn param_block_into_vec_reuses_unique_buffers() {
        let a = ParamBlock::from(vec![1.0, 2.0]);
        let ptr = a.as_slice().as_ptr();
        let v = a.into_vec();
        assert_eq!(v.as_ptr(), ptr, "unique into_vec must not copy");

        let shared = ParamBlock::from(vec![3.0, 4.0]);
        let keep = shared.clone();
        let v = shared.into_vec();
        assert_eq!(v, vec![3.0, 4.0]);
        assert_eq!(keep.as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn param_block_equality_and_views() {
        let a = ParamBlock::from(vec![1.0, 2.0]);
        assert_eq!(a, vec![1.0, 2.0]);
        assert_eq!(vec![1.0, 2.0], a);
        assert_eq!(a, ParamBlock::from(vec![1.0, 2.0]));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(&a[..1], &[1.0]);
        let collected: ParamBlock = [1.0f32, 2.0].into_iter().collect();
        assert_eq!(collected, a);
        assert_eq!(ParamBlock::zeros(3).as_slice(), &[0.0; 3]);
    }

    // --- equivalence of in-place and allocating kernels ---

    fn test_vectors(k: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..k)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 31 + j * 7) % 23) as f32 * 0.17 - 1.9)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn interpolate_into_is_bitwise_identical_to_allocating_and_naive() {
        for dim in [1usize, 7, 8, 9, 31, 256, 1000] {
            let vs = test_vectors(2, dim);
            for &alpha in &[0.5f32, 0.75, 0.99] {
                let allocating = interpolate(&vs[0], &vs[1], alpha);
                let mut in_place = vec![f32::NAN; dim];
                interpolate_into(&mut in_place, &vs[0], &vs[1], alpha);
                let naive: Vec<f32> = vs[0]
                    .iter()
                    .zip(&vs[1])
                    .map(|(&x, &y)| alpha * x + (1.0 - alpha) * y)
                    .collect();
                assert_eq!(bits(&allocating), bits(&in_place));
                assert_eq!(bits(&naive), bits(&in_place));
            }
        }
    }

    #[test]
    fn weighted_average_into_is_bitwise_identical_to_allocating_and_naive() {
        for dim in [1usize, 8, 9, 100] {
            let vs = test_vectors(4, dim);
            let weights = [1.0f32, 2.5, 0.25, 4.0];
            let allocating = weighted_average(&vs, &weights);
            let mut in_place = vec![f32::NAN; dim];
            weighted_average_into(&mut in_place, &vs, &weights);
            // Naive reference mirroring the documented accumulation order.
            let total: f32 = weights.iter().sum();
            let mut naive = vec![0f32; dim];
            for (v, &w) in vs.iter().zip(&weights) {
                let scale = w / total;
                for (n, &x) in naive.iter_mut().zip(v) {
                    *n += scale * x;
                }
            }
            assert_eq!(bits(&allocating), bits(&in_place));
            assert_eq!(bits(&naive), bits(&in_place));
        }
    }

    #[test]
    fn average_into_matches_average() {
        let vs = test_vectors(3, 65);
        let mut out = vec![0f32; 65];
        average_into(&mut out, &vs);
        assert_eq!(bits(&average(&vs)), bits(&out));
    }

    #[test]
    #[should_panic]
    fn interpolate_into_rejects_length_mismatch() {
        let mut out = vec![0f32; 3];
        interpolate_into(&mut out, &[1.0, 2.0, 3.0], &[1.0, 2.0], 0.9);
    }

    #[test]
    #[should_panic]
    fn weighted_average_into_rejects_wrong_output_length() {
        let mut out = vec![0f32; 2];
        weighted_average_into(&mut out, &[vec![1.0, 2.0, 3.0]], &[1.0]);
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }
}
