//! The call-graph rule series: **A** (allocation discipline), **P** (panic
//! hygiene) and **W** (waiver/marker hygiene).
//!
//! * **A001** — an allocation construct (`Vec::new`, `vec!`, `.to_vec()`,
//!   `.collect()`, `.clone()`, `Box::new`, `format!`, `String::from`, …)
//!   inside a function *reachable from a hot-path root* (see
//!   `callgraph.rs`) must carry a reasoned
//!   `alloc: pooled|cold|bounded — reason` marker. `pooled` = arena
//!   cache-miss fallback, `cold` = off the steady-state path (warm-up,
//!   setup, error paths), `bounded` = small fixed-size bookkeeping that the
//!   runtime pins already budget for.
//! * **P001** — `.unwrap()`, `.expect(…)` without a non-empty literal
//!   message, and `panic!(…)` in library crates (everything except `bench`)
//!   must carry a reasoned `panic: reason` marker. An `.expect("…")` with a
//!   non-empty message is self-reasoning and needs no marker.
//! * **W001** — a `lint: allow(RULE)` waiver whose window (its line plus
//!   the lookback below it) contains no finding of that rule is stale.
//! * **W002** — an `alloc:`/`panic:` marker whose window contains no
//!   matching allocation/panic construct is stale.
//!
//! Rules A and P scan non-test code only; rule W scans everything (a stale
//! waiver in a test module is just as misleading).

use crate::callgraph::{CallGraph, IndexedFile};
use crate::markers::{
    alloc_marker_for, alloc_markers, panic_marker_for, panic_markers, ALLOC_KINDS,
};
use crate::{Finding, RuleId};

/// Path- and macro-shaped allocation constructs (word-bounded prefix match).
const ALLOC_PATHS: [&str; 8] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "vec!",
    "Box::new(",
    "Arc::new(",
    "String::from(",
    "String::new(",
    "format!",
];

/// Method-shaped allocation constructs (`.name(` or `.name::<`).
const ALLOC_METHODS: [&str; 10] = [
    "to_vec",
    "to_owned",
    "to_string",
    "collect",
    "clone",
    "cloned",
    "clone_model",
    "clone_layer",
    "boxed",
    "params_flat",
];

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// All allocation-construct sites in a line, as display labels.
fn alloc_sites_in_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    for pat in ALLOC_PATHS {
        let mut from = 0;
        while let Some(p) = line[from..].find(pat) {
            let abs = from + p;
            from = abs + pat.len();
            let before_ok = abs == 0
                || !line[..abs].chars().next_back().is_some_and(is_ident_char);
            if before_ok {
                out.push(pat.trim_end_matches('(').to_string());
            }
        }
    }
    for name in ALLOC_METHODS {
        let needle = format!(".{name}");
        let mut from = 0;
        while let Some(p) = line[from..].find(&needle) {
            let abs = from + p;
            from = abs + needle.len();
            let after = &line[abs + needle.len()..];
            if after.starts_with('(') || after.starts_with("::<") {
                out.push(format!(".{name}()"));
            }
        }
    }
    out
}

/// One panic-construct site.
struct PanicSite {
    label: &'static str,
    /// An `.expect("non-empty literal")` documents itself.
    self_reasoned: bool,
}

/// All panic-construct sites in a line (`next_line` resolves rustfmt-split
/// `.expect(\n    "msg"` messages).
fn panic_sites_in_line(line: &str, next_line: Option<&str>) -> Vec<PanicSite> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find(".unwrap") {
        let abs = from + p;
        from = abs + ".unwrap".len();
        if line[abs + ".unwrap".len()..].starts_with('(') {
            out.push(PanicSite { label: ".unwrap()", self_reasoned: false });
        }
    }
    let mut from = 0;
    while let Some(p) = line[from..].find(".expect") {
        let abs = from + p;
        from = abs + ".expect".len();
        let after = &line[abs + ".expect".len()..];
        if !after.starts_with('(') {
            continue;
        }
        // A non-empty string literal argument is a reasoned expect. The
        // tokenizer blanks literal contents but keeps the quotes, so a
        // non-empty message shows up as `"␣…␣"`.
        let arg = after[1..].trim_start();
        let arg = if arg.is_empty() {
            next_line.map(str::trim_start).unwrap_or("")
        } else {
            arg
        };
        let self_reasoned = arg.starts_with('"')
            && arg[1..].find('"').is_some_and(|close| close > 0);
        out.push(PanicSite { label: ".expect(...)", self_reasoned });
    }
    let mut from = 0;
    while let Some(p) = line[from..].find("panic!") {
        let abs = from + p;
        from = abs + "panic!".len();
        let before_ok = abs == 0
            || !line[..abs].chars().next_back().is_some_and(is_ident_char);
        if before_ok {
            out.push(PanicSite { label: "panic!", self_reasoned: false });
        }
    }
    out
}

/// Rule A001 over every hot-path-reachable function in the workspace.
pub fn rule_a001(files: &[IndexedFile], graph: &CallGraph, findings: &mut [Vec<Finding>]) {
    for (node, &reachable) in graph.reachable.iter().enumerate() {
        if !reachable {
            continue;
        }
        let fref = graph.nodes[node];
        let file = &files[fref.file];
        // `bench` is measurement tooling and `lint` is the checker itself —
        // neither sits on a trajectory path; their fns can still appear in
        // the graph via name aliasing.
        if file.crate_name == "bench" || file.crate_name == "lint" {
            continue;
        }
        let item = &file.parsed.fns[fref.item];
        let Some((lo, hi)) = item.body else { continue };
        let markers = alloc_markers(&file.stripped);
        for line_idx in lo..=hi.min(file.stripped.code.len() - 1) {
            if file.parsed.owner[line_idx] != Some(fref.item) {
                continue;
            }
            for label in alloc_sites_in_line(&file.stripped.code[line_idx]) {
                let suffix = match alloc_marker_for(&markers, line_idx) {
                    Some(m) if ALLOC_KINDS.contains(&m.kind.as_str()) => {
                        if m.reason.is_some() {
                            continue; // properly classified and reasoned
                        }
                        " [marker present but missing a reason]"
                    }
                    Some(_) => " [marker kind must be pooled|cold|bounded]",
                    None => "",
                };
                findings[fref.file].push(Finding {
                    rule: RuleId::A001,
                    file: file.display_path.clone(),
                    line: line_idx + 1,
                    message: format!(
                        "`{label}` in `fn {}` is reachable from a hot-path root ({}); \
                         classify it with `alloc: pooled|cold|bounded - reason` or move it off the round path{suffix}",
                        item.name,
                        graph.chain_label(files, node),
                    ),
                    waiver: None,
                });
            }
        }
    }
}

/// Rule P001 over every non-test line of every library crate.
pub fn rule_p001(files: &[IndexedFile], findings: &mut [Vec<Finding>]) {
    for (fi, file) in files.iter().enumerate() {
        if file.crate_name == "bench" {
            continue;
        }
        let markers = panic_markers(&file.stripped);
        for (line_idx, line) in file.stripped.code.iter().enumerate() {
            if file.parsed.line_in_test(line_idx) {
                continue;
            }
            let next = file.stripped.code.get(line_idx + 1).map(String::as_str);
            for site in panic_sites_in_line(line, next) {
                if site.self_reasoned {
                    continue;
                }
                let suffix = match panic_marker_for(&markers, line_idx) {
                    Some(m) if m.reason.is_some() => continue,
                    Some(_) => " [marker present but missing a reason]",
                    None => "",
                };
                findings[fi].push(Finding {
                    rule: RuleId::P001,
                    file: file.display_path.clone(),
                    line: line_idx + 1,
                    message: format!(
                        "`{}` in a library crate; convert to a typed error, a reasoned \
                         `.expect(\"...\")`, or mark `panic: reason`{suffix}",
                        site.label
                    ),
                    waiver: None,
                });
            }
        }
    }
}

/// Rules W001/W002: stale waivers and stale markers.
///
/// Runs after every other rule (including waiver resolution) so "does this
/// waiver still silence anything?" is answered against the final finding
/// set. A waiver at line L covers findings on lines `[L, L+lookback]`; the
/// staleness window mirrors that exactly.
pub fn rule_w(files: &[IndexedFile], findings: &mut [Vec<Finding>]) {
    use crate::markers::LOOKBACK_LINES;
    for (fi, file) in files.iter().enumerate() {
        let mut stale = Vec::new();
        // W001 — waivers with no finding of the waived rule in the window.
        for (line_idx, comment) in file.stripped.comments.iter().enumerate() {
            let mut from = 0;
            while let Some(p) = comment[from..].find("lint: allow(") {
                let rest = &comment[from + p + "lint: allow(".len()..];
                from += p + "lint: allow(".len();
                let Some(close) = rest.find(')') else { break };
                let Some(rule) = RuleId::parse(&rest[..close]) else { continue };
                let hi = line_idx + LOOKBACK_LINES;
                let used = findings[fi]
                    .iter()
                    .any(|f| f.rule == rule && f.line > line_idx && f.line <= hi + 1);
                if !used {
                    stale.push(Finding {
                        rule: RuleId::W001,
                        file: file.display_path.clone(),
                        line: line_idx + 1,
                        message: format!(
                            "stale waiver: no {} finding within its window; remove it",
                            rule.code()
                        ),
                        waiver: None,
                    });
                }
            }
        }
        // W002 — markers with no matching construct in the window.
        let code = &file.stripped.code;
        let construct_in_window = |line: usize, alloc: bool| -> bool {
            let hi = (line + LOOKBACK_LINES).min(code.len().saturating_sub(1));
            (line..=hi).any(|idx| {
                if alloc {
                    !alloc_sites_in_line(&code[idx]).is_empty()
                } else {
                    let next = code.get(idx + 1).map(String::as_str);
                    !panic_sites_in_line(&code[idx], next).is_empty()
                }
            })
        };
        for m in alloc_markers(&file.stripped) {
            if !construct_in_window(m.line, true) {
                stale.push(Finding {
                    rule: RuleId::W002,
                    file: file.display_path.clone(),
                    line: m.line + 1,
                    message: "stale `alloc:` marker: no allocation construct within its window; remove it"
                        .to_string(),
                    waiver: None,
                });
            }
        }
        for m in panic_markers(&file.stripped) {
            if !construct_in_window(m.line, false) {
                stale.push(Finding {
                    rule: RuleId::W002,
                    file: file.display_path.clone(),
                    line: m.line + 1,
                    message: "stale `panic:` marker: no panic construct within its window; remove it"
                        .to_string(),
                    waiver: None,
                });
            }
        }
        findings[fi].extend(stale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_site_detection_is_word_bounded() {
        assert_eq!(alloc_sites_in_line("let v = Vec::new();"), vec!["Vec::new"]);
        assert_eq!(alloc_sites_in_line("let v = vec![0f32; n];"), vec!["vec!"]);
        assert!(alloc_sites_in_line("let v = MyVec::new();").is_empty());
        assert_eq!(
            alloc_sites_in_line("let s: Vec<_> = xs.iter().collect::<Vec<_>>();"),
            vec![".collect()"]
        );
        assert_eq!(alloc_sites_in_line("let c = block.clone();"), vec![".clone()"]);
        assert!(alloc_sites_in_line("let c = self.cloned_count;").is_empty());
        assert!(alloc_sites_in_line("let m = template.clone_model();").iter().any(|s| s == ".clone_model()"));
    }

    #[test]
    fn panic_site_detection_distinguishes_reasoned_expects() {
        let sites = panic_sites_in_line("let x = v.pop().unwrap();", None);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].self_reasoned);
        // unwrap_or family is not a panic site.
        assert!(panic_sites_in_line("let x = v.pop().unwrap_or(0);", None).is_empty());
        let sites = panic_sites_in_line("let x = v.pop().expect(\"ring is non-empty\");", None);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].self_reasoned);
        let sites = panic_sites_in_line("let x = v.pop().expect(\"\");", None);
        assert!(!sites[0].self_reasoned, "{}", sites.len());
        let sites = panic_sites_in_line("let x = v.pop().expect(msg);", None);
        assert!(!sites[0].self_reasoned);
        // rustfmt-split message on the next line.
        let sites = panic_sites_in_line("let x = v.pop().expect(", Some("    \"buffer warmed above\","));
        assert!(sites[0].self_reasoned);
        let sites = panic_sites_in_line("panic!(\"corrupt state\");", None);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].self_reasoned, "panic! always needs a marker");
    }
}
