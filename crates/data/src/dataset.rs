//! In-memory labelled dataset and mini-batching.

use fedcross_tensor::{SeededRng, Tensor};

/// One mini-batch: a feature tensor whose first dimension is the batch size,
/// and one integer label per sample.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Features, shape `[batch, ...sample dims]`.
    pub features: Tensor,
    /// Class labels, one per sample.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// An empty batch intended as a reusable gather buffer: filling it with
    /// [`Dataset::gather_batch`] grows its buffers once and then reuses them
    /// for every subsequent batch and epoch (zero steady-state allocations in
    /// the training loop).
    pub fn reusable() -> Self {
        Self {
            features: Tensor::zeros(&[0]),
            labels: Vec::new(),
        }
    }
}

/// A labelled dataset stored as one dense feature tensor plus a label vector.
///
/// This is the unit of data ownership in the simulation: each client holds one
/// `Dataset`, and the server holds one for global evaluation.
#[derive(Debug, Clone)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if the number of feature rows and labels differ, or a label is
    /// out of range.
    pub fn new(features: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert!(features.rank() >= 1, "features must have a batch dimension");
        assert_eq!(
            features.dims()[0],
            labels.len(),
            "feature rows and labels must match"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < num_classes"
        );
        Self {
            features,
            labels,
            num_classes,
        }
    }

    /// Creates an empty dataset with the given per-sample dims.
    pub fn empty(sample_dims: &[usize], num_classes: usize) -> Self {
        let mut dims = vec![0usize];
        dims.extend_from_slice(sample_dims);
        Self {
            features: Tensor::zeros(&dims),
            labels: Vec::new(),
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct classes the labels are drawn from.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The full feature tensor, `[len, ...sample dims]`.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-sample feature dimensions (without the batch dimension).
    pub fn sample_dims(&self) -> &[usize] {
        &self.features.dims()[1..]
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Returns a new dataset containing only the given sample indices (in the
    /// given order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let features = self.features.index_select0(indices);
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        Dataset {
            features,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Concatenates several datasets (which must agree on sample dims and
    /// class count).
    ///
    /// # Panics
    /// Panics if `parts` is empty or the parts are incompatible.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat requires at least one dataset");
        let num_classes = parts[0].num_classes;
        let mut labels = Vec::new();
        let tensors: Vec<&Tensor> = parts
            .iter()
            .map(|d| {
                assert_eq!(d.num_classes, num_classes, "class counts must match");
                labels.extend_from_slice(&d.labels);
                &d.features
            })
            .collect();
        Dataset {
            features: Tensor::concat0(&tensors),
            labels,
            num_classes,
        }
    }

    /// Splits the dataset into `(train, test)` with `test_fraction` of the
    /// samples (rounded down, at least one if possible) going to the test set.
    pub fn split(&self, test_fraction: f32, rng: &mut SeededRng) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&test_fraction), "fraction must be in [0, 1)");
        let n = self.len();
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let n_test = ((n as f32) * test_fraction) as usize;
        let (test_idx, train_idx) = order.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Splits the dataset into shuffled mini-batches of at most `batch_size`
    /// samples. With `rng = None` the original order is kept (deterministic
    /// evaluation); with an RNG the order is reshuffled every call (training).
    pub fn minibatches(&self, batch_size: usize, rng: Option<&mut SeededRng>) -> Vec<Batch> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order = Vec::new();
        self.epoch_order(rng, &mut order);
        order
            .chunks(batch_size)
            .map(|chunk| Batch {
                features: self.features.index_select0(chunk),
                labels: chunk.iter().map(|&i| self.labels[i]).collect(),
            })
            .collect()
    }

    /// Fills `order` with one epoch's sample order (shuffled when an RNG is
    /// given), reusing the vector's capacity. Consumes the RNG exactly like
    /// [`Dataset::minibatches`], so chunking the order and gathering with
    /// [`Dataset::gather_batch`] reproduces the same batches without the
    /// per-epoch allocation storm.
    pub fn epoch_order(&self, rng: Option<&mut SeededRng>, order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..self.len());
        if !order.is_empty() {
            if let Some(rng) = rng {
                rng.shuffle(order);
            }
        }
    }

    /// Gathers the samples at `indices` into `batch`, reusing its feature and
    /// label buffers (see [`Batch::reusable`]). Produces exactly the batch
    /// [`Dataset::minibatches`] would build for the same index chunk.
    pub fn gather_batch(&self, indices: &[usize], batch: &mut Batch) {
        self.features.index_select0_into(indices, &mut batch.features);
        batch.labels.clear();
        batch.labels.extend(indices.iter().map(|&i| self.labels[i]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize, classes: usize) -> Dataset {
        let features = Tensor::from_vec((0..n * 3).map(|i| i as f32).collect(), &[n, 3]);
        let labels = (0..n).map(|i| i % classes).collect();
        Dataset::new(features, labels, classes)
    }

    #[test]
    fn construction_and_accessors() {
        let ds = toy_dataset(10, 3);
        assert_eq!(ds.len(), 10);
        assert!(!ds.is_empty());
        assert_eq!(ds.num_classes(), 3);
        assert_eq!(ds.sample_dims(), &[3]);
        assert_eq!(ds.class_counts(), vec![4, 3, 3]);
    }

    #[test]
    #[should_panic]
    fn rejects_label_out_of_range() {
        let features = Tensor::zeros(&[2, 2]);
        let _ = Dataset::new(features, vec![0, 5], 3);
    }

    #[test]
    #[should_panic]
    fn rejects_mismatched_lengths() {
        let features = Tensor::zeros(&[3, 2]);
        let _ = Dataset::new(features, vec![0, 1], 2);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::empty(&[4, 4], 10);
        assert!(ds.is_empty());
        assert_eq!(ds.sample_dims(), &[4, 4]);
        assert!(ds.minibatches(8, None).is_empty());
    }

    #[test]
    fn subset_preserves_order_and_labels() {
        let ds = toy_dataset(6, 2);
        let sub = ds.subset(&[4, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[0, 1]);
        assert_eq!(sub.features().row(0).data(), &[12.0, 13.0, 14.0]);
    }

    #[test]
    fn concat_combines_samples() {
        let a = toy_dataset(3, 2);
        let b = toy_dataset(2, 2);
        let c = Dataset::concat(&[&a, &b]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.labels().len(), 5);
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = toy_dataset(20, 4);
        let mut rng = SeededRng::new(0);
        let (train, test) = ds.split(0.25, &mut rng);
        assert_eq!(train.len() + test.len(), 20);
        assert_eq!(test.len(), 5);
    }

    #[test]
    fn minibatches_cover_every_sample_exactly_once() {
        let ds = toy_dataset(23, 3);
        let mut rng = SeededRng::new(1);
        let batches = ds.minibatches(5, Some(&mut rng));
        assert_eq!(batches.len(), 5);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 23);
        // Every feature row must appear exactly once: track by first feature value.
        let mut seen: Vec<f32> = batches
            .iter()
            .flat_map(|b| {
                (0..b.len())
                    .map(|i| b.features.get(&[i, 0]))
                    .collect::<Vec<_>>()
            })
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f32> = (0..23).map(|i| (i * 3) as f32).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn unshuffled_minibatches_keep_original_order() {
        let ds = toy_dataset(6, 2);
        let batches = ds.minibatches(4, None);
        assert_eq!(batches[0].labels, vec![0, 1, 0, 1]);
        assert_eq!(batches[1].labels, vec![0, 1]);
    }

    #[test]
    fn shuffled_minibatches_differ_between_calls() {
        let ds = toy_dataset(50, 5);
        let mut rng = SeededRng::new(2);
        let a: Vec<usize> = ds
            .minibatches(50, Some(&mut rng))
            .remove(0)
            .labels;
        let b: Vec<usize> = ds
            .minibatches(50, Some(&mut rng))
            .remove(0)
            .labels;
        assert_ne!(a, b);
    }
}
