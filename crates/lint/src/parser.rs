//! A lightweight item parser on top of the [`crate::strip`] tokenizer:
//! `fn` extraction with brace-matched body spans, `#[cfg(test)]` /
//! `#[test]` region detection, and per-line "which function owns this
//! line" attribution.
//!
//! Like the tokenizer it rides on, this is deliberately not a real Rust
//! parser — no `syn`, no dependencies. It recovers exactly the structure
//! the call-graph rules need: every function item's name, visibility,
//! body span and test-ness. The known approximations:
//!
//! * Function identity is the bare name. `impl Foo { fn get(&self) }` and
//!   `impl Bar { fn get(&self) }` are two items that share the name `get`;
//!   the call graph resolves a `.get(` call site to *both* (conservative
//!   over-approximation, see `callgraph.rs`).
//! * A body span is a line range. A line shared between a function
//!   signature and the end of the previous item is attributed to the
//!   innermost function whose span contains it.
//! * Test regions are `#[cfg(test)] mod … { … }` blocks and `#[test]`
//!   functions. `#[cfg(all(test, …))]` counts; path-based `mod tests;`
//!   out-of-line test files do not occur in this workspace.

use crate::strip::Stripped;

/// One `fn` item recovered from a source file.
#[derive(Debug, Clone)]
pub struct ParsedFn {
    /// Bare function name (no path, no generics).
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
    /// 0-based inclusive line span of the body braces, or `None` for a
    /// bodyless trait-method declaration.
    pub body: Option<(usize, usize)>,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Whether the item sits inside a `#[cfg(test)]` region or carries a
    /// `#[test]` attribute.
    pub in_test: bool,
}

/// The parsed structure of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function item, in declaration order.
    pub fns: Vec<ParsedFn>,
    /// 0-based inclusive line spans of `#[cfg(test)]` regions.
    pub test_spans: Vec<(usize, usize)>,
    /// For each line, the index (into `fns`) of the innermost function
    /// whose body contains it, if any.
    pub owner: Vec<Option<usize>>,
}

impl ParsedFile {
    /// Whether the given 0-based line lies inside a test region.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The code channel flattened into one byte buffer plus the line index of
/// every byte. The tokenizer blanks string/char contents to ASCII spaces,
/// so byte-level scanning is safe here.
struct Flat {
    bytes: Vec<u8>,
    line_of: Vec<usize>,
}

fn flatten(s: &Stripped) -> Flat {
    let mut bytes = Vec::new();
    let mut line_of = Vec::new();
    for (idx, line) in s.code.iter().enumerate() {
        for &b in line.as_bytes() {
            // Non-ASCII bytes in the code channel (only possible in odd
            // identifiers) are mapped to a placeholder so byte scanning
            // stays aligned with char positions closely enough for spans.
            bytes.push(if b.is_ascii() { b } else { b'_' });
            line_of.push(idx);
        }
        bytes.push(b'\n');
        line_of.push(idx);
    }
    Flat { bytes, line_of }
}

/// Finds the matching `}` for the `{` at `open`, returning its index.
fn match_brace(bytes: &[u8], open: usize) -> Option<usize> {
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the word at `pos..pos+len` is bounded by non-identifier bytes.
fn word_at(bytes: &[u8], pos: usize, len: usize) -> bool {
    let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
    let after_ok = pos + len >= bytes.len() || !is_ident_byte(bytes[pos + len]);
    before_ok && after_ok
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Reads the identifier starting at `i`, if any.
fn read_ident(bytes: &[u8], i: usize) -> Option<(String, usize)> {
    if i >= bytes.len() || !(bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
        return None;
    }
    let mut j = i;
    while j < bytes.len() && is_ident_byte(bytes[j]) {
        j += 1;
    }
    Some((String::from_utf8_lossy(&bytes[i..j]).into_owned(), j))
}

/// Collects `#[cfg(test)] mod/fn` region spans and `#[test]` fn spans.
fn find_test_spans(flat: &Flat) -> Vec<(usize, usize)> {
    let bytes = &flat.bytes;
    let mut spans = Vec::new();
    let mut i = 0usize;
    while let Some(p) = find_from(bytes, i, b"#[") {
        i = p + 2;
        // Read the attribute up to its closing `]` (attributes here never
        // contain `]` in strings — contents are blanked anyway).
        let Some(close) = bytes[p..].iter().position(|&b| b == b']').map(|q| p + q) else {
            break;
        };
        let attr = &bytes[p..=close];
        let attr_str = String::from_utf8_lossy(attr);
        let is_cfg_test = attr_str.starts_with("#[cfg(")
            && attr_str
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .any(|w| w == "test");
        let is_test_attr = attr_str.trim() == "#[test]";
        if !is_cfg_test && !is_test_attr {
            continue;
        }
        // Skip any further attributes, then expect `mod`/`pub mod`/`fn`…
        let mut j = skip_ws(bytes, close + 1);
        while j + 1 < bytes.len() && bytes[j] == b'#' && bytes[j + 1] == b'[' {
            let Some(c2) = bytes[j..].iter().position(|&b| b == b']').map(|q| j + q) else {
                break;
            };
            j = skip_ws(bytes, c2 + 1);
        }
        // Walk over visibility / `unsafe` / `const` modifiers.
        while let Some((word, after)) = read_ident(bytes, j) {
            match word.as_str() {
                "pub" => {
                    let mut k = skip_ws(bytes, after);
                    if k < bytes.len() && bytes[k] == b'(' {
                        while k < bytes.len() && bytes[k] != b')' {
                            k += 1;
                        }
                        k += 1;
                    }
                    j = skip_ws(bytes, k);
                }
                "unsafe" | "const" | "async" | "extern" => j = skip_ws(bytes, after),
                _ => break,
            }
        }
        let Some((word, _)) = read_ident(bytes, j) else { continue };
        if word != "mod" && word != "fn" && word != "impl" {
            continue;
        }
        // Find the block's opening brace (or `;` for `mod name;`).
        let mut k = j;
        let open = loop {
            if k >= bytes.len() || bytes[k] == b';' {
                break None;
            }
            if bytes[k] == b'{' {
                break Some(k);
            }
            k += 1;
        };
        let Some(open) = open else { continue };
        let Some(end) = match_brace(bytes, open) else { continue };
        spans.push((flat.line_of[p], flat.line_of[end]));
        i = close + 1;
    }
    spans
}

fn find_from(bytes: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

/// Parses one stripped file into function items and test spans.
pub fn parse(s: &Stripped) -> ParsedFile {
    let flat = flatten(s);
    let bytes = &flat.bytes;
    let test_spans = find_test_spans(&flat);
    let in_test = |line: usize| test_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi);

    let mut fns = Vec::new();
    let mut i = 0usize;
    while let Some(p) = find_from(bytes, i, b"fn") {
        i = p + 2;
        if !word_at(bytes, p, 2) {
            continue;
        }
        let after = skip_ws(bytes, p + 2);
        // `fn(` is a function-pointer type, not an item.
        let Some((name, name_end)) = read_ident(bytes, after) else { continue };
        // Scan the signature for the body `{` or a terminating `;`.
        // `;` inside `[u8; 3]` or `(…)` does not terminate; `{` inside a
        // const-generic default (`[T; { N }]`) does not occur here.
        let mut depth = 0i32;
        let mut k = name_end;
        let body_open = loop {
            if k >= bytes.len() {
                break None;
            }
            match bytes[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b';' if depth == 0 => break None,
                b'{' if depth == 0 => break Some(k),
                _ => {}
            }
            k += 1;
        };
        let body = body_open.and_then(|open| {
            match_brace(bytes, open).map(|end| (flat.line_of[open], flat.line_of[end]))
        });
        let decl_line = flat.line_of[p];
        // Visibility: a `pub` token in the same line's prefix before `fn`
        // (rustfmt keeps `pub … fn` on one line).
        let line_start = (0..p).rev().find(|&q| bytes[q] == b'\n').map_or(0, |q| q + 1);
        let prefix = String::from_utf8_lossy(&bytes[line_start..p]);
        let is_pub = prefix
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w == "pub");
        fns.push(ParsedFn {
            name,
            decl_line,
            body,
            is_pub,
            in_test: in_test(decl_line),
        });
        // Continue scanning from inside the signature so nested fns (and
        // fns further down) are all found.
        i = name_end;
    }

    // Innermost-owner attribution: paint wider spans first so narrower
    // (nested) spans overwrite them.
    let num_lines = s.code.len();
    let mut owner: Vec<Option<usize>> = vec![None; num_lines];
    let mut order: Vec<usize> = (0..fns.len()).collect();
    order.sort_by_key(|&idx| {
        std::cmp::Reverse(fns[idx].body.map_or(0, |(lo, hi)| hi - lo))
    });
    for idx in order {
        if let Some((lo, hi)) = fns[idx].body {
            for slot in owner.iter_mut().take(hi.min(num_lines - 1) + 1).skip(lo) {
                *slot = Some(idx);
            }
        }
    }

    ParsedFile { fns, test_spans, owner }
}

/// Extracts the set of callee names referenced from the body of `fns[idx]`,
/// excluding lines owned by nested functions. A callee is any word-bounded
/// identifier directly followed by `(` that is not a keyword or macro
/// invocation; `path::to::callee(` and `.method(` both yield the final
/// segment.
pub fn callees(s: &Stripped, parsed: &ParsedFile, idx: usize) -> Vec<String> {
    const KEYWORDS: [&str; 18] = [
        "if", "while", "match", "return", "for", "in", "as", "loop", "move", "else", "let",
        "mut", "fn", "impl", "dyn", "where", "break", "continue",
    ];
    let Some((lo, hi)) = parsed.fns[idx].body else {
        return Vec::new();
    };
    let mut out = std::collections::BTreeSet::new();
    for line_idx in lo..=hi.min(s.code.len() - 1) {
        if parsed.owner[line_idx] != Some(idx) {
            continue; // line belongs to a nested fn
        }
        let bytes = s.code[line_idx].as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            if !(bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
                i += 1;
                continue;
            }
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            if start > 0 && is_ident_byte(bytes[start - 1]) {
                continue;
            }
            let mut j = i;
            while j < bytes.len() && bytes[j] == b' ' {
                j += 1;
            }
            // `name!` is a macro; `name(` is a call candidate.
            if j < bytes.len() && bytes[j] == b'(' {
                let name = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                if !KEYWORDS.contains(&name.as_str()) && name != parsed.fns[idx].name {
                    out.insert(name);
                }
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip::strip;

    fn parse_src(src: &str) -> (Stripped, ParsedFile) {
        let s = strip(src);
        let p = parse(&s);
        (s, p)
    }

    #[test]
    fn finds_fns_with_bodies_and_visibility() {
        let src = "pub fn alpha() -> usize {\n    1\n}\nfn beta(x: [u8; 3]) {\n    helper();\n}\n";
        let (_, p) = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "alpha");
        assert!(p.fns[0].is_pub);
        assert_eq!(p.fns[0].body, Some((0, 2)));
        assert_eq!(p.fns[1].name, "beta");
        assert!(!p.fns[1].is_pub);
        assert_eq!(p.fns[1].body, Some((3, 5)));
    }

    #[test]
    fn trait_method_declarations_have_no_body() {
        let src = "pub trait T {\n    fn required(&self) -> usize;\n    fn provided(&self) -> usize {\n        self.required()\n    }\n}\n";
        let (_, p) = parse_src(src);
        let required = p.fns.iter().find(|f| f.name == "required").unwrap();
        assert!(required.body.is_none());
        let provided = p.fns.iter().find(|f| f.name == "provided").unwrap();
        assert_eq!(provided.body, Some((2, 4)));
    }

    #[test]
    fn cfg_test_mod_and_test_fns_are_marked() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn probe() {\n        live();\n    }\n}\n";
        let (_, p) = parse_src(src);
        let live = p.fns.iter().find(|f| f.name == "live").unwrap();
        assert!(!live.in_test);
        let probe = p.fns.iter().find(|f| f.name == "probe").unwrap();
        assert!(probe.in_test);
        assert!(p.line_in_test(5));
        assert!(!p.line_in_test(0));
    }

    #[test]
    fn cfg_all_test_counts_as_test_region() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod sanity {\n    fn inner() {}\n}\n";
        let (_, p) = parse_src(src);
        assert!(p.fns[0].in_test);
    }

    #[test]
    fn nested_fn_lines_are_owned_by_the_inner_fn() {
        let src = "fn outer() {\n    fn inner() {\n        leaf();\n    }\n    inner();\n}\n";
        let (s, p) = parse_src(src);
        let outer = p.fns.iter().position(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().position(|f| f.name == "inner").unwrap();
        assert_eq!(p.owner[2], Some(inner));
        assert_eq!(p.owner[4], Some(outer));
        let outer_calls = callees(&s, &p, outer);
        assert!(outer_calls.contains(&"inner".to_string()));
        assert!(!outer_calls.contains(&"leaf".to_string()));
        let inner_calls = callees(&s, &p, inner);
        assert_eq!(inner_calls, vec!["leaf".to_string()]);
    }

    #[test]
    fn callees_capture_methods_paths_and_skip_macros_and_keywords() {
        let src = "fn f(&self) {\n    self.helper(1);\n    crate::module::leaf(2);\n    println!(\"skip\");\n    if cond(3) { return; }\n    let v = Vec::with_capacity(4);\n}\n";
        let (s, p) = parse_src(src);
        let calls = callees(&s, &p, 0);
        assert!(calls.contains(&"helper".to_string()));
        assert!(calls.contains(&"leaf".to_string()));
        assert!(calls.contains(&"cond".to_string()));
        assert!(calls.contains(&"with_capacity".to_string()));
        assert!(!calls.contains(&"println".to_string()));
        assert!(!calls.contains(&"if".to_string()));
        assert!(!calls.contains(&"return".to_string()));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn takes(cb: fn(usize) -> usize) -> usize {\n    cb(1)\n}\n";
        let (_, p) = parse_src(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "takes");
    }
}
