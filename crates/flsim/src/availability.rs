//! Client availability models (dropout / straggler simulation).
//!
//! Real federations lose clients mid-round: devices go offline, stragglers
//! miss the aggregation deadline, users revoke participation. The FL
//! fault-tolerance literature the paper cites in Section II-B treats this as a
//! first-class concern, and the paper's own multi-to-multi scheme raises the
//! obvious robustness question: what happens to a middleware model whose host
//! client never uploads? [`AvailabilityModel`] lets the simulation answer that
//! question by dropping selected clients before their local training runs;
//! algorithms observe the smaller update set and must cope (see the
//! `ablation_dropout` harness and the FedCross partial-participation handling
//! in the `fedcross` crate).

use fedcross_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Decides, per round and per selected client, whether the client completes
/// its local training and uploads an update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub enum AvailabilityModel {
    /// Every selected client always responds (the paper's setting).
    #[default]
    AlwaysOn,
    /// Each selected client independently fails with the given probability.
    RandomDropout {
        /// Per-round, per-client failure probability in `[0, 1)`.
        prob: f32,
    },
    /// A deterministic straggler pattern: the client drops whenever
    /// `(client + round) % period == 0`, i.e. roughly one in `period`
    /// contacts fails, rotating through the federation.
    PeriodicStraggler {
        /// Drop period (must be at least 2; larger means fewer failures).
        period: usize,
    },
}


impl AvailabilityModel {
    /// Validates the model's configuration, panicking on nonsense values.
    ///
    /// The variants are plain public structs (they arrive from config files
    /// via serde), so there is no constructor to validate in; instead the
    /// engine validates eagerly at attach time and [`Self::is_available`]
    /// re-asserts on every query. Both checks are real `assert!`s — a
    /// `RandomDropout { prob: 1.5 }` used to pass silently in release builds
    /// and drop every client of every round.
    ///
    /// # Panics
    /// Panics if a dropout probability lies outside `[0, 1)` or is not
    /// finite, or a straggler period is below 2.
    pub fn validate(&self) {
        match *self {
            AvailabilityModel::AlwaysOn => {}
            AvailabilityModel::RandomDropout { prob } => {
                assert!(
                    prob.is_finite() && (0.0..1.0).contains(&prob),
                    "dropout probability must be in [0, 1), got {prob}"
                );
            }
            AvailabilityModel::PeriodicStraggler { period } => {
                assert!(period >= 2, "straggler period must be at least 2, got {period}");
            }
        }
    }

    /// Whether the given client responds in the given round. `rng` supplies
    /// the randomness for the stochastic models; deterministic models ignore
    /// it (and consume nothing from it).
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`Self::validate`]) — in every
    /// build profile, not just debug.
    pub fn is_available(&self, round: usize, client: usize, rng: &mut SeededRng) -> bool {
        self.validate();
        match *self {
            AvailabilityModel::AlwaysOn => true,
            AvailabilityModel::RandomDropout { prob } => rng.uniform() >= prob,
            AvailabilityModel::PeriodicStraggler { period } => {
                !(client + round).is_multiple_of(period)
            }
        }
    }

    /// Short label used in ablation tables.
    pub fn label(&self) -> String {
        match *self {
            // alloc: cold — reporting label, not on the round path
            AvailabilityModel::AlwaysOn => "always-on".to_string(),
            // alloc: cold — reporting label, not on the round path
            AvailabilityModel::RandomDropout { prob } => format!("dropout-{:.0}%", prob * 100.0),
            AvailabilityModel::PeriodicStraggler { period } => {
                // alloc: cold — reporting label, not on the round path
                format!("straggler-1/{period}")
            }
        }
    }

    /// The long-run expected fraction of client contacts that fail.
    pub fn expected_failure_rate(&self) -> f32 {
        match *self {
            AvailabilityModel::AlwaysOn => 0.0,
            AvailabilityModel::RandomDropout { prob } => prob,
            AvailabilityModel::PeriodicStraggler { period } => 1.0 / period.max(2) as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_drops_and_consumes_no_randomness() {
        let mut rng = SeededRng::new(0);
        let before = rng.uniform();
        let mut rng = SeededRng::new(0);
        for round in 0..5 {
            for client in 0..5 {
                assert!(AvailabilityModel::AlwaysOn.is_available(round, client, &mut rng));
            }
        }
        assert_eq!(rng.uniform(), before, "AlwaysOn must not consume randomness");
        assert_eq!(AvailabilityModel::default(), AvailabilityModel::AlwaysOn);
        assert_eq!(AvailabilityModel::AlwaysOn.expected_failure_rate(), 0.0);
    }

    #[test]
    fn random_dropout_matches_the_configured_rate() {
        let model = AvailabilityModel::RandomDropout { prob: 0.3 };
        let mut rng = SeededRng::new(1);
        let trials = 20_000;
        let mut dropped = 0usize;
        for i in 0..trials {
            if !model.is_available(i, i % 17, &mut rng) {
                dropped += 1;
            }
        }
        let rate = dropped as f32 / trials as f32;
        assert!((rate - 0.3).abs() < 0.02, "observed dropout rate {rate}");
        assert!((model.expected_failure_rate() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn zero_probability_dropout_never_drops() {
        let model = AvailabilityModel::RandomDropout { prob: 0.0 };
        let mut rng = SeededRng::new(2);
        assert!((0..100).all(|i| model.is_available(i, i, &mut rng)));
    }

    #[test]
    fn periodic_straggler_rotates_through_clients() {
        let model = AvailabilityModel::PeriodicStraggler { period: 4 };
        let mut rng = SeededRng::new(3);
        // Client 0 drops in rounds 0, 4, 8, ...; client 1 in rounds 3, 7, ...
        assert!(!model.is_available(0, 0, &mut rng));
        assert!(model.is_available(1, 0, &mut rng));
        assert!(!model.is_available(3, 1, &mut rng));
        assert!(!model.is_available(4, 0, &mut rng));
        // Over a full period every client drops exactly once.
        for client in 0..8 {
            let drops = (0..4)
                .filter(|&round| !model.is_available(round, client, &mut rng))
                .count();
            assert_eq!(drops, 1);
        }
        assert!((model.expected_failure_rate() - 0.25).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dropout probability must be in [0, 1)")]
    fn out_of_range_dropout_probability_is_rejected() {
        // Regression: this used to be a debug_assert, so release builds
        // silently dropped every client instead of failing.
        let mut rng = SeededRng::new(0);
        let _ = AvailabilityModel::RandomDropout { prob: 1.5 }.is_available(0, 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "dropout probability must be in [0, 1)")]
    fn nan_dropout_probability_is_rejected() {
        AvailabilityModel::RandomDropout { prob: f32::NAN }.validate();
    }

    #[test]
    #[should_panic(expected = "straggler period must be at least 2")]
    fn degenerate_straggler_period_is_rejected() {
        let mut rng = SeededRng::new(0);
        let _ = AvailabilityModel::PeriodicStraggler { period: 1 }.is_available(0, 0, &mut rng);
    }

    #[test]
    fn validate_accepts_all_sane_configurations() {
        AvailabilityModel::AlwaysOn.validate();
        AvailabilityModel::RandomDropout { prob: 0.0 }.validate();
        AvailabilityModel::RandomDropout { prob: 0.999 }.validate();
        AvailabilityModel::PeriodicStraggler { period: 2 }.validate();
    }

    #[test]
    fn labels_describe_the_model() {
        assert_eq!(AvailabilityModel::AlwaysOn.label(), "always-on");
        assert_eq!(
            AvailabilityModel::RandomDropout { prob: 0.25 }.label(),
            "dropout-25%"
        );
        assert_eq!(
            AvailabilityModel::PeriodicStraggler { period: 5 }.label(),
            "straggler-1/5"
        );
    }
}
