//! Adversarial client behaviour (Byzantine / poisoning simulation).
//!
//! The availability plane ([`crate::availability`]) models clients that
//! *disappear*; this module models clients that *lie*. A fraction of the
//! federation is compromised and, depending on the configured [`Attack`],
//! either trains on poisoned data (label flipping) or tampers with the
//! uploaded parameters after honest training (sign flipping, update scaling,
//! collusion towards a shared target). The two axes are orthogonal: an
//! adversarial run can also drop clients, and a compromised client that drops
//! out simply never gets to attack that round.
//!
//! Everything stochastic about the adversary derives from
//! [`RoundStreams`](crate::streams::RoundStreams), never from a consumed RNG:
//!
//! * **membership** — which clients are compromised — is a pure function of
//!   `(AdversaryMembership domain, adversary seed, federation size)`, fixed
//!   for the whole run (the realistic threat model: a device is either owned
//!   by the attacker or it is not),
//! * **per-round draws** — the colluding attack's shared target direction —
//!   come from the `AdversaryDraw` domain keyed by the absolute round.
//!
//! Both properties together make adversarial runs first-class citizens of the
//! resume plane: a run checkpointed mid-attack and restarted replays the
//! identical corruption (pinned by `tests/tests/resume_plane.rs`), and a
//! round's corrupted uploads do not depend on upload arrival order.

use crate::client::LocalUpdate;
use crate::streams::{RoundStreams, StreamDomain};
use fedcross_data::Dataset;
use serde::{Deserialize, Serialize};

/// What a compromised client does to its round contribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Attack {
    /// Data poisoning: train honestly but on flipped labels
    /// (`label ↦ num_classes - 1 - label`). The upload is a genuinely trained
    /// model — just for the wrong task.
    LabelFlip,
    /// Model poisoning: upload `dispatched - scale·Δ` instead of
    /// `dispatched + Δ` (gradient ascent from the server's perspective).
    SignFlip {
        /// Magnitude of the reversed update (1 = exact mirror image).
        scale: f32,
    },
    /// Model poisoning: upload `dispatched + factor·Δ`, the classic scaled
    /// Byzantine update that dominates any plain average.
    ScaledUpdate {
        /// Update amplification factor (the literature uses 10–100).
        factor: f32,
    },
    /// Collusion: every compromised client discards its training and uploads
    /// `dispatched + magnitude·t̂`, where `t̂` is a unit direction shared by
    /// all colluders and redrawn every round from the `AdversaryDraw` stream.
    Colluding {
        /// Step length along the shared target direction.
        magnitude: f32,
    },
}

impl Attack {
    /// Short label used in report tables.
    pub fn label(&self) -> String {
        match *self {
            // alloc: cold — reporting label, not on the round path
            Attack::LabelFlip => "label-flip".to_string(),
            // alloc: cold — reporting label, not on the round path
            Attack::SignFlip { scale } => format!("sign-flip(x{scale})"),
            // alloc: cold — reporting label, not on the round path
            Attack::ScaledUpdate { factor } => format!("scaled-update(x{factor})"),
            // alloc: cold — reporting label, not on the round path
            Attack::Colluding { magnitude } => format!("colluding(m={magnitude})"),
        }
    }
}

/// A compromised fraction of the federation plus the attack it mounts.
///
/// Attach to a run with `Simulation::with_adversaries`. The `seed` roots the
/// adversary's own stream family, independent of the simulation master seed,
/// so the same training trajectory can be re-run under a different compromise
/// pattern (and vice versa) without the two interfering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryModel {
    /// The behaviour of every compromised client.
    pub attack: Attack,
    /// Fraction of the federation that is compromised, in `[0, 1)`. The
    /// compromised count is `round(fraction · num_clients)`.
    pub fraction: f32,
    /// Base seed of the adversary's membership and draw streams.
    pub seed: u64,
}

impl AdversaryModel {
    /// Validates the configuration, panicking on nonsense values — a real
    /// `assert!` in every build profile, mirroring
    /// [`crate::availability::AvailabilityModel::validate`].
    ///
    /// # Panics
    /// Panics if the fraction lies outside `[0, 1)` or is not finite, or an
    /// attack parameter is not finite.
    pub fn validate(&self) {
        assert!(
            self.fraction.is_finite() && (0.0..1.0).contains(&self.fraction),
            "adversarial fraction must be in [0, 1), got {}",
            self.fraction
        );
        let parameter = match self.attack {
            Attack::LabelFlip => 1.0,
            Attack::SignFlip { scale } => scale,
            Attack::ScaledUpdate { factor } => factor,
            Attack::Colluding { magnitude } => magnitude,
        };
        assert!(
            parameter.is_finite(),
            "attack parameter must be finite, got {parameter}"
        );
    }

    /// Short label used in report tables ("scaled-update(x10)@30%").
    pub fn label(&self) -> String {
        // alloc: cold — reporting label, not on the round path
        format!("{}@{:.0}%", self.attack.label(), self.fraction * 100.0)
    }

    /// Number of compromised clients in a federation of `num_clients`
    /// (nearest integer to `fraction · num_clients`).
    pub fn num_compromised(&self, num_clients: usize) -> usize {
        (f64::from(self.fraction) * num_clients as f64).round() as usize
    }

    /// The compromised-client mask for a federation of `num_clients`: a pure
    /// function of `(membership domain, seed, num_clients)`, identical on
    /// every call, every round and every resume.
    pub fn compromised(&self, num_clients: usize) -> Vec<bool> {
        // alloc: cold — adversary roster built at configuration time
        let mut mask = vec![false; num_clients];
        let count = self.num_compromised(num_clients).min(num_clients);
        if count > 0 {
            let mut rng = RoundStreams::new(StreamDomain::AdversaryMembership, self.seed)
                .round(0)
                .server();
            for client in rng.sample_without_replacement(num_clients, count) {
                mask[client] = true;
            }
        }
        mask
    }

    /// The poisoned training shard of a label-flipping client: same features,
    /// every label mapped to `num_classes - 1 - label`. Other attacks train on
    /// the honest shard, so this is only called for [`Attack::LabelFlip`].
    pub fn flip_labels(&self, data: &Dataset) -> Dataset {
        let classes = data.num_classes();
        // alloc: cold — adversarial dataset rewrite at materialization time
        let labels = data.labels().iter().map(|&l| classes - 1 - l).collect();
        // alloc: cold — adversarial dataset rewrite at materialization time
        Dataset::new(data.features().clone(), labels, classes)
    }

    /// Applies the configured upload tampering to `update`, in place.
    /// `dispatched` is the parameter vector the server sent this client
    /// (the anchor the honest delta is measured against). [`Attack::LabelFlip`]
    /// leaves the upload alone — its poison is already inside the weights.
    ///
    /// The only randomness (the colluding target) is redrawn from
    /// `(AdversaryDraw domain, seed, round)`, so the corrupted upload is a
    /// pure function of `(round, client, dispatched, trained)`.
    pub fn corrupt_upload(&self, round: usize, dispatched: &[f32], update: &mut LocalUpdate) {
        debug_assert_eq!(dispatched.len(), update.params.len());
        match self.attack {
            Attack::LabelFlip => {}
            Attack::SignFlip { scale } => {
                let params = update.params.make_mut();
                for (p, &d) in params.iter_mut().zip(dispatched) {
                    *p = d - scale * (*p - d);
                }
            }
            Attack::ScaledUpdate { factor } => {
                let params = update.params.make_mut();
                for (p, &d) in params.iter_mut().zip(dispatched) {
                    *p = d + factor * (*p - d);
                }
            }
            Attack::Colluding { magnitude } => {
                let mut rng = RoundStreams::new(StreamDomain::AdversaryDraw, self.seed)
                    .round(round)
                    .server();
                let params = update.params.make_mut();
                // alloc: bounded — adversarial target vector, compromised uploads only
                let mut target: Vec<f32> = (0..params.len()).map(|_| rng.normal()).collect();
                let norm = target.iter().map(|t| t * t).sum::<f32>().sqrt().max(1e-12);
                for t in &mut target {
                    *t /= norm;
                }
                for ((p, &d), t) in params.iter_mut().zip(dispatched).zip(target) {
                    *p = d + magnitude * t;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::ParamBlock;
    use fedcross_tensor::Tensor;

    fn model(attack: Attack, fraction: f32) -> AdversaryModel {
        AdversaryModel {
            attack,
            fraction,
            seed: 7,
        }
    }

    fn update(client: usize, params: Vec<f32>) -> LocalUpdate {
        LocalUpdate {
            client,
            params: ParamBlock::from(params),
            num_samples: 10,
            train_loss: 1.0,
            steps: 2,
        }
    }

    #[test]
    fn membership_is_deterministic_and_counts_the_fraction() {
        let adv = model(Attack::LabelFlip, 0.3);
        let a = adv.compromised(10);
        let b = adv.compromised(10);
        assert_eq!(a, b, "membership must be a pure function of the seed");
        assert_eq!(a.iter().filter(|&&c| c).count(), 3, "30% of 10 clients");
        // A different adversary seed compromises a different set (with ten
        // clients and three picks a collision of all three is unlikely; this
        // seed pair differs).
        let other = AdversaryModel { seed: 8, ..adv }.compromised(10);
        assert_ne!(a, other);
        // Zero fraction compromises nobody.
        assert!(model(Attack::LabelFlip, 0.0).compromised(10).iter().all(|&c| !c));
    }

    #[test]
    fn label_flip_mirrors_the_label_space_and_keeps_features() {
        let data = Dataset::new(
            Tensor::from_vec(vec![0.5; 12], &[3, 4]),
            vec![0, 9, 4],
            10,
        );
        let adv = model(Attack::LabelFlip, 0.5);
        let flipped = adv.flip_labels(&data);
        assert_eq!(flipped.labels(), &[9, 0, 5]);
        assert_eq!(flipped.features().data(), data.features().data());
        // Upload tampering is a no-op for the data-poisoning attack.
        let mut u = update(1, vec![1.0, 2.0]);
        adv.corrupt_upload(0, &[0.0, 0.0], &mut u);
        assert_eq!(u.params.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn sign_flip_mirrors_the_delta_around_the_dispatched_model() {
        let adv = model(Attack::SignFlip { scale: 1.0 }, 0.5);
        let dispatched = vec![1.0f32, -1.0];
        let mut u = update(0, vec![3.0, 0.0]); // delta = (2, 1)
        adv.corrupt_upload(4, &dispatched, &mut u);
        assert_eq!(u.params.as_slice(), &[-1.0, -2.0]); // dispatched - delta
    }

    #[test]
    fn scaled_update_amplifies_the_delta() {
        let adv = model(Attack::ScaledUpdate { factor: 10.0 }, 0.5);
        let dispatched = vec![0.0f32, 1.0];
        let mut u = update(0, vec![1.0, 1.5]); // delta = (1, 0.5)
        adv.corrupt_upload(4, &dispatched, &mut u);
        assert_eq!(u.params.as_slice(), &[10.0, 6.0]);
    }

    #[test]
    fn colluders_share_one_round_target_that_changes_across_rounds() {
        let adv = model(Attack::Colluding { magnitude: 5.0 }, 0.5);
        let dispatched = vec![0.0f32; 16];
        let mut a = update(0, vec![1.0; 16]);
        let mut b = update(3, vec![-1.0; 16]);
        adv.corrupt_upload(2, &dispatched, &mut a);
        adv.corrupt_upload(2, &dispatched, &mut b);
        // Same round, same anchor: identical uploads regardless of client or
        // training outcome.
        assert_eq!(a.params.as_slice(), b.params.as_slice());
        let norm = a.params.iter().map(|p| p * p).sum::<f32>().sqrt();
        assert!((norm - 5.0).abs() < 1e-4, "target step norm {norm}");
        // A different round draws a different target.
        let mut c = update(0, vec![1.0; 16]);
        adv.corrupt_upload(3, &dispatched, &mut c);
        assert_ne!(a.params.as_slice(), c.params.as_slice());
    }

    #[test]
    #[should_panic(expected = "adversarial fraction must be in [0, 1)")]
    fn out_of_range_fraction_is_rejected() {
        model(Attack::LabelFlip, 1.5).validate();
    }

    #[test]
    #[should_panic(expected = "attack parameter must be finite")]
    fn non_finite_attack_parameter_is_rejected() {
        model(Attack::ScaledUpdate { factor: f32::NAN }, 0.2).validate();
    }

    #[test]
    fn labels_describe_the_model() {
        assert_eq!(
            model(Attack::ScaledUpdate { factor: 10.0 }, 0.3).label(),
            "scaled-update(x10)@30%"
        );
        assert_eq!(model(Attack::LabelFlip, 0.25).label(), "label-flip@25%");
    }
}
