//! Sequential composition of layers and its [`Model`] implementation.

use crate::layer::Layer;
use crate::Model;
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// A model built from a linear chain of layers.
///
/// All model-zoo constructors in [`crate::models`] return a `Sequential`
/// (boxed as `Box<dyn Model>`); residual and recurrent structure is expressed
/// through composite layers ([`crate::layers::ResidualBlock`],
/// [`crate::layers::Lstm`]) so the chain abstraction is sufficient for every
/// architecture the paper evaluates.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    arch: &'static str,
}

impl Sequential {
    /// Creates an empty sequential model with an architecture name.
    pub fn new(arch: &'static str) -> Self {
        Self {
            layers: Vec::new(),
            arch,
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        // alloc: cold — model construction
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already boxed layer (builder style).
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order, useful for summaries and debugging.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Converts the model into a boxed [`Model`] trait object.
    pub fn boxed(self) -> Box<dyn Model> {
        Box::new(self)
    }

    fn read_params_into_impl(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            layer.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
        }
    }

    fn read_grads_into_impl(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            layer.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
        }
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.clone(),
            arch: self.arch,
        }
    }
}

impl Model for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, train);
        }
        current
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let mut grad = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
    }

    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        let mut current: Option<Tensor> = None;
        for layer in &mut self.layers {
            let out = layer.forward_into(current.as_ref().unwrap_or(input), train, pool);
            if let Some(prev) = current.take() {
                pool.recycle(prev);
            }
            current = Some(out);
        }
        current.unwrap_or_else(|| pool.take_copy(input))
    }

    fn backward_into(&mut self, grad_logits: &Tensor, pool: &mut TensorPool) {
        let mut current: Option<Tensor> = None;
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            let prev = current.take();
            let upstream: &Tensor = prev.as_ref().unwrap_or(grad_logits);
            if idx == 0 {
                // Nothing consumes dL/d(input) of the first layer; let it
                // skip that work (parameter gradients are unaffected).
                layer.backward_into_discard(upstream, pool);
            } else {
                current = Some(layer.backward_into(upstream, pool));
            }
            if let Some(p) = prev {
                pool.recycle(p);
            }
        }
        if let Some(last) = current {
            pool.recycle(last);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn param_layout_hash(&self) -> u64 {
        // Layer names, per-parameter sizes and value-level layer config:
        // distinguishes shape collisions (same totals, different tensors),
        // parameter-free structural changes (relu vs tanh, an extra flatten)
        // and config-only variants (dropout probability/seed, conv stride).
        let mut hash = crate::FNV_OFFSET;
        for layer in &self.layers {
            hash = crate::fnv1a_mix(hash, layer.name().as_bytes());
            layer.visit_params(&mut |p| {
                // Full dims, not just the element count: Conv2d(4ch, k=2)
                // and Conv2d(16ch, k=1) — or Embedding(V, D) vs (D, V) —
                // have equal numels but incompatible tensors. Rank is mixed
                // first so dim sequences can't alias across parameters.
                let dims = p.value.dims();
                hash = crate::fnv1a_mix(hash, &dims.len().to_le_bytes());
                for &d in dims {
                    hash = crate::fnv1a_mix(hash, &d.to_le_bytes());
                }
            });
            hash = layer.config_hash(hash);
        }
        hash
    }

    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.read_params_into_impl(&mut out);
        out
    }

    fn read_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        self.read_params_into_impl(out);
    }

    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter vector has wrong length"
        );
        let mut offset = 0usize;
        for layer in &mut self.layers {
            layer.visit_params_mut(&mut |p| {
                let n = p.value.numel();
                p.value
                    .data_mut()
                    .copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            });
        }
    }

    fn grads_flat(&self) -> Vec<f32> {
        // alloc: cold — allocating accessor; the step scratch uses read_grads_into
        let mut out = Vec::with_capacity(self.param_count());
        self.read_grads_into_impl(&mut out);
        out
    }

    fn read_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        self.read_grads_into_impl(out);
    }

    fn visit_params_for_step(&mut self, f: &mut dyn FnMut(&mut crate::layer::Param)) -> bool {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
        true
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    fn reset_stochastic_state(&mut self, rng: &mut SeededRng) {
        for layer in &mut self.layers {
            layer.reset_stochastic_state(rng);
        }
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn arch_name(&self) -> &'static str {
        self.arch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use fedcross_tensor::SeededRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        Sequential::new("tiny")
            .push(Linear::new(3, 5, &mut rng))
            .push(Relu::new())
            .push(Linear::new(5, 2, &mut rng))
    }

    #[test]
    fn forward_produces_logits_shape() {
        let mut model = tiny_model(0);
        let x = Tensor::ones(&[4, 3]);
        let y = model.forward(&x, true);
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        assert_eq!(model.layer_names(), vec!["linear", "relu", "linear"]);
    }

    #[test]
    fn params_flat_roundtrip() {
        let model = tiny_model(1);
        let flat = model.params_flat();
        assert_eq!(flat.len(), model.param_count());
        let mut other = tiny_model(2);
        assert_ne!(other.params_flat(), flat);
        other.set_params_flat(&flat);
        assert_eq!(other.params_flat(), flat);
    }

    #[test]
    fn set_params_changes_forward_output() {
        let mut a = tiny_model(3);
        let mut b = tiny_model(4);
        let x = Tensor::ones(&[1, 3]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya.data(), yb.data());
        let pa = a.params_flat();
        b.set_params_flat(&pa);
        let yb2 = b.forward(&x, false);
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    #[should_panic]
    fn set_params_rejects_wrong_length() {
        let mut model = tiny_model(5);
        model.set_params_flat(&[0.0; 3]);
    }

    #[test]
    fn zero_grads_clears_accumulated_gradients() {
        let mut model = tiny_model(6);
        let x = Tensor::ones(&[2, 3]);
        let y = model.forward(&x, true);
        model.backward(&Tensor::ones(y.dims()));
        assert!(model.grads_flat().iter().any(|&g| g != 0.0));
        model.zero_grads();
        assert!(model.grads_flat().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clone_model_is_deep() {
        let model = tiny_model(7);
        let mut cloned = model.clone_model();
        let flat = model.params_flat();
        // Mutate the clone; original must be unaffected.
        let zeros = vec![0f32; flat.len()];
        cloned.set_params_flat(&zeros);
        assert_eq!(model.params_flat(), flat);
        assert_eq!(cloned.params_flat(), zeros);
    }

    #[test]
    fn param_layout_hash_distinguishes_shapes_and_config() {
        use crate::layers::{Conv2d, Dropout, Embedding, Flatten, GlobalAvgPool2d};

        // Equal element counts, different tensor shapes: must differ.
        let mut rng = SeededRng::new(9);
        let transposed = Sequential::new("emb")
            .push(Embedding::new(10, 6, &mut rng))
            .boxed();
        let mut rng = SeededRng::new(9);
        let original = Sequential::new("emb")
            .push(Embedding::new(6, 10, &mut rng))
            .boxed();
        assert_eq!(original.param_count(), transposed.param_count());
        assert_ne!(original.param_layout_hash(), transposed.param_layout_hash());

        // Conv kernel/channel trade-off with equal numels: must differ.
        let conv_chain = |inc: usize, k: usize| {
            let mut rng = SeededRng::new(11);
            Sequential::new("cnn")
                .push(Conv2d::new(inc, 4, k, 1, 0, &mut rng))
                .push(GlobalAvgPool2d::new())
                .push(Flatten::new())
                .boxed()
        };
        let a = conv_chain(4, 2); // weight numel 4*4*2*2 = 64
        let b = conv_chain(16, 1); // weight numel 4*16*1*1 = 64
        assert_eq!(a.param_count(), b.param_count());
        assert_ne!(a.param_layout_hash(), b.param_layout_hash());

        // Identical model cloned: must match.
        let model = conv_chain(4, 2);
        assert_eq!(
            model.param_layout_hash(),
            model.clone_model().param_layout_hash()
        );

        // Value-level config (dropout probability): must differ.
        let with_p = |p: f32| {
            let mut rng = SeededRng::new(13);
            Sequential::new("drop").push(Dropout::new(p, &mut rng)).boxed()
        };
        assert_ne!(with_p(0.2).param_layout_hash(), with_p(0.5).param_layout_hash());
    }

    #[test]
    fn arch_name_is_preserved() {
        let model = tiny_model(8);
        assert_eq!(model.arch_name(), "tiny");
        assert_eq!(model.boxed().arch_name(), "tiny");
    }
}
