//! Staleness-aware buffered (FedBuff-style) server algorithms:
//! [`BufferedFedAvg`] and [`BufferedFedCross`].
//!
//! Under `RoundPolicy::Buffered` (see `fedcross_flsim::faults`), uploads
//! arrive some rounds after the round that trained them — slow devices and
//! stalled transports both contribute. These algorithms keep two bounded
//! server-side stores:
//!
//! * **in-flight** — uploads that left their client but have not reached the
//!   server yet (each tagged with the absolute round it becomes due),
//! * **buffer** — arrived uploads awaiting aggregation; once `goal_k` are
//!   buffered, they are folded into the model with the FedBuff staleness
//!   weight `w = 1 / (1 + s)^α`, where `s` is the number of rounds between
//!   training and aggregation, then the buffer is cleared.
//!
//! Uploads are stored as **deltas against the model their client was
//! dispatched** (the FedBuff convention), so a stale upload re-anchors onto
//! the current model instead of dragging it back to an old one. Entries
//! staler than `max_staleness` are discarded unaggregated.
//!
//! The determinism contract matches the robust plane
//! (docs/ROBUSTNESS.md, docs/FAULTS.md):
//!
//! * the server half ([`BufferedFedAvg::absorb`] /
//!   [`BufferedFedCross::absorb`]) dedupes arrivals **by client id** (a
//!   duplicated transport delivery changes nothing) and aggregates in
//!   canonical client/slot order, so the result is a pure function of the
//!   arrival *set* — never of arrival order (pinned by
//!   tests/tests/fault_plane.rs proptests),
//! * both stores ride checkpoint v3 `client_tables`/`records`, so a crash
//!   between arrival and aggregation resumes bitwise
//!   (tests/tests/resume_plane.rs),
//! * staleness weighting is deliberately **unweighted by sample counts**,
//!   like the robust rules: a stale client must not buy weight back by
//!   reporting a large shard.

use crate::aggregation::{cross_aggregate_into, global_model, global_model_into};
use crate::selection::{SelectionStrategy, SimilarityMeasure};
use fedcross_flsim::checkpoint::{
    decode_f64, decode_u64, encode_f64, encode_u64, AlgorithmState, StateError,
};
use fedcross_flsim::engine::{FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_flsim::faults::RoundPolicy;
use fedcross_nn::params::ParamBlock;

/// One upload travelling through (or parked in) the buffered server plane.
///
/// `delta` is measured against the model the client was dispatched, at the
/// round it trained (`train_round`); the upload reaches the server at
/// `due_round` in `copies` transport copies (2 when duplicated).
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedUpload {
    /// Client that produced the upload.
    pub client: usize,
    /// Middleware slot the upload trains (always 0 for [`BufferedFedAvg`]).
    pub slot: usize,
    /// Absolute round the upload was trained in.
    pub train_round: usize,
    /// Absolute round the upload arrives at the server.
    pub due_round: usize,
    /// Transport copies delivered (the server dedupes by client id).
    pub copies: usize,
    /// Trained parameters minus the dispatched parameters.
    pub delta: Vec<f32>,
    /// Local sample count (reporting only — never an aggregation weight).
    pub num_samples: usize,
    /// Mean training loss of the last local epoch.
    pub train_loss: f32,
}

impl BufferedUpload {
    /// The FedBuff staleness weight of this entry when aggregated in
    /// `round`: `1 / (1 + s)^alpha` with `s = round - train_round`.
    pub fn staleness_weight(&self, round: usize, alpha: f32) -> f32 {
        let s = round.saturating_sub(self.train_round) as f32;
        (1.0 + s).powf(-alpha)
    }
}

/// Reads the buffered policy parameters off the round context; any other
/// policy degenerates to "aggregate every round, nothing is ever stale".
fn policy_params(ctx: &RoundContext<'_>) -> (usize, usize) {
    match ctx.round_policy() {
        RoundPolicy::Buffered {
            goal_k,
            max_staleness,
        } => (goal_k, max_staleness),
        _ => (1, 0),
    }
}

/// Merges `arrivals` into `buffer`, deduping by client id: the freshest
/// entry (largest `train_round`) wins; an equally fresh entry is a transport
/// duplicate with identical content, so the incumbent stays. Both rules are
/// insertion-order independent.
fn merge_arrivals(buffer: &mut Vec<BufferedUpload>, arrivals: Vec<BufferedUpload>) {
    for arrival in arrivals {
        match buffer.iter_mut().find(|b| b.client == arrival.client) {
            Some(entry) => {
                if arrival.train_round > entry.train_round {
                    *entry = arrival;
                }
            }
            None => buffer.push(arrival),
        }
    }
}

/// Builds a round report over `entries` in their current (canonical) order,
/// mirroring `RoundReport::from_ordered`'s summation order.
fn report_from(entries: &[BufferedUpload]) -> RoundReport {
    if entries.is_empty() {
        return RoundReport::default();
    }
    RoundReport {
        participants: entries.len(),
        mean_train_loss: entries.iter().map(|e| e.train_loss).sum::<f32>()
            / entries.len() as f32,
        total_samples: entries.iter().map(|e| e.num_samples).sum(),
    }
}

/// Serialises one pending store (in-flight or buffer) into a checkpoint
/// state: the deltas as a client table (sorted by client id), the per-entry
/// scalars as an aligned string record.
fn snapshot_store(
    state: AlgorithmState,
    name: &str,
    entries: &[BufferedUpload],
) -> AlgorithmState {
    let mut sorted: Vec<&BufferedUpload> = entries.iter().collect();
    sorted.sort_by_key(|e| e.client);
    let table: Vec<(usize, Vec<f32>)> = sorted
        .iter()
        .map(|e| (e.client, e.delta.clone()))
        .collect();
    let meta: Vec<String> = sorted
        .iter()
        .map(|e| {
            format!(
                "{},{},{},{},{},{}",
                encode_u64(e.train_round as u64),
                encode_u64(e.due_round as u64),
                encode_u64(e.copies as u64),
                encode_u64(e.slot as u64),
                encode_u64(e.num_samples as u64),
                encode_f64(f64::from(e.train_loss)),
            )
        })
        .collect();
    state
        .with_client_table(name, table)
        .with_record(format!("{name}_meta"), meta)
}

/// Restores one pending store written by [`snapshot_store`], validating the
/// table against the federation size and model dimension and the record
/// against the table.
fn restore_store(
    state: &AlgorithmState,
    name: &str,
    num_clients: usize,
    dim: usize,
    max_slot: usize,
) -> Result<Vec<BufferedUpload>, StateError> {
    let table = state.expect_client_table(name, num_clients, dim)?;
    let meta = state.expect_record(&format!("{name}_meta"), table.len())?;
    let mut entries = Vec::with_capacity(table.len());
    for ((client, delta), line) in table.iter().zip(meta) {
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 6 {
            return Err(StateError::new(format!(
                "store `{name}` meta entry for client {client} has {} fields, expected 6",
                parts.len()
            )));
        }
        let slot = decode_u64(parts[3])? as usize;
        if slot > max_slot {
            return Err(StateError::new(format!(
                "store `{name}` entry for client {client} targets slot {slot}, max is {max_slot}"
            )));
        }
        entries.push(BufferedUpload {
            client: *client,
            slot,
            train_round: decode_u64(parts[0])? as usize,
            due_round: decode_u64(parts[1])? as usize,
            copies: decode_u64(parts[2])? as usize,
            delta: delta.clone(),
            num_samples: decode_u64(parts[4])? as usize,
            train_loss: decode_f64(parts[5])? as f32,
        });
    }
    Ok(entries)
}

/// Moves every due entry out of `inflight`, expanding transport copies into
/// separate arrivals (the server half must dedupe them), and returns the
/// arrivals.
fn collect_due(inflight: &mut Vec<BufferedUpload>, round: usize) -> Vec<BufferedUpload> {
    // alloc: bounded — due-arrival list, buffer-bounded per round
    let mut arrivals = Vec::new();
    inflight.retain(|entry| {
        if entry.due_round <= round {
            for _ in 0..entry.copies.max(1) {
                // alloc: bounded — due-arrival list, buffer-bounded per round
                let mut copy = entry.clone();
                copy.copies = 1;
                arrivals.push(copy);
            }
            false
        } else {
            true
        }
    });
    arrivals
}

/// FedBuff-style FedAvg: the single global model is dispatched every round;
/// arrived uploads accumulate in a bounded buffer and fold into the global
/// model as a staleness-weighted mean of deltas once `goal_k` are buffered.
pub struct BufferedFedAvg {
    staleness_alpha: f32,
    num_clients: usize,
    global: ParamBlock,
    inflight: Vec<BufferedUpload>,
    buffer: Vec<BufferedUpload>,
}

impl BufferedFedAvg {
    /// Creates buffered FedAvg from the initial global model.
    ///
    /// `staleness_alpha` is the exponent of the FedBuff weight
    /// `1/(1+s)^alpha` (0 ignores staleness, larger discounts harder);
    /// `num_clients` is the federation size (used to validate restored
    /// checkpoints).
    ///
    /// # Panics
    /// Panics on empty initial parameters or a negative/non-finite alpha.
    pub fn new(staleness_alpha: f32, init_params: Vec<f32>, num_clients: usize) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        assert!(
            staleness_alpha.is_finite() && staleness_alpha >= 0.0,
            "staleness alpha must be finite and non-negative, got {staleness_alpha}"
        );
        assert!(num_clients >= 1, "need at least one client");
        Self {
            staleness_alpha,
            num_clients,
            global: ParamBlock::from(init_params),
            inflight: Vec::new(),
            buffer: Vec::new(),
        }
    }

    /// The current global model parameters.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// Uploads currently travelling to the server.
    pub fn inflight(&self) -> &[BufferedUpload] {
        &self.inflight
    }

    /// Arrived uploads awaiting aggregation.
    pub fn buffer(&self) -> &[BufferedUpload] {
        &self.buffer
    }

    /// The server half of a buffered round: merges `arrivals` into the
    /// buffer (deduping by client id), discards entries staler than
    /// `max_staleness`, and — once `goal_k` entries are buffered — applies
    /// the staleness-weighted mean delta to the global model in canonical
    /// client order and clears the buffer.
    ///
    /// Public so the order-invariance proptests can feed the same arrival
    /// set permuted and duplicated — the resulting global model must be
    /// bitwise identical. Rounds that do not reach the goal return an empty
    /// report and leave the model untouched.
    pub fn absorb(
        &mut self,
        round: usize,
        goal_k: usize,
        max_staleness: usize,
        arrivals: Vec<BufferedUpload>,
    ) -> RoundReport {
        let dim = self.global.len();
        assert!(
            arrivals.iter().all(|a| a.delta.len() == dim),
            "arrival delta dimension mismatch"
        );
        merge_arrivals(&mut self.buffer, arrivals);
        self.buffer
            .retain(|b| round.saturating_sub(b.train_round) <= max_staleness);
        if self.buffer.len() < goal_k.max(1) {
            return RoundReport::default();
        }

        // Canonical client order, then one weighted-mean delta pass. The
        // accumulation order is the sorted order, so any arrival permutation
        // produces identical bits.
        self.buffer.sort_by_key(|b| b.client);
        let mut weight_sum = 0.0f32;
        // alloc: bounded — buffered-plane staging, buffer-bounded per flush
        let mut acc = vec![0.0f32; dim];
        for entry in &self.buffer {
            let w = entry.staleness_weight(round, self.staleness_alpha);
            weight_sum += w;
            for (a, d) in acc.iter_mut().zip(&entry.delta) {
                *a += w * d;
            }
        }
        let out = self.global.make_mut();
        for (g, a) in out.iter_mut().zip(&acc) {
            *g += a / weight_sum;
        }
        let report = report_from(&self.buffer);
        self.buffer.clear();
        report
    }
}

impl FederatedAlgorithm for BufferedFedAvg {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!("buffered-fedavg(staleness_alpha={})", self.staleness_alpha)
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let (goal_k, max_staleness) = policy_params(ctx);
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs); // release dispatch references before mutating the global
        let outcomes = ctx.upload_outcomes(&updates);

        for (update, outcome) in updates.into_iter().zip(outcomes) {
            // A re-dispatched client abandons its older pending upload — the
            // invariant that keeps both stores at one entry per client.
            self.inflight.retain(|p| p.client != update.client);
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            let mut delta = update.params.to_vec();
            for (d, g) in delta.iter_mut().zip(self.global.as_slice()) {
                *d -= *g;
            }
            self.inflight.push(BufferedUpload {
                client: update.client,
                slot: 0,
                train_round: round,
                due_round: round + outcome.delay,
                copies: outcome.copies,
                delta,
                num_samples: update.num_samples,
                train_loss: update.train_loss,
            });
        }

        let arrivals = collect_due(&mut self.inflight, round);
        self.absorb(round, goal_k, max_staleness, arrivals)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        let state = AlgorithmState::single_model(self.global.clone());
        let state = snapshot_store(state, "inflight", &self.inflight);
        Ok(snapshot_store(state, "buffer", &self.buffer))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let dim = self.global.len();
        let global = state.expect_single_model(dim)?.clone();
        let inflight = restore_store(state, "inflight", self.num_clients, dim, 0)?;
        let buffer = restore_store(state, "buffer", self.num_clients, dim, 0)?;
        self.global = global;
        self.inflight = inflight;
        self.buffer = buffer;
        Ok(())
    }
}

/// Configuration of [`BufferedFedCross`].
#[derive(Debug, Clone, Copy)]
pub struct BufferedFedCrossConfig {
    /// Cross-aggregation weight α ∈ [0.5, 1).
    pub alpha: f32,
    /// Staleness-weight exponent of the FedBuff weight `1/(1+s)^alpha`.
    pub staleness_alpha: f32,
    /// Collaborative-model selection strategy (over the arrived models).
    pub strategy: SelectionStrategy,
    /// Similarity measure used by the similarity strategies.
    pub measure: SimilarityMeasure,
}

impl Default for BufferedFedCrossConfig {
    fn default() -> Self {
        Self {
            alpha: 0.99,
            staleness_alpha: 0.5,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
        }
    }
}

/// FedCross under buffered rounds: each middleware slot dispatches to one
/// client per round; arrived uploads are buffered and — once `goal_k` are
/// buffered — each surviving slot's staleness-weighted delta rebuilds a
/// candidate model (`middlewareᵢ + wᵢ·δᵢ`, re-anchored on the *current*
/// middleware), and the normal similarity-driven cross-aggregation fuses the
/// candidates. Slots with no arrival carry over, exactly like the dropout
/// path of plain FedCross.
pub struct BufferedFedCross {
    config: BufferedFedCrossConfig,
    num_clients: usize,
    middleware: Vec<ParamBlock>,
    inflight: Vec<BufferedUpload>,
    buffer: Vec<BufferedUpload>,
}

impl BufferedFedCross {
    /// Creates buffered FedCross with `k` middleware models initialised from
    /// one shared parameter vector. `num_clients` is the federation size
    /// (used to validate restored checkpoints).
    ///
    /// # Panics
    /// Panics if `k < 2`, `alpha` lies outside `[0.5, 1)` or
    /// `staleness_alpha` is negative/non-finite.
    pub fn new(
        config: BufferedFedCrossConfig,
        init_params: Vec<f32>,
        k: usize,
        num_clients: usize,
    ) -> Self {
        assert!(k >= 2, "BufferedFedCross needs at least two middleware models");
        assert!(
            (0.5..1.0).contains(&config.alpha),
            "alpha must lie in [0.5, 1.0)"
        );
        assert!(
            config.staleness_alpha.is_finite() && config.staleness_alpha >= 0.0,
            "staleness alpha must be finite and non-negative"
        );
        assert!(num_clients >= 1, "need at least one client");
        let shared = ParamBlock::from(init_params);
        Self {
            config,
            num_clients,
            middleware: vec![shared; k],
            inflight: Vec::new(),
            buffer: Vec::new(),
        }
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &BufferedFedCrossConfig {
        &self.config
    }

    /// The current middleware model list.
    pub fn middleware(&self) -> &[ParamBlock] {
        &self.middleware
    }

    /// Uploads currently travelling to the server.
    pub fn inflight(&self) -> &[BufferedUpload] {
        &self.inflight
    }

    /// Arrived uploads awaiting aggregation.
    pub fn buffer(&self) -> &[BufferedUpload] {
        &self.buffer
    }

    /// The server half of a buffered round: merge, staleness-filter, and —
    /// at `goal_k` buffered entries — fuse. Per middleware slot only the
    /// freshest buffered entry is applied (an older delta for a slot that
    /// was since re-dispatched is superseded); candidates are fused in
    /// canonical slot order, so the result is arrival-order independent.
    pub fn absorb(
        &mut self,
        round: usize,
        goal_k: usize,
        max_staleness: usize,
        arrivals: Vec<BufferedUpload>,
    ) -> RoundReport {
        let k = self.middleware.len();
        let dim = self.middleware[0].len();
        assert!(
            arrivals.iter().all(|a| a.delta.len() == dim && a.slot < k),
            "arrival delta dimension or slot out of range"
        );
        merge_arrivals(&mut self.buffer, arrivals);
        self.buffer
            .retain(|b| round.saturating_sub(b.train_round) <= max_staleness);
        if self.buffer.len() < goal_k.max(1) {
            return RoundReport::default();
        }

        // One entry per slot: freshest wins, client id breaks exact ties.
        // Sorting by slot also fixes the canonical fusion order.
        self.buffer.sort_by(|a, b| {
            a.slot
                .cmp(&b.slot)
                .then(b.train_round.cmp(&a.train_round))
                .then(a.client.cmp(&b.client))
        });
        // alloc: bounded — buffered-plane staging, buffer-bounded per flush
        let mut consumed: Vec<BufferedUpload> = Vec::with_capacity(self.buffer.len());
        for entry in self.buffer.drain(..) {
            if consumed.last().map(|p| p.slot) != Some(entry.slot) {
                consumed.push(entry);
            }
        }

        // Rebuild each slot's candidate on the *current* middleware anchor.
        let candidates: Vec<Vec<f32>> = consumed
            .iter()
            .map(|entry| {
                let w = entry.staleness_weight(round, self.config.staleness_alpha);
                let anchor = self.middleware[entry.slot].as_slice();
                anchor
                    .iter()
                    .zip(&entry.delta)
                    .map(|(a, d)| a + w * d)
                    // alloc: bounded — buffered-plane staging, buffer-bounded per flush
                    .collect()
            })
            // alloc: bounded — buffered-plane staging, buffer-bounded per flush
            .collect();

        if candidates.len() >= 2 {
            let partners =
                self.config
                    .strategy
                    .select_all_with(round, &candidates, self.config.measure);
            for (i, entry) in consumed.iter().enumerate() {
                cross_aggregate_into(
                    self.middleware[entry.slot].make_mut(),
                    &candidates[i],
                    &candidates[partners[i]],
                    self.config.alpha,
                );
            }
        } else {
            // A lone arrival has no collaborator; keep its training.
            self.middleware[consumed[0].slot]
                .make_mut()
                .copy_from_slice(&candidates[0]);
        }

        report_from(&consumed)
    }
}

impl FederatedAlgorithm for BufferedFedCross {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        format!(
            "buffered-fedcross(alpha={}, staleness_alpha={}, {})",
            self.config.alpha, self.config.staleness_alpha, self.config.strategy
        )
    }

    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let k = self.middleware.len();
        let selected_k = ctx.clients_per_round();
        assert_eq!(
            selected_k, k,
            "BufferedFedCross requires clients_per_round ({selected_k}) to equal the number of middleware models ({k})"
        );
        let (goal_k, max_staleness) = policy_params(ctx);

        let mut selected = ctx.select_clients();
        ctx.rng_mut().shuffle(&mut selected);
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .zip(self.middleware.iter())
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|(&client, model)| (client, model.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs); // release dispatch references before fusing in place
        let outcomes = ctx.upload_outcomes(&updates);

        for (update, outcome) in updates.into_iter().zip(outcomes) {
            let slot = selected
                .iter()
                .position(|&client| client == update.client)
                .expect("every update comes from a selected client");
            self.inflight.retain(|p| p.client != update.client);
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            let mut delta = update.params.to_vec();
            for (d, m) in delta.iter_mut().zip(self.middleware[slot].as_slice()) {
                *d -= *m;
            }
            self.inflight.push(BufferedUpload {
                client: update.client,
                slot,
                train_round: round,
                due_round: round + outcome.delay,
                copies: outcome.copies,
                delta,
                num_samples: update.num_samples,
                train_loss: update.train_loss,
            });
        }

        let arrivals = collect_due(&mut self.inflight, round);
        self.absorb(round, goal_k, max_staleness, arrivals)
    }

    fn global_params(&self) -> Vec<f32> {
        global_model(&self.middleware)
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        out.resize(self.middleware[0].len(), 0.0);
        global_model_into(out, &self.middleware);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        let state = AlgorithmState::multi_model(self.middleware.clone());
        let state = snapshot_store(state, "inflight", &self.inflight);
        Ok(snapshot_store(state, "buffer", &self.buffer))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        let k = self.middleware.len();
        let dim = self.middleware[0].len();
        let models = state.expect_models(k, dim)?;
        let inflight = restore_store(state, "inflight", self.num_clients, dim, k - 1)?;
        let buffer = restore_store(state, "buffer", self.num_clients, dim, k - 1)?;
        self.middleware = models.to_vec();
        self.inflight = inflight;
        self.buffer = buffer;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(client: usize, slot: usize, train_round: usize, delta: Vec<f32>) -> BufferedUpload {
        BufferedUpload {
            client,
            slot,
            train_round,
            due_round: train_round,
            copies: 1,
            delta,
            num_samples: 10 + client,
            train_loss: 0.5 + client as f32 * 0.125,
        }
    }

    #[test]
    fn staleness_weight_decays() {
        let entry = upload(0, 0, 4, vec![1.0]);
        assert_eq!(entry.staleness_weight(4, 0.5), 1.0);
        let fresh = entry.staleness_weight(4, 0.5);
        let stale = entry.staleness_weight(7, 0.5);
        assert!(stale < fresh);
        // alpha = 0 ignores staleness entirely.
        assert_eq!(entry.staleness_weight(9, 0.0), 1.0);
    }

    #[test]
    fn fedavg_buffer_waits_for_goal_then_fires() {
        let mut algo = BufferedFedAvg::new(0.5, vec![0.0; 4], 8);
        let quiet = algo.absorb(0, 3, 4, vec![upload(0, 0, 0, vec![1.0; 4])]);
        assert_eq!(quiet.participants, 0);
        assert_eq!(algo.global(), &[0.0; 4]);
        assert_eq!(algo.buffer().len(), 1);

        let quiet = algo.absorb(1, 3, 4, vec![upload(1, 0, 1, vec![2.0; 4])]);
        assert_eq!(quiet.participants, 0);

        let fired = algo.absorb(2, 3, 4, vec![upload(2, 0, 2, vec![3.0; 4])]);
        assert_eq!(fired.participants, 3);
        assert!(algo.buffer().is_empty());
        assert!(algo.global().iter().all(|&g| g > 0.0));
    }

    #[test]
    fn duplicates_and_order_do_not_change_the_aggregate() {
        let arrivals = vec![
            upload(0, 0, 2, vec![1.0, -1.0]),
            upload(3, 0, 1, vec![0.5, 0.25]),
            upload(5, 0, 3, vec![-2.0, 4.0]),
        ];
        let mut reference = BufferedFedAvg::new(0.7, vec![0.0, 0.0], 8);
        reference.absorb(3, 3, 4, arrivals.clone());

        // Reversed order plus a duplicated transport copy of client 3.
        let mut shuffled: Vec<BufferedUpload> = arrivals.iter().rev().cloned().collect();
        shuffled.insert(1, arrivals[1].clone());
        let mut other = BufferedFedAvg::new(0.7, vec![0.0, 0.0], 8);
        let report = other.absorb(3, 3, 4, shuffled);

        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(reference.global()), bits(other.global()));
        assert_eq!(report.participants, 3);
    }

    #[test]
    fn stale_entries_are_discarded() {
        let mut algo = BufferedFedAvg::new(0.5, vec![0.0; 2], 8);
        algo.absorb(0, 10, 2, vec![upload(0, 0, 0, vec![1.0, 1.0])]);
        assert_eq!(algo.buffer().len(), 1);
        // Round 5: the entry is 5 rounds stale, beyond max_staleness = 2.
        algo.absorb(5, 10, 2, Vec::new());
        assert!(algo.buffer().is_empty());
    }

    #[test]
    fn freshest_entry_per_client_wins() {
        let mut algo = BufferedFedAvg::new(0.5, vec![0.0; 1], 8);
        algo.absorb(2, 10, 8, vec![upload(4, 0, 1, vec![1.0])]);
        algo.absorb(3, 10, 8, vec![upload(4, 0, 3, vec![9.0])]);
        assert_eq!(algo.buffer().len(), 1);
        assert_eq!(algo.buffer()[0].train_round, 3);
        assert_eq!(algo.buffer()[0].delta, vec![9.0]);
    }

    #[test]
    fn fedavg_snapshot_roundtrips_pending_stores() {
        let mut algo = BufferedFedAvg::new(0.5, vec![0.25; 3], 8);
        algo.buffer.push(upload(2, 0, 1, vec![1.0, 2.0, 3.0]));
        algo.inflight.push(BufferedUpload {
            due_round: 6,
            copies: 2,
            ..upload(5, 0, 4, vec![-1.0, 0.5, 0.0])
        });
        let state = algo.snapshot_state().unwrap();

        let mut restored = BufferedFedAvg::new(0.5, vec![0.0; 3], 8);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.global(), algo.global());
        assert_eq!(restored.buffer(), algo.buffer());
        assert_eq!(restored.inflight(), algo.inflight());
        assert_eq!(restored.inflight()[0].copies, 2);
    }

    #[test]
    fn fedcross_fuses_arrived_slots_and_carries_the_rest() {
        let config = BufferedFedCrossConfig {
            alpha: 0.9,
            ..Default::default()
        };
        let mut algo = BufferedFedCross::new(config, vec![1.0; 4], 3, 8);
        let before = algo.middleware()[2].to_vec();
        let report = algo.absorb(
            0,
            2,
            3,
            vec![
                upload(0, 0, 0, vec![0.5; 4]),
                upload(1, 1, 0, vec![-0.5; 4]),
            ],
        );
        assert_eq!(report.participants, 2);
        // Slot 2 had no arrival and carries over unchanged.
        assert_eq!(algo.middleware()[2].to_vec(), before);
        assert_ne!(algo.middleware()[0], algo.middleware()[1]);
    }

    #[test]
    fn fedcross_order_invariance() {
        let arrivals = vec![
            upload(0, 2, 1, vec![1.0, 0.0, -1.0]),
            upload(4, 0, 2, vec![0.25, 0.5, 0.75]),
            upload(6, 1, 2, vec![-0.5, 0.5, 0.0]),
        ];
        let run = |order: Vec<BufferedUpload>| {
            let mut algo =
                BufferedFedCross::new(BufferedFedCrossConfig::default(), vec![0.1; 3], 3, 8);
            algo.absorb(2, 3, 4, order);
            algo.middleware()
                .iter()
                .flat_map(|m| m.iter().map(|x| x.to_bits()))
                .collect::<Vec<u32>>()
        };
        let reference = run(arrivals.clone());
        let reversed = run(arrivals.iter().rev().cloned().collect());
        let mut duplicated = arrivals.clone();
        duplicated.push(arrivals[0].clone());
        assert_eq!(reference, run(duplicated));
        assert_eq!(reference, reversed);
    }

    #[test]
    fn fedcross_snapshot_roundtrips() {
        let mut algo =
            BufferedFedCross::new(BufferedFedCrossConfig::default(), vec![0.5; 2], 2, 6);
        algo.buffer.push(upload(1, 1, 2, vec![1.0, -1.0]));
        algo.inflight.push(BufferedUpload {
            due_round: 9,
            ..upload(3, 0, 5, vec![2.0, 2.0])
        });
        let state = algo.snapshot_state().unwrap();
        let mut restored =
            BufferedFedCross::new(BufferedFedCrossConfig::default(), vec![0.0; 2], 2, 6);
        restored.restore_state(&state).unwrap();
        assert_eq!(restored.middleware(), algo.middleware());
        assert_eq!(restored.buffer(), algo.buffer());
        assert_eq!(restored.inflight(), algo.inflight());
    }

    #[test]
    fn restore_rejects_out_of_range_slots() {
        // Hand-build a state whose buffered entry targets slot 5 — far beyond
        // the 2 middleware slots of the restoring algorithm.
        let mut donor =
            BufferedFedCross::new(BufferedFedCrossConfig::default(), vec![0.5; 2], 2, 6);
        donor.buffer.push(upload(1, 5, 2, vec![1.0, -1.0]));
        let state = donor.snapshot_state().unwrap();
        let mut algo =
            BufferedFedCross::new(BufferedFedCrossConfig::default(), vec![0.0; 2], 2, 6);
        let err = algo.restore_state(&state).unwrap_err();
        assert!(err.to_string().contains("slot"), "got: {err}");
        // The failed restore must not have touched the model.
        assert_eq!(algo.middleware()[0].as_slice(), &[0.0, 0.0]);
    }
}
