//! Heterogeneity statistics over a federated dataset.
//!
//! The paper quantifies client heterogeneity informally through the Figure 3
//! dot plots; this module provides the scalar summaries used by the analysis
//! harness and tests: per-client label entropy, total-variation / earth-mover
//! style distance between each client's label distribution and the global one,
//! and a compact [`HeterogeneityReport`].

use crate::federated::FederatedDataset;

/// Shannon entropy (nats) of a label-count histogram.
///
/// Returns 0 for an empty histogram. A uniform distribution over `C` classes
/// has entropy `ln(C)`; a single-class client has entropy 0.
pub fn label_entropy(counts: &[usize]) -> f32 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut entropy = 0f32;
    for &c in counts {
        if c == 0 {
            continue;
        }
        let p = c as f32 / total as f32;
        entropy -= p * p.ln();
    }
    entropy
}

/// Total-variation distance between two label distributions given as count
/// histograms: `0.5 * Σ |p_c - q_c|`, in `[0, 1]`.
pub fn total_variation(counts_a: &[usize], counts_b: &[usize]) -> f32 {
    assert_eq!(counts_a.len(), counts_b.len(), "class counts must align");
    let total_a: usize = counts_a.iter().sum();
    let total_b: usize = counts_b.iter().sum();
    if total_a == 0 || total_b == 0 {
        return 0.0;
    }
    let mut distance = 0f32;
    for (&a, &b) in counts_a.iter().zip(counts_b) {
        let p = a as f32 / total_a as f32;
        let q = b as f32 / total_b as f32;
        distance += (p - q).abs();
    }
    distance / 2.0
}

/// A compact heterogeneity summary of a federated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityReport {
    /// Mean per-client label entropy (nats).
    pub mean_client_entropy: f32,
    /// Entropy of the pooled (global) label distribution.
    pub global_entropy: f32,
    /// Mean total-variation distance between client and global distributions.
    pub mean_divergence: f32,
    /// Largest client-to-global total-variation distance.
    pub max_divergence: f32,
    /// Mean number of distinct classes present per client.
    pub mean_classes_per_client: f32,
    /// Smallest and largest client sample counts.
    pub client_size_range: (usize, usize),
}

impl HeterogeneityReport {
    /// Builds the report from a federated dataset.
    pub fn from_dataset(data: &FederatedDataset) -> Self {
        let counts = data.class_count_matrix();
        let num_classes = data.num_classes();
        let mut global = vec![0usize; num_classes];
        for client in &counts {
            for (g, &c) in global.iter_mut().zip(client) {
                *g += c;
            }
        }

        let mut entropies = Vec::with_capacity(counts.len());
        let mut divergences = Vec::with_capacity(counts.len());
        let mut classes_per_client = Vec::with_capacity(counts.len());
        let mut sizes = Vec::with_capacity(counts.len());
        for client in &counts {
            entropies.push(label_entropy(client));
            divergences.push(total_variation(client, &global));
            classes_per_client.push(client.iter().filter(|&&c| c > 0).count() as f32);
            sizes.push(client.iter().sum::<usize>());
        }
        let mean = |v: &[f32]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f32>() / v.len() as f32
            }
        };
        Self {
            mean_client_entropy: mean(&entropies),
            global_entropy: label_entropy(&global),
            mean_divergence: mean(&divergences),
            max_divergence: divergences.iter().copied().fold(0.0, f32::max),
            mean_classes_per_client: mean(&classes_per_client),
            client_size_range: (
                sizes.iter().copied().min().unwrap_or(0),
                sizes.iter().copied().max().unwrap_or(0),
            ),
        }
    }

    /// A heterogeneity ratio in `[0, 1]`: 0 when every client matches the
    /// global label distribution, approaching 1 for single-class clients on a
    /// balanced global distribution.
    pub fn heterogeneity_ratio(&self) -> f32 {
        if self.global_entropy <= f32::MIN_POSITIVE {
            return 0.0;
        }
        (1.0 - self.mean_client_entropy / self.global_entropy).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federated::{FederatedDataset, SynthCifar10Config};
    use crate::partition::Heterogeneity;
    use fedcross_tensor::SeededRng;

    #[test]
    fn entropy_of_uniform_distribution_is_log_classes() {
        let counts = vec![10usize; 8];
        assert!((label_entropy(&counts) - (8f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn entropy_of_single_class_is_zero() {
        assert_eq!(label_entropy(&[0, 42, 0]), 0.0);
        assert_eq!(label_entropy(&[]), 0.0);
        assert_eq!(label_entropy(&[0, 0]), 0.0);
    }

    #[test]
    fn total_variation_bounds_and_symmetry() {
        let a = vec![10, 0, 0];
        let b = vec![0, 0, 10];
        assert!((total_variation(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(total_variation(&a, &a), 0.0);
        let c = vec![5, 3, 2];
        assert!((total_variation(&a, &c) - total_variation(&c, &a)).abs() < 1e-6);
        assert_eq!(total_variation(&[0, 0], &[1, 1]), 0.0);
    }

    fn build(beta_or_iid: Heterogeneity, seed: u64) -> FederatedDataset {
        let mut rng = SeededRng::new(seed);
        FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 20,
                samples_per_client: 40,
                test_samples: 40,
                ..Default::default()
            },
            beta_or_iid,
            &mut rng,
        )
    }

    #[test]
    fn report_detects_dirichlet_skew() {
        let iid = HeterogeneityReport::from_dataset(&build(Heterogeneity::Iid, 1));
        let skewed =
            HeterogeneityReport::from_dataset(&build(Heterogeneity::Dirichlet(0.1), 1));
        assert!(
            skewed.mean_divergence > iid.mean_divergence + 0.1,
            "divergence {} vs {}",
            skewed.mean_divergence,
            iid.mean_divergence
        );
        assert!(skewed.mean_client_entropy < iid.mean_client_entropy);
        assert!(skewed.mean_classes_per_client < iid.mean_classes_per_client);
        assert!(skewed.heterogeneity_ratio() > iid.heterogeneity_ratio());
    }

    #[test]
    fn iid_report_is_nearly_homogeneous() {
        let report = HeterogeneityReport::from_dataset(&build(Heterogeneity::Iid, 2));
        assert!(report.heterogeneity_ratio() < 0.15, "{report:?}");
        assert!(report.max_divergence < 0.5);
        let (min_size, max_size) = report.client_size_range;
        assert!(max_size - min_size <= 1);
    }

    #[test]
    fn global_entropy_close_to_log_classes_for_balanced_generation() {
        let report = HeterogeneityReport::from_dataset(&build(Heterogeneity::Dirichlet(0.5), 3));
        assert!((report.global_entropy - (10f32).ln()).abs() < 0.15);
    }
}
