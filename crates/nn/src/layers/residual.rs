//! Residual block used by the ResNet-20 family.

use crate::layer::{Layer, Param};
use crate::layers::{BatchNorm2d, Conv2d};
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// A basic ResNet residual block:
///
/// ```text
/// x ── conv3x3 ── bn ── relu ── conv3x3 ── bn ──(+)── relu ── y
///  └──────────────── identity or 1x1 conv ──────┘
/// ```
///
/// When `stride > 1` or the channel count changes, the skip path uses a
/// 1x1 strided convolution followed by batch norm (the standard "option B"
/// projection shortcut).
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    relu1_mask: Option<Tensor>,
    final_relu_mask: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a residual block mapping `in_channels` to `out_channels` with
    /// the given stride on the first convolution.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, rng);
        let bn1 = BatchNorm2d::new(out_channels);
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, rng);
        let bn2 = BatchNorm2d::new(out_channels);
        let downsample = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, rng),
                BatchNorm2d::new(out_channels),
            ))
        } else {
            None
        };
        Self {
            conv1,
            bn1,
            conv2,
            bn2,
            downsample,
            relu1_mask: None,
            final_relu_mask: None,
        }
    }

    /// Whether this block uses a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.downsample.is_some()
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out = self.conv1.forward(input, train);
        let out = self.bn1.forward(&out, train);
        self.relu1_mask = Some(out.relu_mask());
        let out = out.relu();
        let out = self.conv2.forward(&out, train);
        let out = self.bn2.forward(&out, train);

        let skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(input, train);
                bn.forward(&s, train)
            }
            None => input.clone(),
        };
        let sum = out.add(&skip);
        self.final_relu_mask = Some(sum.relu_mask());
        sum.relu()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let final_mask = self
            .final_relu_mask
            .as_ref()
            .expect("backward called before forward");
        let grad_sum = grad_output.mul(final_mask);

        // Main branch: bn2 -> conv2 -> relu1 -> bn1 -> conv1.
        let g = self.bn2.backward(&grad_sum);
        let g = self.conv2.backward(&g);
        let relu1_mask = self.relu1_mask.as_ref().expect("missing relu1 mask");
        let g = g.mul(relu1_mask);
        let g = self.bn1.backward(&g);
        let grad_main = self.conv1.backward(&g);

        // Skip branch.
        let grad_skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let g = bn.backward(&grad_sum);
                conv.backward(&g)
            }
            None => grad_sum,
        };
        grad_main.add(&grad_skip)
    }

    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        if let Some(old) = self.relu1_mask.take() {
            pool.recycle(old);
        }
        if let Some(old) = self.final_relu_mask.take() {
            pool.recycle(old);
        }
        let c1 = self.conv1.forward_into(input, train, pool);
        let b1 = self.bn1.forward_into(&c1, train, pool);
        pool.recycle(c1);
        let mut mask = pool.take_uninit(b1.dims());
        b1.relu_mask_into(&mut mask);
        self.relu1_mask = Some(mask);
        let mut r1 = pool.take_uninit(b1.dims());
        b1.relu_into(&mut r1);
        pool.recycle(b1);
        let c2 = self.conv2.forward_into(&r1, train, pool);
        pool.recycle(r1);
        let out = self.bn2.forward_into(&c2, train, pool);
        pool.recycle(c2);

        let skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward_into(input, train, pool);
                let sb = bn.forward_into(&s, train, pool);
                pool.recycle(s);
                sb
            }
            None => pool.take_copy(input),
        };
        // sum = out + skip, then the final ReLU in place (same values as the
        // allocating `out.add(&skip)` / `sum.relu()` chain).
        let mut sum = out;
        sum.add_assign(&skip);
        pool.recycle(skip);
        let mut final_mask = pool.take_uninit(sum.dims());
        sum.relu_mask_into(&mut final_mask);
        self.final_relu_mask = Some(final_mask);
        sum.relu_in_place();
        sum
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let final_mask = self
            .final_relu_mask
            .as_ref()
            .expect("backward called before forward");
        let mut grad_sum = pool.take_uninit(grad_output.dims());
        grad_output.zip_map_into(final_mask, &mut grad_sum, |a, b| a * b);

        // Main branch: bn2 -> conv2 -> relu1 -> bn1 -> conv1.
        let g_bn2 = self.bn2.backward_into(&grad_sum, pool);
        let g_conv2 = self.conv2.backward_into(&g_bn2, pool);
        pool.recycle(g_bn2);
        let relu1_mask = self.relu1_mask.as_ref().expect("missing relu1 mask");
        let mut g_relu = pool.take_uninit(g_conv2.dims());
        g_conv2.zip_map_into(relu1_mask, &mut g_relu, |a, b| a * b);
        pool.recycle(g_conv2);
        let g_bn1 = self.bn1.backward_into(&g_relu, pool);
        pool.recycle(g_relu);
        let mut grad_main = self.conv1.backward_into(&g_bn1, pool);
        pool.recycle(g_bn1);

        // Skip branch.
        let grad_skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let g = bn.backward_into(&grad_sum, pool);
                pool.recycle(grad_sum);
                let gs = conv.backward_into(&g, pool);
                pool.recycle(g);
                gs
            }
            None => grad_sum,
        };
        // grad_main + grad_skip, reusing grad_main's buffer (same values as
        // the allocating `grad_main.add(&grad_skip)`).
        grad_main.add_assign(&grad_skip);
        pool.recycle(grad_skip);
        grad_main
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        let mut out = Vec::new();
        out.extend(self.conv1.params());
        out.extend(self.bn1.params());
        out.extend(self.conv2.params());
        out.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.downsample {
            out.extend(conv.params());
            out.extend(bn.params());
        }
        out
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        let mut out = Vec::new();
        out.extend(self.conv1.params_mut());
        out.extend(self.bn1.params_mut());
        out.extend(self.conv2.params_mut());
        out.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = &mut self.downsample {
            out.extend(conv.params_mut());
            out.extend(bn.params_mut());
        }
        out
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &self.downsample {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.bn1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.bn2.visit_params_mut(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_params_mut(f);
            bn.visit_params_mut(f);
        }
    }

    fn reset_stochastic_state(&mut self, rng: &mut SeededRng) {
        // Composite layer: thread the reset through every child so a future
        // stochastic sub-layer (e.g. dropout inside a block) is covered.
        self.conv1.reset_stochastic_state(rng);
        self.bn1.reset_stochastic_state(rng);
        self.conv2.reset_stochastic_state(rng);
        self.bn2.reset_stochastic_state(rng);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.reset_stochastic_state(rng);
            bn.reset_stochastic_state(rng);
        }
    }

    fn config_hash(&self, hash: u64) -> u64 {
        // Composite layer: fold in every child's configuration.
        let hash = self.conv1.config_hash(hash);
        let hash = self.bn1.config_hash(hash);
        let hash = self.conv2.config_hash(hash);
        let hash = self.bn2.config_hash(hash);
        match &self.downsample {
            Some((conv, bn)) => bn.config_hash(conv.config_hash(hash)),
            None => hash,
        }
    }

    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_tensor::init;

    #[test]
    fn identity_block_preserves_shape() {
        let mut rng = SeededRng::new(0);
        let mut block = ResidualBlock::new(4, 4, 1, &mut rng);
        assert!(!block.has_projection());
        let x = init::normal(&[2, 4, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.dims(), &[2, 4, 8, 8]);
    }

    #[test]
    fn strided_block_downsamples_and_projects() {
        let mut rng = SeededRng::new(1);
        let mut block = ResidualBlock::new(4, 8, 2, &mut rng);
        assert!(block.has_projection());
        let x = init::normal(&[1, 4, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        assert_eq!(y.dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn output_is_nonnegative_after_final_relu() {
        let mut rng = SeededRng::new(2);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng);
        let x = init::normal(&[1, 2, 6, 6], 0.0, 2.0, &mut rng);
        let y = block.forward(&x, true);
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn backward_produces_input_shaped_gradient() {
        let mut rng = SeededRng::new(3);
        let mut block = ResidualBlock::new(3, 6, 2, &mut rng);
        let x = init::normal(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true);
        let grad = block.backward(&Tensor::ones(y.dims()));
        assert_eq!(grad.dims(), x.dims());
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn input_gradient_matches_finite_differences_for_identity_block() {
        let mut rng = SeededRng::new(4);
        let mut block = ResidualBlock::new(2, 2, 1, &mut rng);
        let x = init::normal(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let probe = init::normal(&[2 * 4 * 4], 0.0, 1.0, &mut rng);

        let loss = |block: &mut ResidualBlock, x: &Tensor| -> f32 {
            block
                .forward(x, true)
                .data()
                .iter()
                .zip(probe.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = loss(&mut block, &x);
        block.zero_grads();
        let grad_in = block.backward(&probe.reshape(&[1, 2, 4, 4]));

        let eps = 1e-2;
        let mut checked = 0;
        for idx in [1usize, 9, 17, 30] {
            let mut plus = x.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = x.clone();
            minus.data_mut()[idx] -= eps;
            let numeric = (loss(&mut block, &plus) - loss(&mut block, &minus)) / (2.0 * eps);
            let analytic = grad_in.data()[idx];
            // ReLU kinks and batch-norm statistics make a few points noisy; require
            // agreement on clearly differentiable points.
            if numeric.abs() > 0.05 {
                assert!(
                    (numeric - analytic).abs() < 0.15 * (1.0 + numeric.abs()),
                    "idx {idx}: numeric {numeric} vs analytic {analytic}"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no informative finite-difference points");
    }

    #[test]
    fn params_cover_both_branches() {
        let mut rng = SeededRng::new(5);
        let plain = ResidualBlock::new(4, 4, 1, &mut rng);
        let projected = ResidualBlock::new(4, 8, 2, &mut rng);
        // conv(2) + bn(4) per conv/bn pair, two pairs = 12 params; projection adds 6.
        assert_eq!(plain.params().len(), 12);
        assert_eq!(projected.params().len(), 18);
        assert!(projected.param_count() > plain.param_count());
    }
}
