//! The persistent client-worker plane.
//!
//! Before this module existed the engine rebuilt every client-side model on
//! every communication round: `clone_model()` + `set_params_flat` per
//! training job, plus another clone per evaluation — so the zero-copy /
//! zero-allocation guarantees of the parameter and training planes stopped at
//! the round boundary. A [`ClientWorkerPool`] keeps one warm slot per
//! parallel worker — a model instance, the scratch arena, the minibatch
//! gather buffers, the optimizer velocity and a reusable upload block — so a
//! steady-state round performs **zero model constructions and zero
//! full-model heap allocations**: dispatch degenerates to "reload parameters
//! into a cached model".
//!
//! ## Why reuse is trajectory-safe
//!
//! Reloading parameters restores *almost* all model state: every trainable
//! tensor and the batch-norm running statistics are `Param`s, and the forward
//! caches are overwritten before they are read. The one exception is
//! stochastic layer state — [`Dropout`](fedcross_nn::layers::Dropout) owns an
//! RNG forked once at construction, so a naively reused model would continue
//! its mask stream where last round stopped while a fresh clone would restart
//! it. Every dispatch therefore calls
//! [`Model::reset_stochastic_state`], which rewinds such streams to their
//! construction seed — making "cached slot + reload + reset" bitwise
//! identical to "clone template + reload" (pinned by
//! `tests/tests/round_plane.rs` and the fixed-seed trajectory fingerprints in
//! `tests/tests/training_plane.rs`).
//!
//! The pool requires the template's own stochastic state to be unconsumed
//! (never `forward(train=true)` the template itself) — true for every
//! template the [`crate::Simulation`] manages.

use crate::client::{
    local_train_pooled, GradCorrection, LocalTrainConfig, LocalUpdate, TrainScratch,
};
use fedcross_data::Dataset;
use fedcross_nn::Model;
use fedcross_tensor::SeededRng;

/// Stream id used to derive the (currently unused-by-`Dropout`) reseeding
/// entropy for [`Model::reset_stochastic_state`] from a job's training RNG.
/// Forking does not consume the parent (see [`SeededRng::fork`]), so the
/// job's shuffle stream is untouched — a requirement for bitwise equivalence
/// with the clone-per-round path, which never touched the job RNG either.
const RESEED_STREAM: u64 = 0x5EED;

/// One warm worker: a cached model plus all reusable training state.
pub struct ClientWorker {
    model: Box<dyn Model>,
    scratch: TrainScratch,
}

impl ClientWorker {
    fn from_template(template: &dyn Model) -> Self {
        Self {
            // alloc: cold — worker construction clones the template once
            model: template.clone_model(),
            scratch: TrainScratch::new(),
        }
    }

    /// Runs one training job on this worker: reload the dispatched
    /// parameters, rewind stochastic layer state to fresh-clone semantics,
    /// then train. Bitwise identical to training a fresh template clone.
    pub fn train(
        &mut self,
        client: usize,
        params: &[f32],
        data: &Dataset,
        config: &LocalTrainConfig,
        rng: &mut SeededRng,
        correction: Option<&GradCorrection>,
    ) -> LocalUpdate {
        self.model.set_params_flat(params);
        let mut reseed = rng.fork(RESEED_STREAM); // fork: construction-seed
        self.model.reset_stochastic_state(&mut reseed);
        local_train_pooled(
            client,
            self.model.as_mut(),
            data,
            config,
            rng,
            correction,
            &mut self.scratch,
        )
    }

    /// The cached model (read access, for tests and diagnostics).
    pub fn model(&self) -> &dyn Model {
        self.model.as_ref()
    }

    /// Fresh-buffer count of this worker's scratch arena; stops growing once
    /// the worker is warm (see [`TrainScratch::arena_fresh_allocations`]).
    pub fn arena_fresh_allocations(&self) -> usize {
        self.scratch.arena_fresh_allocations()
    }
}

/// A growable pool of persistent [`ClientWorker`]s, one per parallel training
/// job of a round.
///
/// The pool is architecture-checked: if it is reused with a template whose
/// architecture or parameter count differs from the cached workers, the slots
/// are rebuilt (a correctness guard, not a hot path). Within one simulation
/// the pool grows to the round width once and then serves every subsequent
/// round without constructing a single model.
#[derive(Default)]
pub struct ClientWorkerPool {
    workers: Vec<ClientWorker>,
    arch: Option<(&'static str, u64)>,
    models_built: usize,
}

impl ClientWorkerPool {
    /// Creates an empty pool; slots are cloned from the template lazily.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of warm worker slots currently cached.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool holds no workers yet.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Total number of model instances this pool has ever constructed. In a
    /// steady-state simulation this stops growing after the widest round —
    /// the "zero model constructions per round" invariant the round-plane
    /// tests pin.
    pub fn models_built(&self) -> usize {
        self.models_built
    }

    /// Total fresh-buffer count across every worker's scratch arena. Like
    /// [`ClientWorkerPool::models_built`], this stops growing once the plane
    /// is warm: a steady-state round serves every activation, gradient and
    /// gather buffer from the free lists (pinned by
    /// `tests/tests/round_alloc.rs`).
    pub fn arena_fresh_allocations(&self) -> usize {
        self.workers
            .iter()
            .map(ClientWorker::arena_fresh_allocations)
            .sum()
    }

    /// Ensures at least `n` warm workers compatible with `template` exist and
    /// returns exactly `n` of them.
    ///
    /// **Contract: one pool serves one template** (or identical clones of
    /// it). The `(arch_name, param_layout_hash)` signature check is
    /// defense-in-depth against accidental mismatches: the hash covers the
    /// layer sequence, per-parameter tensor sizes and each layer's
    /// value-level configuration (`Layer::config_hash` — dropout
    /// probability + mask-stream seed, conv stride/padding, pooling
    /// geometry), so template variants along any of those axes force a
    /// rebuild. External `Model` impls that don't override
    /// `param_layout_hash`/`config_hash` fall back to coarser signatures —
    /// keep to the one-template contract there. `Simulation` creates a
    /// fresh pool per run, so the engine never shares pools across
    /// templates.
    pub fn ensure(&mut self, n: usize, template: &dyn Model) -> &mut [ClientWorker] {
        // Keyed on the parameter *layout* hash, not the parameter count:
        // different layer shapes can sum to the same total, and loading a
        // same-length flat vector into a differently shaped cached model
        // would silently train through the wrong architecture.
        let signature = (template.arch_name(), template.param_layout_hash());
        if self.arch != Some(signature) {
            // Different architecture than the cached slots: rebuild from
            // scratch rather than training through mismatched models.
            self.workers.clear();
            self.arch = Some(signature);
        }
        while self.workers.len() < n {
            self.workers.push(ClientWorker::from_template(template));
            self.models_built += 1;
        }
        &mut self.workers[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::models::mlp;

    #[test]
    fn pool_grows_once_and_then_reuses_workers() {
        let mut rng = SeededRng::new(0);
        let template = mlp(4, &[8], 2, &mut rng);
        let mut pool = ClientWorkerPool::new();
        assert!(pool.is_empty());
        assert_eq!(pool.ensure(3, template.as_ref()).len(), 3);
        assert_eq!(pool.models_built(), 3);
        // Narrower and equal-width rounds construct nothing new.
        let _ = pool.ensure(2, template.as_ref());
        let _ = pool.ensure(3, template.as_ref());
        assert_eq!(pool.models_built(), 3);
        assert_eq!(pool.len(), 3);
        // A wider round grows by the difference only.
        let _ = pool.ensure(5, template.as_ref());
        assert_eq!(pool.models_built(), 5);
    }

    #[test]
    fn pool_rebuilds_on_architecture_change() {
        let mut rng = SeededRng::new(1);
        let a = mlp(4, &[8], 2, &mut rng);
        let b = mlp(6, &[8], 2, &mut rng);
        let mut pool = ClientWorkerPool::new();
        let _ = pool.ensure(2, a.as_ref());
        let workers = pool.ensure(2, b.as_ref());
        assert_eq!(workers[0].model().param_count(), b.param_count());
        assert_eq!(pool.models_built(), 4, "mismatched slots must be rebuilt");
    }

    #[test]
    fn pool_rebuilds_on_same_size_layout_collision() {
        // Same arch label AND same total parameter count, different layer
        // shapes: mlp(1, [12], 10) and mlp(13, [6], 10) are both "mlp" with
        // 154 parameters. The layout hash must still force a rebuild —
        // loading one's flat vector into the other's cached model would
        // silently train through the wrong architecture.
        let mut rng = SeededRng::new(2);
        let a = mlp(1, &[12], 10, &mut rng);
        let b = mlp(13, &[6], 10, &mut rng);
        assert_eq!(a.param_count(), b.param_count());
        assert_ne!(a.param_layout_hash(), b.param_layout_hash());
        let mut pool = ClientWorkerPool::new();
        let _ = pool.ensure(1, a.as_ref());
        let _ = pool.ensure(1, b.as_ref());
        assert_eq!(pool.models_built(), 2, "layout collisions must rebuild");
    }

    #[test]
    fn pool_rebuilds_on_value_level_config_difference() {
        use fedcross_nn::layers::{Dropout, Linear};
        use fedcross_nn::Sequential;
        // Identical layer sequence and parameter shapes; only the dropout
        // probability differs. The config-hash channel must still force a
        // rebuild — reusing the cached model would silently train with the
        // wrong dropout rate.
        let build = |p: f32| {
            let mut rng = SeededRng::new(3);
            Sequential::new("cfg-probe")
                .push(Linear::new(4, 6, &mut rng))
                .push(Dropout::new(p, &mut rng))
                .push(Linear::new(6, 2, &mut rng))
                .boxed()
        };
        let a = build(0.2);
        let b = build(0.5);
        assert_eq!(a.param_count(), b.param_count());
        assert_ne!(a.param_layout_hash(), b.param_layout_hash());
        let mut pool = ClientWorkerPool::new();
        let _ = pool.ensure(1, a.as_ref());
        let _ = pool.ensure(1, b.as_ref());
        assert_eq!(pool.models_built(), 2, "config differences must rebuild");

        // Same probability but a different construction seed changes the
        // dropout mask stream — also a rebuild.
        let c = {
            let mut rng = SeededRng::new(4);
            Sequential::new("cfg-probe")
                .push(Linear::new(4, 6, &mut rng))
                .push(Dropout::new(0.5, &mut rng))
                .push(Linear::new(6, 2, &mut rng))
                .boxed()
        };
        assert_ne!(b.param_layout_hash(), c.param_layout_hash());
    }
}
