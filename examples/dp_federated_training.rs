//! Differentially-private federated training: run DP-FedAvg and DP-FedCross
//! on the same skewed federation and watch the privacy budget accumulate —
//! then checkpoint DP-FedCross mid-run, "restart", and resume bitwise.
//!
//! The paper's Section IV-F1 claims FedCross composes with FedAvg-style
//! privacy mechanisms because the client-side pipeline is unchanged; this
//! example exercises exactly that composition, printing the accuracy and the
//! (ε, δ = 1e-5) guarantee after every few rounds. Because all DP noise is
//! derived from `(domain, seed, absolute round, slot)` — never from a
//! consumed RNG — and the accountant's spent budget travels inside the
//! checkpoint, the resumed run reproduces the uninterrupted one exactly,
//! spent ε included.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin dp_federated_training
//! ```

use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    Checkpoint, FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_privacy::algorithms::{DpFedAvg, DpFedCross, DpFedCrossConfig};
use fedcross_privacy::mechanism::{DpConfig, NoisePlacement};
use fedcross_tensor::SeededRng;

const DELTA: f64 = 1e-5;

fn main() {
    // A 20-client federation with strong label skew (Dirichlet beta = 0.3).
    let mut rng = SeededRng::new(21);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 20,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.3),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );
    println!(
        "federation: {} clients, model: {} parameters",
        data.num_clients(),
        template.param_count()
    );

    // Clip every client delta to L2 norm 5 and add central Gaussian noise with
    // multiplier 0.1 — a mild setting that should cost little accuracy.
    let dp = DpConfig {
        clip_norm: 5.0,
        noise_multiplier: 0.1,
        placement: NoisePlacement::Central,
    };
    println!(
        "privacy mechanism: clip C={}, noise multiplier z={}, {} placement\n",
        dp.clip_norm, dp.noise_multiplier, dp.placement
    );

    let sim_config = SimulationConfig {
        rounds: 24,
        clients_per_round: 4,
        eval_every: 4,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 5,
    };

    // DP-FedAvg.
    let mut dp_fedavg = DpFedAvg::new(template.params_flat(), dp, 101);
    let result = Simulation::new(sim_config, &data, template.clone_model())
        .run_with_observer(&mut dp_fedavg, |round, record| {
            println!(
                "  [DP-FedAvg  ] round {:>3}: accuracy {:>5.1}%",
                round,
                record.accuracy * 100.0
            );
        });
    println!(
        "DP-FedAvg   : best accuracy {:.1}%, spent epsilon = {:.2} at delta = {DELTA}\n",
        result.best_accuracy_pct(),
        dp_fedavg.epsilon(DELTA).unwrap_or(f64::INFINITY)
    );

    // DP-FedCross with the same mechanism on every middleware upload.
    let fedcross_config = DpFedCrossConfig {
        alpha: 0.9,
        dp,
        ..Default::default()
    };
    let build_fedcross = || {
        DpFedCross::new(
            fedcross_config,
            template.params_flat(),
            sim_config.clients_per_round,
            103,
        )
    };
    let mut dp_fedcross = build_fedcross();
    let sim = Simulation::new(sim_config, &data, template.clone_model());
    let result = sim.run_with_observer(&mut dp_fedcross, |round, record| {
        println!(
            "  [DP-FedCross] round {:>3}: accuracy {:>5.1}%",
            round,
            record.accuracy * 100.0
        );
    });
    println!(
        "DP-FedCross : best accuracy {:.1}%, spent epsilon = {:.2} at delta = {DELTA}",
        result.best_accuracy_pct(),
        dp_fedcross.epsilon(DELTA).unwrap_or(f64::INFINITY)
    );
    println!("(name of the second algorithm: {})", dp_fedcross.name());

    // The same DP-FedCross trajectory, interrupted: train half the rounds,
    // checkpoint (middleware models + spent privacy budget), simulate a
    // server restart, resume. The noise plane is round-derived, so the
    // resumed run must be bitwise identical to the uninterrupted one — and
    // the accountant must report the exact same spent epsilon.
    let halfway = sim_config.rounds / 2;
    let mut interrupted = build_fedcross();
    let partial = sim.run_segment(&mut interrupted, 0, halfway);
    let checkpoint_path = std::env::temp_dir().join("fedcross-example-dp-checkpoint.json");
    sim.checkpoint(&interrupted, &partial)
        .expect("DP-FedCross supports checkpointing")
        .save(&checkpoint_path)
        .expect("checkpoint saves");
    println!(
        "\ncheckpointed DP-FedCross at round {halfway} (epsilon so far {:.2}) to {}",
        interrupted.epsilon(DELTA).unwrap_or(f64::INFINITY),
        checkpoint_path.display()
    );
    drop(interrupted); // the "crash"

    let restored = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut resumed = build_fedcross();
    let second = sim
        .resume(&restored, &mut resumed)
        .expect("checkpoint matches the resuming simulation");
    let identical = dp_fedcross
        .global_params()
        .iter()
        .zip(resumed.global_params())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && result.history == second.history
        && dp_fedcross.epsilon(DELTA).unwrap().to_bits()
            == resumed.epsilon(DELTA).unwrap().to_bits();
    println!(
        "resumed DP run is bitwise identical (params, history, spent epsilon): {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    assert!(identical, "DP resume must be a non-event");
    let _ = std::fs::remove_file(&checkpoint_path);

    println!("\nExpected: both methods learn under the mild mechanism and report the same");
    println!("epsilon, because they share the clipping/noising schedule and sampling rate;");
    println!("and a mid-run restart changes nothing — noise, models and spent budget resume");
    println!("exactly where they left off.");
}
