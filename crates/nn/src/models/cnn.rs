//! The FedAvg CNN: two convolutions followed by two fully-connected layers.

use crate::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
use crate::models::ImageShape;
use crate::{Model, Sequential};
use fedcross_tensor::SeededRng;

/// Configuration of the two-conv CNN (McMahan et al. 2017, used verbatim by
/// the FedCross paper for its "CNN" rows in Table II).
#[derive(Debug, Clone, Copy)]
pub struct CnnConfig {
    /// Channels of the first and second convolution.
    pub conv_channels: (usize, usize),
    /// Width of the hidden fully-connected layer.
    pub fc_hidden: usize,
    /// Convolution kernel size (the paper uses 5; the CPU-scaled default is 3).
    pub kernel: usize,
}

impl Default for CnnConfig {
    fn default() -> Self {
        Self {
            conv_channels: (16, 32),
            fc_hidden: 64,
            kernel: 3,
        }
    }
}

impl CnnConfig {
    /// The paper-scale configuration (32/64 conv channels, 512-wide FC layer).
    pub fn paper_scale() -> Self {
        Self {
            conv_channels: (32, 64),
            fc_hidden: 512,
            kernel: 3,
        }
    }
}

/// Builds the two-conv CNN for the given input shape and class count.
///
/// Architecture: `conv(k,pad)-relu-pool2 -> conv(k,pad)-relu-pool2 -> fc-relu -> fc`.
///
/// # Panics
/// Panics if the spatial size is not divisible by 4 (two 2× poolings).
pub fn cnn(
    input: ImageShape,
    classes: usize,
    config: CnnConfig,
    rng: &mut SeededRng,
) -> Box<dyn Model> {
    let (c, h, w) = input;
    assert!(h % 4 == 0 && w % 4 == 0, "spatial size must be divisible by 4");
    let (c1, c2) = config.conv_channels;
    let pad = config.kernel / 2;
    let flat = c2 * (h / 4) * (w / 4);
    Sequential::new("cnn")
        .push(Conv2d::new(c, c1, config.kernel, 1, pad, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Conv2d::new(c1, c2, config.kernel, 1, pad, rng))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Flatten::new())
        .push(Linear::new(flat, config.fc_hidden, rng))
        .push(Relu::new())
        .push(Linear::new(config.fc_hidden, classes, rng))
        .boxed()
}

/// Builds the CNN with the CPU-scaled default configuration.
pub fn fedavg_cnn(input: ImageShape, classes: usize, rng: &mut SeededRng) -> Box<dyn Model> {
    cnn(input, classes, CnnConfig::default(), rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Sgd;
    use fedcross_tensor::{init, Tensor};

    #[test]
    fn forward_shape_matches_class_count() {
        let mut rng = SeededRng::new(0);
        let mut model = fedavg_cnn((3, 16, 16), 10, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, true);
        assert_eq!(y.dims(), &[2, 10]);
        assert_eq!(model.arch_name(), "cnn");
    }

    #[test]
    fn paper_scale_has_more_parameters_than_default() {
        let mut rng = SeededRng::new(1);
        let small = fedavg_cnn((3, 16, 16), 10, &mut rng);
        let big = cnn((3, 16, 16), 10, CnnConfig::paper_scale(), &mut rng);
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    #[should_panic]
    fn rejects_spatial_size_not_divisible_by_four() {
        let mut rng = SeededRng::new(2);
        let _ = fedavg_cnn((3, 10, 10), 10, &mut rng);
    }

    #[test]
    fn cnn_can_fit_a_tiny_batch() {
        let mut rng = SeededRng::new(3);
        let mut model = cnn(
            (1, 8, 8),
            2,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        // Two distinguishable classes: bright top half vs bright bottom half.
        let mut x = Tensor::zeros(&[8, 1, 8, 8]);
        let mut labels = Vec::new();
        for s in 0..8 {
            let label = s % 2;
            labels.push(label);
            for yy in 0..8 {
                for xx in 0..8 {
                    let bright = if label == 0 { yy < 4 } else { yy >= 4 };
                    x.set(&[s, 0, yy, xx], if bright { 1.0 } else { 0.0 });
                }
            }
        }
        let noise = init::normal(&[8, 1, 8, 8], 0.0, 0.05, &mut rng);
        let x = x.add(&noise);

        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut last_loss = f32::INFINITY;
        for _ in 0..60 {
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            sgd.step(model.as_mut());
            last_loss = loss;
        }
        assert!(last_loss < 0.2, "CNN failed to fit toy data, loss {last_loss}");
    }
}
