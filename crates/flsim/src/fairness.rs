//! Per-client fairness analysis of a deployed global model.
//!
//! The paper's central motivation (Section I, Figure 1) is that a FedAvg
//! global model stuck in one client's sharp optimum "works well for client 1
//! but is unsuitable for client 2". That is a statement about the *per-client*
//! accuracy distribution, not the aggregate test accuracy the tables report.
//! This module evaluates the global model on every client's own data and
//! summarises the spread, so the claim can be measured directly (the
//! `fairness_report` harness compares FedAvg and FedCross on it).

use crate::eval::EvalWorker;
use fedcross_data::FederatedDataset;
use fedcross_nn::Model;
use fedcross_tensor::stats::{mean_of, std_dev_of};
use serde::{Deserialize, Serialize};

/// Distribution of a single global model's accuracy across clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Accuracy of the global model on each client's local data (index =
    /// client id); clients without data score 0.
    pub per_client_accuracy: Vec<f32>,
    /// Mean of the per-client accuracies.
    pub mean: f32,
    /// Standard deviation of the per-client accuracies.
    pub std: f32,
    /// Worst single client accuracy.
    pub min: f32,
    /// Best single client accuracy.
    pub max: f32,
    /// Mean accuracy over the worst 10% of clients (rounded up to at least
    /// one client).
    pub worst_decile_mean: f32,
    /// Jain's fairness index `(Σx)² / (n·Σx²)` in `(0, 1]`; 1 means perfectly
    /// uniform accuracy across clients.
    pub jain_index: f32,
}

impl FairnessReport {
    /// Builds a report from raw per-client accuracies.
    ///
    /// # Panics
    /// Panics if `per_client_accuracy` is empty.
    pub fn from_accuracies(per_client_accuracy: Vec<f32>) -> Self {
        assert!(
            !per_client_accuracy.is_empty(),
            "fairness report needs at least one client"
        );
        let mean = mean_of(&per_client_accuracy);
        let std = std_dev_of(&per_client_accuracy);
        let min = per_client_accuracy
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min);
        let max = per_client_accuracy
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max);

        let mut sorted = per_client_accuracy.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let decile = (sorted.len() as f32 * 0.1).ceil().max(1.0) as usize;
        let worst_decile_mean = mean_of(&sorted[..decile]);

        let sum: f32 = per_client_accuracy.iter().sum();
        let sum_sq: f32 = per_client_accuracy.iter().map(|&x| x * x).sum();
        let n = per_client_accuracy.len() as f32;
        let jain_index = if sum_sq <= f32::EPSILON {
            1.0
        } else {
            (sum * sum) / (n * sum_sq)
        };

        Self {
            per_client_accuracy,
            mean,
            std,
            min,
            max,
            worst_decile_mean,
            jain_index,
        }
    }

    /// Number of clients in the report.
    pub fn num_clients(&self) -> usize {
        self.per_client_accuracy.len()
    }
}

/// Evaluates the flat parameter vector `params` on every client's local data
/// and summarises the per-client accuracy distribution.
pub fn per_client_fairness(
    template: &dyn Model,
    params: &[f32],
    data: &FederatedDataset,
    batch_size: usize,
) -> FairnessReport {
    // One cached evaluation worker for the whole sweep (the parameters are
    // loaded once; each client evaluation reuses the model and arena),
    // instead of one model clone per client.
    let mut worker = EvalWorker::new(template);
    worker.load_params(params);
    let accuracies: Vec<f32> = (0..data.num_clients())
        .map(|client| {
            worker
                .evaluate_current(data.client(client), batch_size)
                .accuracy
        })
        .collect();
    FairnessReport::from_accuracies(accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_nn::models::{cnn, CnnConfig};
    use fedcross_tensor::SeededRng;

    #[test]
    fn uniform_accuracies_have_unit_jain_index_and_zero_std() {
        let report = FairnessReport::from_accuracies(vec![0.6; 8]);
        assert!((report.jain_index - 1.0).abs() < 1e-4);
        assert!(report.std < 1e-4);
        assert!((report.mean - 0.6).abs() < 1e-6);
        assert_eq!(report.min, 0.6);
        assert_eq!(report.max, 0.6);
        assert_eq!(report.worst_decile_mean, 0.6);
        assert_eq!(report.num_clients(), 8);
    }

    #[test]
    fn skewed_accuracies_lower_the_jain_index() {
        let uniform = FairnessReport::from_accuracies(vec![0.5, 0.5, 0.5, 0.5]);
        let skewed = FairnessReport::from_accuracies(vec![0.9, 0.9, 0.9, 0.1]);
        assert!(skewed.jain_index < uniform.jain_index);
        assert!(skewed.std > uniform.std);
        assert!((skewed.min - 0.1).abs() < 1e-6);
        assert!((skewed.worst_decile_mean - 0.1).abs() < 1e-6);
    }

    #[test]
    fn worst_decile_covers_ten_percent_of_clients() {
        // 20 clients: the worst decile is the mean of the worst two.
        let mut accs: Vec<f32> = (0..20).map(|i| i as f32 / 20.0).collect();
        accs.reverse();
        let report = FairnessReport::from_accuracies(accs);
        assert!((report.worst_decile_mean - 0.025).abs() < 1e-6);
    }

    #[test]
    fn all_zero_accuracies_are_handled() {
        let report = FairnessReport::from_accuracies(vec![0.0, 0.0]);
        assert_eq!(report.jain_index, 1.0);
        assert_eq!(report.mean, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_accuracy_list_is_rejected() {
        let _ = FairnessReport::from_accuracies(vec![]);
    }

    #[test]
    fn per_client_fairness_evaluates_every_client() {
        let mut rng = SeededRng::new(0);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 5,
                samples_per_client: 12,
                test_samples: 20,
                ..Default::default()
            },
            Heterogeneity::Dirichlet(0.3),
            &mut rng,
        );
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (2, 4),
                fc_hidden: 8,
                kernel: 3,
            },
            &mut rng,
        );
        let report =
            per_client_fairness(template.as_ref(), &template.params_flat(), &data, 32);
        assert_eq!(report.num_clients(), 5);
        assert!(report
            .per_client_accuracy
            .iter()
            .all(|&acc| (0.0..=1.0).contains(&acc)));
        assert!(report.jain_index > 0.0 && report.jain_index <= 1.0 + 1e-6);
        assert!(report.min <= report.mean && report.mean <= report.max);
    }
}
