//! Criterion benchmarks of the client-side training plane introduced by the
//! scratch-arena refactor: per-layer pooled forward/backward passes, the
//! shared blocked matmul micro-kernel, and a full `local_train` call — the
//! cost FedCross multiplies by `K` every round.
//!
//! `FEDCROSS_BENCH_SMOKE=1` shrinks every benchmark to a 2-sample smoke run
//! so CI can detect kernel regressions without paying for full statistics.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::client::local_train;
use fedcross_flsim::LocalTrainConfig;
use fedcross_nn::layers::{BatchNorm2d, Conv2d, Linear, Lstm, MaxPool2d, Relu};
use fedcross_nn::models::{fedavg_cnn, mlp};
use fedcross_nn::Layer;
use fedcross_tensor::{init, SeededRng, Tensor, TensorPool};

fn sample_size() -> usize {
    if std::env::var_os("FEDCROSS_BENCH_SMOKE").is_some() {
        2
    } else {
        20
    }
}

/// Benchmarks a layer's pooled forward+backward round trip on `input`.
fn bench_layer(
    group: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    mut layer: Box<dyn Layer>,
    input: Tensor,
) {
    let mut pool = TensorPool::new();
    // Prime the caches so the measurement sees the steady state.
    let out = layer.forward_into(&input, true, &mut pool);
    let grad_out = Tensor::ones(out.dims());
    pool.recycle(out);
    group.bench_function(name, |b| {
        b.iter(|| {
            let out = layer.forward_into(black_box(&input), true, &mut pool);
            pool.recycle(out);
            let grad_in = layer.backward_into(black_box(&grad_out), &mut pool);
            pool.recycle(grad_in);
        })
    });
}

fn bench_client_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_training");
    group.sample_size(sample_size());
    let mut rng = SeededRng::new(1);

    // Per-layer forward/backward at the default-CNN working set sizes.
    let image = init::normal(&[10, 3, 16, 16], 0.0, 1.0, &mut rng);
    bench_layer(
        &mut group,
        "conv2d_3to16_fwd_bwd",
        Box::new(Conv2d::new(3, 16, 3, 1, 1, &mut rng)),
        image.clone(),
    );
    let fc_in = init::normal(&[10, 2048], 0.0, 1.0, &mut rng);
    bench_layer(
        &mut group,
        "linear_2048to64_fwd_bwd",
        Box::new(Linear::new(2048, 64, &mut rng)),
        fc_in,
    );
    let act_in = init::normal(&[10, 16, 16, 16], 0.0, 1.0, &mut rng);
    bench_layer(&mut group, "relu_fwd_bwd", Box::new(Relu::new()), act_in.clone());
    bench_layer(
        &mut group,
        "maxpool2_fwd_bwd",
        Box::new(MaxPool2d::new(2)),
        act_in.clone(),
    );
    bench_layer(
        &mut group,
        "batchnorm_fwd_bwd",
        Box::new(BatchNorm2d::new(16)),
        act_in,
    );
    let seq = init::normal(&[10, 10, 16], 0.0, 1.0, &mut rng);
    bench_layer(
        &mut group,
        "lstm_h32_fwd_bwd",
        Box::new(Lstm::new(16, 32, &mut rng)),
        seq,
    );

    // Full local_train calls: the end-to-end client cost per round.
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 1,
            samples_per_client: 20,
            test_samples: 10,
            ..Default::default()
        },
        Heterogeneity::Iid,
        &mut rng,
    );
    let client = data.client(0);
    let local = LocalTrainConfig {
        epochs: 1,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 0.0,
    };

    let template = fedavg_cnn((3, 16, 16), 10, &mut rng);
    group.bench_function("local_train_cnn_e1_b10", |b| {
        let mut model = template.clone_model();
        let mut train_rng = SeededRng::new(3);
        b.iter(|| {
            black_box(local_train(
                0,
                model.as_mut(),
                client,
                &local,
                &mut train_rng,
                None,
            ))
        })
    });

    let flat_dim: usize = client.sample_dims().iter().product();
    let flat = fedcross_data::Dataset::new(
        client.features().reshape(&[client.len(), flat_dim]),
        client.labels().to_vec(),
        client.num_classes(),
    );
    let mlp_template = mlp(flat_dim, &[128, 64], 10, &mut rng);
    group.bench_function("local_train_mlp_e1_b10", |b| {
        let mut model = mlp_template.clone_model();
        let mut train_rng = SeededRng::new(4);
        b.iter(|| {
            black_box(local_train(
                1,
                model.as_mut(),
                &flat,
                &local,
                &mut train_rng,
                None,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_client_training);
criterion_main!(benches);
