//! Sequential composition of layers and its [`Model`] implementation.

use crate::layer::Layer;
use crate::Model;
use fedcross_tensor::{Tensor, TensorPool};

/// A model built from a linear chain of layers.
///
/// All model-zoo constructors in [`crate::models`] return a `Sequential`
/// (boxed as `Box<dyn Model>`); residual and recurrent structure is expressed
/// through composite layers ([`crate::layers::ResidualBlock`],
/// [`crate::layers::Lstm`]) so the chain abstraction is sufficient for every
/// architecture the paper evaluates.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    arch: &'static str,
}

impl Sequential {
    /// Creates an empty sequential model with an architecture name.
    pub fn new(arch: &'static str) -> Self {
        Self {
            layers: Vec::new(),
            arch,
        }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already boxed layer (builder style).
    pub fn push_boxed(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order, useful for summaries and debugging.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Converts the model into a boxed [`Model`] trait object.
    pub fn boxed(self) -> Box<dyn Model> {
        Box::new(self)
    }

    fn read_params_into_impl(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            layer.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
        }
    }

    fn read_grads_into_impl(&self, out: &mut Vec<f32>) {
        for layer in &self.layers {
            layer.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
        }
    }
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self {
            layers: self.layers.clone(),
            arch: self.arch,
        }
    }
}

impl Model for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut current = input.clone();
        for layer in &mut self.layers {
            current = layer.forward(&current, train);
        }
        current
    }

    fn backward(&mut self, grad_logits: &Tensor) {
        let mut grad = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
    }

    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        let mut current: Option<Tensor> = None;
        for layer in &mut self.layers {
            let out = layer.forward_into(current.as_ref().unwrap_or(input), train, pool);
            if let Some(prev) = current.take() {
                pool.recycle(prev);
            }
            current = Some(out);
        }
        current.unwrap_or_else(|| pool.take_copy(input))
    }

    fn backward_into(&mut self, grad_logits: &Tensor, pool: &mut TensorPool) {
        let mut current: Option<Tensor> = None;
        for (idx, layer) in self.layers.iter_mut().enumerate().rev() {
            let prev = current.take();
            let upstream: &Tensor = prev.as_ref().unwrap_or(grad_logits);
            if idx == 0 {
                // Nothing consumes dL/d(input) of the first layer; let it
                // skip that work (parameter gradients are unaffected).
                layer.backward_into_discard(upstream, pool);
            } else {
                current = Some(layer.backward_into(upstream, pool));
            }
            if let Some(p) = prev {
                pool.recycle(p);
            }
        }
        if let Some(last) = current {
            pool.recycle(last);
        }
    }

    fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    fn params_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.read_params_into_impl(&mut out);
        out
    }

    fn read_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        self.read_params_into_impl(out);
    }

    fn set_params_flat(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter vector has wrong length"
        );
        let mut offset = 0usize;
        for layer in &mut self.layers {
            layer.visit_params_mut(&mut |p| {
                let n = p.value.numel();
                p.value
                    .data_mut()
                    .copy_from_slice(&flat[offset..offset + n]);
                offset += n;
            });
        }
    }

    fn grads_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.read_grads_into_impl(&mut out);
        out
    }

    fn read_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        self.read_grads_into_impl(out);
    }

    fn visit_params_for_step(&mut self, f: &mut dyn FnMut(&mut crate::layer::Param)) -> bool {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
        true
    }

    fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    fn clone_model(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }

    fn arch_name(&self) -> &'static str {
        self.arch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use fedcross_tensor::SeededRng;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = SeededRng::new(seed);
        Sequential::new("tiny")
            .push(Linear::new(3, 5, &mut rng))
            .push(Relu::new())
            .push(Linear::new(5, 2, &mut rng))
    }

    #[test]
    fn forward_produces_logits_shape() {
        let mut model = tiny_model(0);
        let x = Tensor::ones(&[4, 3]);
        let y = model.forward(&x, true);
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        assert_eq!(model.layer_names(), vec!["linear", "relu", "linear"]);
    }

    #[test]
    fn params_flat_roundtrip() {
        let model = tiny_model(1);
        let flat = model.params_flat();
        assert_eq!(flat.len(), model.param_count());
        let mut other = tiny_model(2);
        assert_ne!(other.params_flat(), flat);
        other.set_params_flat(&flat);
        assert_eq!(other.params_flat(), flat);
    }

    #[test]
    fn set_params_changes_forward_output() {
        let mut a = tiny_model(3);
        let mut b = tiny_model(4);
        let x = Tensor::ones(&[1, 3]);
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya.data(), yb.data());
        let pa = a.params_flat();
        b.set_params_flat(&pa);
        let yb2 = b.forward(&x, false);
        assert_eq!(ya.data(), yb2.data());
    }

    #[test]
    #[should_panic]
    fn set_params_rejects_wrong_length() {
        let mut model = tiny_model(5);
        model.set_params_flat(&[0.0; 3]);
    }

    #[test]
    fn zero_grads_clears_accumulated_gradients() {
        let mut model = tiny_model(6);
        let x = Tensor::ones(&[2, 3]);
        let y = model.forward(&x, true);
        model.backward(&Tensor::ones(y.dims()));
        assert!(model.grads_flat().iter().any(|&g| g != 0.0));
        model.zero_grads();
        assert!(model.grads_flat().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clone_model_is_deep() {
        let model = tiny_model(7);
        let mut cloned = model.clone_model();
        let flat = model.params_flat();
        // Mutate the clone; original must be unaffected.
        let zeros = vec![0f32; flat.len()];
        cloned.set_params_flat(&zeros);
        assert_eq!(model.params_flat(), flat);
        assert_eq!(cloned.params_flat(), zeros);
    }

    #[test]
    fn arch_name_is_preserved() {
        let model = tiny_model(8);
        assert_eq!(model.arch_name(), "tiny");
        assert_eq!(model.boxed().arch_name(), "tiny");
    }
}
