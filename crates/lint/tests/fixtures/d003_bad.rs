// Fixture: D003 — SeededRng::fork call sites without the audit marker.
// Linted as crate "core".

use fedcross_tensor::SeededRng;

pub fn round_rng(master: &SeededRng, round: u64, client: u64) -> SeededRng {
    // BAD: neither call site below carries the construction-seed audit
    // marker comment.
    let round_rng = master.fork(round);
    round_rng.fork(client + 1)
}

pub fn audited(master: &SeededRng, round: u64) -> SeededRng {
    // fork: construction-seed — derived from the master's construction seed
    // regardless of how much the master has been consumed.
    master.fork(round)
}
