//! Fixture-driven integration tests for the determinism linter.
//!
//! Each `fixtures/d00x_bad.rs` file must demonstrably trip its rule; the
//! tricky fixture (patterns hidden in strings/comments/raw strings) must
//! produce zero findings; and the live workspace tree must pass clean under
//! `--deny-all` semantics.

use std::path::{Path, PathBuf};

use fedcross_lint::{lint_source, lint_tree, Finding, RuleId};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

fn lint_fixture(crate_name: &str, file_name: &str, fixture_name: &str) -> Vec<Finding> {
    lint_source(crate_name, file_name, fixture_name, &fixture(fixture_name))
}

fn count(findings: &[Finding], rule: RuleId) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn d001_fixture_trips_on_all_three_iteration_shapes() {
    let findings = lint_fixture("core", "tracker.rs", "d001_bad.rs");
    // Same-line `.iter()`, multi-line `.values()`, and `for … in &set`.
    assert_eq!(count(&findings, RuleId::D001), 3, "{findings:#?}");
    assert!(findings.iter().all(|f| f.waiver.is_none()));
    // The same file linted as a non-restricted crate is clean.
    assert!(lint_fixture("bench", "tracker.rs", "d001_bad.rs").is_empty());
}

#[test]
fn d002_fixture_trips_on_clock_and_ambient_rng() {
    let findings = lint_fixture("flsim", "timing.rs", "d002_bad.rs");
    // Instant::now, thread_rng, rand::random, SystemTime (the `use
    // std::time::Instant` line itself is not a call site and `Instant` alone
    // is not a pattern, but `SystemTime::now` lines match `SystemTime`).
    assert!(count(&findings, RuleId::D002) >= 4, "{findings:#?}");
    assert!(lint_fixture("bench", "timing.rs", "d002_bad.rs").is_empty());
}

#[test]
fn d003_fixture_trips_only_on_unmarked_forks() {
    let findings = lint_fixture("core", "rng_use.rs", "d003_bad.rs");
    // Two unmarked call sites; the audited one is silent.
    assert_eq!(count(&findings, RuleId::D003), 2, "{findings:#?}");
}

#[test]
fn d004_fixture_trips_on_fma_and_parallel_sum() {
    let findings = lint_fixture("core", "aggregation.rs", "d004_bad.rs");
    assert_eq!(count(&findings, RuleId::D004), 2, "{findings:#?}");
    // Outside kernel scope the same source is clean.
    assert!(lint_fixture("core", "selection.rs", "d004_bad.rs").is_empty());
}

#[test]
fn d005_fixture_trips_on_uncommented_unsafe_only() {
    let findings = lint_fixture("tensor", "raw.rs", "d005_bad.rs");
    assert_eq!(count(&findings, RuleId::D005), 1, "{findings:#?}");
}

#[test]
fn d006_fixture_trips_on_orphan_into_kernel() {
    let findings = lint_fixture("tensor", "ops.rs", "d006_bad.rs");
    assert_eq!(count(&findings, RuleId::D006), 1, "{findings:#?}");
    assert!(findings[0].message.contains("axpy_into"), "{findings:#?}");
}

#[test]
fn tricky_fixture_is_clean_under_the_strictest_scope() {
    // Crate "core" + file "aggregation.rs" arms D001, D002, D003, D004,
    // D005 and D006 simultaneously.
    let findings = lint_fixture("core", "aggregation.rs", "clean_tricky.rs");
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn waiver_with_reason_silences_and_without_reason_does_not() {
    let findings = lint_fixture("core", "gated.rs", "waived.rs");
    assert_eq!(findings.len(), 2, "{findings:#?}");
    let waived: Vec<_> = findings.iter().filter(|f| f.waiver.is_some()).collect();
    let open: Vec<_> = findings.iter().filter(|f| f.waiver.is_none()).collect();
    assert_eq!(waived.len(), 1, "{findings:#?}");
    assert!(waived[0].waiver.as_deref().unwrap().contains("feature gate"));
    assert_eq!(open.len(), 1, "{findings:#?}");
    assert!(open[0].message.contains("missing a reason"));
}

#[test]
fn a001_fixture_trips_through_multiple_call_hops() {
    // "tensor" + "aggregation.rs" makes `pub fn weighted_sum_into` a
    // hot-path root; the fixture allocates one and two hops below it.
    let findings = lint_fixture("tensor", "aggregation.rs", "a_bad.rs");
    let a001: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::A001).collect();
    assert_eq!(a001.len(), 2, "{findings:#?}");
    assert!(
        a001.iter()
            .any(|f| f.message.contains("weighted_sum_into -> accumulate")),
        "one-hop chain missing: {a001:#?}"
    );
    assert!(
        a001.iter()
            .any(|f| f.message.contains("weighted_sum_into -> accumulate -> finalize")),
        "two-hop chain missing: {a001:#?}"
    );
    // The reasoned `alloc: bounded` site and the non-reachable allocating
    // twin contribute nothing; no other rule fires either.
    assert_eq!(findings.len(), 2, "{findings:#?}");
}

#[test]
fn a001_stays_silent_on_the_pooled_fallback_pattern() {
    // `forward_into` calling its allocating twin `forward` is the
    // arena-miss fallback D006 mandates — the twin edge is cut, so the
    // twin's allocations never reach the hot path.
    let findings = lint_fixture("nn", "layer.rs", "a_pooled_ok.rs");
    assert!(findings.is_empty(), "false positives: {findings:#?}");
}

#[test]
fn p001_fixture_trips_on_bare_panics_only() {
    let findings = lint_fixture("core", "state.rs", "p_bad.rs");
    // Bare `.unwrap()`, `.expect("")` and `panic!` are flagged; the
    // marker-covered unwrap and the reasoned expect are not.
    assert_eq!(count(&findings, RuleId::P001), 3, "{findings:#?}");
    assert_eq!(findings.len(), 3, "{findings:#?}");
}

#[test]
fn w_fixture_trips_on_stale_waiver_and_stale_marker() {
    let findings = lint_fixture("core", "cache.rs", "w_stale.rs");
    assert_eq!(count(&findings, RuleId::W001), 1, "{findings:#?}");
    assert_eq!(count(&findings, RuleId::W002), 1, "{findings:#?}");
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.rule == RuleId::W001 && f.message.contains("D002")));
}

#[test]
fn live_tree_passes_deny_all() {
    // crates/lint/ -> crates/ -> workspace root.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let report = lint_tree(&root).expect("lint walk");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "un-waived determinism violations in the tree:\n{}",
        violations
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
