//! Figure 5: learning curves (accuracy vs communication round) of the six
//! methods on the CIFAR-10 stand-in.
//!
//! The default run uses the CNN under β = 0.1 and IID; `--all-settings` adds
//! β = 0.5 and β = 1.0, and `--model resnet|vgg` switches the architecture
//! (the paper's sub-figure rows). Usage:
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig5_learning_curves [--rounds N] [--all-settings] [--model resnet]
//! ```

use fedcross_bench::report::{format_curve, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());
    let model = match args.value::<String>("--model").as_deref() {
        Some("resnet") => ModelSpec::ResNet20,
        Some("vgg") => ModelSpec::Vgg16,
        _ => ModelSpec::Cnn,
    };

    let settings: Vec<Heterogeneity> = if args.flag("--all-settings") {
        vec![
            Heterogeneity::Dirichlet(0.1),
            Heterogeneity::Dirichlet(0.5),
            Heterogeneity::Dirichlet(1.0),
            Heterogeneity::Iid,
        ]
    } else {
        vec![Heterogeneity::Dirichlet(0.1), Heterogeneity::Iid]
    };

    let mut json = Vec::new();
    for heterogeneity in settings {
        let task = TaskSpec::Cifar10(heterogeneity);
        let data = build_task(task, &config, config.seed);
        println!(
            "\nFigure 5 — learning curves, {} with {} ({} rounds, K={})",
            model.label(),
            task.label(),
            config.rounds,
            config.clients_per_round
        );
        println!("  (each series: round:accuracy%)");

        for spec in fedcross_bench::scaled_lineup() {
            let template = build_model(model, &data, config.seed.wrapping_add(1));
            let outcome =
                run_method_on(spec, &data, template, &config, &task.label(), model.label());
            let best = outcome.result.best_accuracy_pct();
            let fluctuation = outcome.result.history.max_fluctuation_last(10) * 100.0;
            println!(
                "  {:<9} best {:>5.1}%  late fluctuation {:>4.1}pp  curve: {}",
                spec.label(),
                best,
                fluctuation,
                format_curve(&outcome.result.history, 8)
            );
            json.push(serde_json::json!({
                "setting": heterogeneity.label(),
                "model": model.label(),
                "method": spec.label(),
                "best_accuracy_pct": best,
                "late_fluctuation_pp": fluctuation,
                "curve": outcome.result.history.accuracy_curve(),
            }));
        }
    }
    write_json("fig5_learning_curves.json", &json);
    println!("\nPaper shape to check: FedCross ends highest with the smallest late fluctuations;");
    println!("with large models it can lag the baselines in the earliest rounds.");
}
