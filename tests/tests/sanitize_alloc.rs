//! End-to-end proof that the engine's `sanitize-alloc` guards are live and
//! green: a counting global allocator forwards every allocation to
//! `fedcross_tensor::alloc_guard::note_alloc`, and a full `Simulation` run
//! — whose steady-state round and eval sections the engine brackets with
//! `AllocGuard`s — must complete without any guard tripping. A non-vacuity
//! check on `regions_entered()` proves the guards actually ran (a build
//! where the feature were silently off would pass trivially otherwise).
//!
//! Compiled only under `--features sanitize-alloc`; without the feature
//! this binary is empty.
//!
//! Guards are thread-local, so multiple `#[test]`s are safe in this binary:
//! a scope only sees its own thread's allocations.

#![cfg(feature = "sanitize-alloc")]

use std::alloc::{GlobalAlloc, Layout, System};

use fedcross_tensor::alloc_guard::{note_alloc, regions_entered, AllocGuard};

/// Forwards every allocation (and growing realloc) to the sanitizer hook.
struct ForwardingAllocator;

unsafe impl GlobalAlloc for ForwardingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static FORWARDER: ForwardingAllocator = ForwardingAllocator;

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::STEADY_LARGE_BYTES;
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::layers::{Dropout, Flatten, Linear, Relu};
use fedcross_nn::Sequential;
use fedcross_tensor::SeededRng;

/// The same ~400 KB probe model round_alloc.rs pins: an order of magnitude
/// above the guard threshold, so any reintroduced full-model allocation in
/// a guarded region trips immediately.
#[test]
fn simulation_runs_green_with_guards_active() {
    let k = 4usize;
    let mut rng = SeededRng::new(7);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 20,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Iid,
        &mut rng,
    );
    let template = Sequential::new("sanitize-probe")
        .push(Flatten::new())
        .push(Linear::new(3 * 16 * 16, 128, &mut rng))
        .push(Relu::new())
        .push(Dropout::new(0.2, &mut rng))
        .push(Linear::new(128, 10, &mut rng))
        .boxed();
    assert!(
        template.param_count() * 4 >= 4 * STEADY_LARGE_BYTES,
        "the probe model must dwarf the guard threshold"
    );

    let config = SimulationConfig {
        rounds: 6,
        clients_per_round: k,
        eval_every: 1,
        eval_batch_size: 16,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 99,
    };
    let mut algorithm = FedCross::new(
        FedCrossConfig {
            alpha: 0.9,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
            ..Default::default()
        },
        template.params_flat(),
        k,
    );

    let before = regions_entered();
    let sim = Simulation::new(config, &data, template.clone_model());
    // Any ≥64 KiB allocation inside a steady round or eval panics the
    // guard, failing this test — completing the run IS the assertion.
    let result = sim.run(&mut algorithm);
    assert_eq!(result.rounds_completed, 6);
    assert!(result.history.records().iter().all(|r| r.test_loss.is_finite()));

    // Non-vacuity: 5 steady rounds + 5 steady evals were guarded.
    let entered = regions_entered() - before;
    assert!(
        entered >= 10,
        "expected at least 10 guarded regions (5 steady rounds + 5 steady evals), saw {entered}"
    );
}

/// The guard must actually see real allocations from the global allocator —
/// not just the direct `note_alloc` calls the unit tests drive.
#[test]
fn guard_records_real_allocations() {
    let g = AllocGuard::enter("probe-small", 1 << 20);
    let small = vec![0u8; 512];
    drop(small);
    let s = g.finish();
    assert!(s.allocations > 0, "the forwarding allocator must report into the guard");
    assert_eq!(s.violations, 0, "512 B is below a 1 MiB threshold");

    let g = AllocGuard::enter("probe-large", 64 * 1024);
    let large = vec![0u8; 256 * 1024];
    drop(large);
    let s = g.finish();
    assert_eq!(s.violations, 1, "one 256 KiB allocation must be recorded");
    assert!(s.worst >= 256 * 1024);
}
