//! Offline shim for `serde_json`.
//!
//! Prints and parses standard JSON over the value tree defined by the
//! workspace's `serde` shim. Output matches real serde_json conventions:
//! two-space pretty indentation, integers without a decimal point, shortest
//! round-trip float formatting, and standard string escapes.

pub use serde::{Error, Value};

/// Serializes `value` into a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` into a pretty JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(serde::to_value(value))
}

/// Parses a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

/// Builds a [`Value`] in place: `json!(null)`, `json!([a, b])`, and
/// `json!({ "key": expr, ... })` where every value position is an expression
/// (nested objects are written as nested `json!` calls, as the workspace
/// already does).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(clippy::vec_init_then_push)]
        let entries: Vec<(String, $crate::Value)> = {
            let mut entries: Vec<(String, $crate::Value)> = Vec::new();
            $crate::json_object_entries!(entries; $($body)*);
            entries
        };
        $crate::Value::Object(entries)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $($crate::to_value(&$elem).expect("infallible")),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("infallible") };
}

/// Internal muncher for `json!` object bodies (handles `null` values).
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($entries:ident;) => {};
    ($entries:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::Value::Null));
        $crate::json_object_entries!($entries; $($($rest)*)?);
    };
    ($entries:ident; $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $entries.push(($key.to_string(), $crate::to_value(&$val).expect("infallible")));
        $crate::json_object_entries!($entries; $($($rest)*)?);
    };
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, ('[', ']'), |out, item, indent, depth| {
            write_value(out, item, indent, depth);
        }),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |out, (key, val), indent, depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    write_item: F,
) where
    F: Fn(&mut String, I::Item, Option<usize>, usize),
{
    out.push(brackets.0);
    let count = items.len();
    if count == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < count {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Real serde_json refuses non-finite numbers; emit null like its
        // lossy writers do.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The i64 fast path below would print -0.0 as "0" and lose the sign
        // bit; real serde_json prints "-0.0", which parses back exactly.
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid codepoint"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid utf8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!("bad object at offset {}", self.pos)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = json!({
            "name": "fedcross",
            "alpha": 0.99f32,
            "rounds": 2000usize,
            "curve": vec![(0usize, 0.1f32), (10, 0.4)],
            "middleware": Some(vec![vec![1.0f32, 2.0], vec![3.0, 4.0]]),
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&42usize).unwrap(), "42");
        assert_eq!(to_string(&0.5f32).unwrap(), "0.5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and \tcontrol".to_string();
        let text = to_string(&original).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn corrupt_input_is_an_error() {
        assert!(from_str::<Value>("not json at all").is_err());
        assert!(from_str::<Value>("{\"unterminated\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }

    #[test]
    fn pretty_output_is_indented_like_serde_json() {
        let v = json!({ "a": 1usize, "b": vec![1usize, 2] });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact() {
        let v = json!({ "empty_list": Vec::<usize>::new() });
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"empty_list\": []\n}");
    }

    #[test]
    fn unicode_and_u_escapes_parse() {
        let back: String = from_str("\"caf\\u00e9 \\u2713\"").unwrap();
        assert_eq!(back, "café ✓");
    }
}
