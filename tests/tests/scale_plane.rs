//! Population-scale pins for the sharded lazy client data plane.
//!
//! PR 9 replaced the eager `Vec<Dataset>` federation with
//! [`fedcross_data::ClientDataSource`] + [`fedcross_data::ShardPlane`]: client
//! shards are pure functions of `(task_seed, client_id)`, materialised lazily
//! through a bounded LRU cache fronted by a background prefetcher. This
//! binary pins the three claims that make that refactor safe:
//!
//! 1. **Flat memory at population scale.** A 100 000-client run materialises
//!    at most `capacity + prefetch_depth` shards at once — pinned twice, via
//!    the plane's own resident-set counter *and* via a live-byte counting
//!    global allocator (the structural counter alone could be circular). The
//!    eager equivalent would hold ~7 GB of shards; the pinned budget is a few
//!    megabytes.
//! 2. **Bitwise equivalence.** For every registered [`AlgorithmSpec`], the
//!    sharded engine reproduces the eager engine's trajectory fingerprint
//!    exactly — per-round metrics bits, communication counters and final
//!    global model bits — including under a cache small enough that shards
//!    are evicted and re-materialised mid-run.
//! 3. **Eviction is a bitwise no-op.** A shard checked out after eviction is
//!    a fresh allocation with identical bits.
//!
//! Shards in the scale phase are sized to cross [`LARGE_BYTES`] (24 samples
//! x 3x16x16 f32 = 72 KiB) while the tiny model, its activations and all
//! engine bookkeeping stay below it, so the live-byte counter sees shard
//! traffic and nothing else.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Allocations at or above this size count toward the live-byte pin. One
/// scale-phase shard's feature tensor (24 x 3 x 16 x 16 f32 = 73 728 B) is
/// above it; the scale-phase model (~5 K params) and every per-round
/// temporary are below it.
const LARGE_BYTES: usize = 64 * 1024;

struct LiveBytesAllocator;

/// Bytes currently held by live allocations of at least [`LARGE_BYTES`].
static LIVE_LARGE: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE_LARGE`].
static PEAK_LARGE: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    if size >= LARGE_BYTES {
        let live = LIVE_LARGE.fetch_add(size, Ordering::Relaxed) + size;
        PEAK_LARGE.fetch_max(live, Ordering::Relaxed);
    }
}

fn note_dealloc(size: usize) {
    if size >= LARGE_BYTES {
        LIVE_LARGE.fetch_sub(size, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for LiveBytesAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_dealloc(layout.size());
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: LiveBytesAllocator = LiveBytesAllocator;

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_bench::determinism::Fnv1a;
use fedcross_data::federated::SynthCifar10Config;
use fedcross_data::{ClientDataSource, Heterogeneity, ShardPlane, ShardPlaneConfig, SynthTaskSource};
use fedcross_flsim::{
    DeviceModel, FaultPlan, LocalTrainConfig, RoundPolicy, Simulation, SimulationConfig,
};
use fedcross_nn::layers::{Flatten, Linear, Relu};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::{Model, Sequential};
use fedcross_tensor::SeededRng;

/// Population of the flat-memory phase. Eagerly materialised this would be
/// ~7 GB of shard tensors; the lazy plane must finish inside
/// [`SCALE_BUDGET_BYTES`].
const SCALE_CLIENTS: usize = 100_000;
const SCALE_K: usize = 10;
const SCALE_ROUNDS: usize = 6;
const SCALE_CAPACITY: usize = 16;
const SCALE_PREFETCH: usize = 4;
/// One scale-phase shard's feature tensor.
const SHARD_BYTES: usize = 24 * 3 * 16 * 16 * 4;
/// Live-byte ceiling for the whole scale run: the plane's resident-set bound
/// (`capacity + prefetch_depth` shards) plus the round's `K` checked-out
/// shard refs (an `Arc` can outlive its cache slot until the round ends),
/// doubled for transient generation buffers on the demand and prefetch
/// threads. Observed peak is ~33 shards; eager would be 100 000.
const SCALE_BUDGET_BYTES: usize = (SCALE_CAPACITY + SCALE_PREFETCH + SCALE_K) * SHARD_BYTES * 2;

/// The scale-phase model is a small MLP, deliberately conv-free: a conv
/// layer's im2col scratch (batch x C_in*k^2 x H*W) crosses [`LARGE_BYTES`]
/// and would drown the shard signal in worker-arena noise. Every buffer this
/// model touches — weights (768x16 f32 = 48 KiB), gradients, momentum,
/// activations — stays below the threshold.
fn scale_model(rng: &mut SeededRng) -> Box<dyn Model> {
    Sequential::new("scale-probe")
        .push(Flatten::new())
        .push(Linear::new(3 * 16 * 16, 16, rng))
        .push(Relu::new())
        .push(Linear::new(16, 10, rng))
        .boxed()
}

fn equivalence_model() -> Box<dyn Model> {
    let mut rng = SeededRng::new(7);
    cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    )
}

fn equivalence_source() -> SynthTaskSource {
    SynthTaskSource::cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 25,
            test_samples: 60,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        7,
    )
}

fn equivalence_config() -> SimulationConfig {
    SimulationConfig {
        rounds: 2,
        clients_per_round: 3,
        eval_every: 1,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 11,
    }
}

fn is_buffered(spec: AlgorithmSpec) -> bool {
    matches!(
        spec,
        AlgorithmSpec::BufferedFedAvg { .. } | AlgorithmSpec::BufferedFedCross { .. }
    )
}

/// Runs `spec` on the equivalence task over `sim` (already bound to either
/// the eager federation or a shard plane) and fingerprints the trajectory
/// exactly as the schedule-invariance sanitizer does.
fn run_fingerprint(spec: AlgorithmSpec, mut sim: Simulation<'_>) -> u64 {
    let init = sim.template().params_flat();
    let mut algorithm = build_algorithm(spec, init, 6, 3);
    if is_buffered(spec) {
        sim = sim
            .with_round_policy(RoundPolicy::Buffered {
                goal_k: 2,
                max_staleness: 4,
            })
            .with_devices(DeviceModel::two_tier(0.34, 3.0, 5))
            .with_faults(FaultPlan {
                stall_prob: 0.2,
                ..Default::default()
            });
    }
    let result = sim.run(algorithm.as_mut());

    let mut hash = Fnv1a::new();
    for record in result.history.records() {
        hash.write_u64(record.round as u64);
        hash.write_f32(record.accuracy);
        hash.write_f32(record.test_loss);
        hash.write_f32(record.train_loss);
    }
    hash.write_u64(result.comm.model_download);
    hash.write_u64(result.comm.model_upload);
    hash.write_u64(result.comm.extra_download);
    hash.write_u64(result.comm.extra_upload);
    hash.write_u64(result.comm.client_contacts);
    for &w in &algorithm.global_params() {
        hash.write_f32(w);
    }
    hash.finish()
}

// NOTE: this binary contains exactly one #[test] so no concurrent test
// thread can pollute the global allocation counters.
#[test]
fn population_scale_runs_flat_and_bitwise_match_eager() {
    // ------------------------------------------------------------------
    // Phase 1: 100k-client run under the live-byte pin.
    // ------------------------------------------------------------------
    let source = SynthTaskSource::cifar10(
        &SynthCifar10Config {
            num_clients: SCALE_CLIENTS,
            samples_per_client: 24,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.3),
        42,
    );
    let plane = ShardPlane::new(
        Arc::new(source),
        ShardPlaneConfig {
            capacity: SCALE_CAPACITY,
            prefetch_depth: SCALE_PREFETCH,
        },
    );
    let mut rng = SeededRng::new(3);
    let template = scale_model(&mut rng);
    let config = SimulationConfig {
        rounds: SCALE_ROUNDS,
        clients_per_round: SCALE_K,
        eval_every: SCALE_ROUNDS,
        eval_batch_size: 16,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 8,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 17,
    };
    let init = template.params_flat();
    let mut algorithm = build_algorithm(AlgorithmSpec::FedAvg, init, SCALE_CLIENTS, SCALE_K);

    // Everything allocated so far (test set, model, plane) is the baseline;
    // the pin is on what the *run* adds on top of it.
    let baseline = LIVE_LARGE.load(Ordering::Relaxed);
    PEAK_LARGE.store(baseline, Ordering::Relaxed);

    let result = Simulation::new_sharded(config, &plane, template).run(algorithm.as_mut());
    assert!(!result.history.is_empty());

    let peak_delta = PEAK_LARGE.load(Ordering::Relaxed).saturating_sub(baseline);
    assert!(
        peak_delta <= SCALE_BUDGET_BYTES,
        "100k-client run peaked at {peak_delta} live large bytes, \
         budget is {SCALE_BUDGET_BYTES} (eager equivalent: ~{} bytes)",
        SCALE_CLIENTS * SHARD_BYTES
    );

    let stats = plane.stats();
    assert!(
        stats.peak_resident <= SCALE_CAPACITY + SCALE_PREFETCH,
        "peak resident shards {} exceeded capacity {} + prefetch depth {}",
        stats.peak_resident,
        SCALE_CAPACITY,
        SCALE_PREFETCH
    );
    // 6 rounds x 10 fresh clients out of 100k overflow a 16-slot cache.
    assert!(
        stats.evictions > 0,
        "scale run never evicted; the cache bound was not exercised"
    );
    assert!(
        stats.misses + stats.prefetched >= SCALE_K as u64,
        "scale run materialised almost nothing: {stats:?}"
    );

    // ------------------------------------------------------------------
    // Phase 2: evict-then-rematerialise is a bitwise no-op.
    // ------------------------------------------------------------------
    let probe = plane.shard(99_999);
    let bits: Vec<u32> = probe.features().data().iter().map(|v| v.to_bits()).collect();
    drop(probe);
    for client in 0..SCALE_CAPACITY + 1 {
        // Flood the LRU so client 99 999 is evicted.
        plane.shard(client);
    }
    let again = plane.shard(99_999);
    let again_bits: Vec<u32> = again.features().data().iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits, again_bits, "re-materialised shard changed bits");

    // ------------------------------------------------------------------
    // Phase 3: lazy-vs-eager bitwise equivalence for every registered
    // algorithm, with and without mid-run eviction.
    // ------------------------------------------------------------------
    let source = equivalence_source();
    let eager = source.materialize_all();
    let source: Arc<dyn ClientDataSource> = Arc::new(source);
    let mut evicting_total = 0u64;
    for spec in AlgorithmSpec::registered() {
        let fp_eager = run_fingerprint(
            spec,
            Simulation::new(equivalence_config(), &eager, equivalence_model()),
        );

        // A 2-slot cache under K = 3 evicts and re-materialises every round.
        let evicting = ShardPlane::new(
            Arc::clone(&source),
            ShardPlaneConfig {
                capacity: 2,
                prefetch_depth: 2,
            },
        );
        let fp_evicting = run_fingerprint(
            spec,
            Simulation::new_sharded(equivalence_config(), &evicting, equivalence_model()),
        );

        // A roomy cache never evicts and runs without a prefetch worker.
        let roomy = ShardPlane::new(
            Arc::clone(&source),
            ShardPlaneConfig {
                capacity: 6,
                prefetch_depth: 0,
            },
        );
        let fp_roomy = run_fingerprint(
            spec,
            Simulation::new_sharded(equivalence_config(), &roomy, equivalence_model()),
        );

        assert_eq!(
            fp_eager,
            fp_evicting,
            "{}: sharded (evicting) trajectory diverged from eager",
            spec.label()
        );
        assert_eq!(
            fp_eager,
            fp_roomy,
            "{}: sharded (roomy) trajectory diverged from eager",
            spec.label()
        );
        evicting_total += evicting.stats().evictions;
        assert_eq!(roomy.stats().evictions, 0, "{}: roomy cache evicted", spec.label());
    }
    assert!(
        evicting_total > 0,
        "equivalence phase never evicted; the evicting runs were vacuous"
    );
}
