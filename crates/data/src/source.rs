//! Lazily materialised client data sources.
//!
//! [`FederatedDataset`] materialises every client's shard up front, which caps
//! the population at what RAM holds. This module introduces the sharded
//! alternative: a [`ClientDataSource`] describes a federation whose shards are
//! *pure functions of the client id* — `materialize(client)` derives a
//! client-private RNG from the task's construction seed (`base.fork(...)`,
//! never from consumed state), so evicting and re-materialising a shard is a
//! bitwise no-op. That single property is what lets the engine run 10^5–10^6
//! client federations while keeping only a bounded working set resident (see
//! [`crate::shard::ShardPlane`]) without giving up the workspace's
//! bitwise-trajectory guarantees.
//!
//! Two families of implementations live here:
//!
//! * [`SynthTaskSource`] — lazy versions of all five synthetic benchmark
//!   tasks. Per-client label skew that the eager path expressed as a
//!   global-pool Dirichlet *partition* is expressed here as a per-client
//!   Dirichlet class *distribution*, so a shard never needs its neighbours.
//! * [`EagerSource`] — an adapter wrapping an existing [`FederatedDataset`];
//!   `materialize` is an `Arc` clone, making the sharded engine a strict
//!   superset of the eager one.
//!
//! Determinism contract: every RNG used during materialisation is forked from
//! the *construction seed* of the source (`SeededRng::new(task_seed)`), keyed
//! by disjoint stream domains below. No method takes `&mut self`; a source is
//! a frozen description, safe to share across threads.

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::federated::{
    FederatedDataset, SynthCifar10Config, SynthCifar100Config, SynthFemnistConfig,
    SynthSent140Config, SynthShakespeareConfig,
};
use crate::partition::Heterogeneity;
use crate::synth::images::SynthImages;
use crate::synth::text::{SynthNextChar, SynthSentiment};
use fedcross_tensor::SeededRng;

/// Stream id of the shared generator (prototypes / base language).
const GENERATOR_STREAM: u64 = 1;
/// Stream id of the held-out test set.
const TEST_STREAM: u64 = 2;
/// Base of the per-client materialisation stream domain: client `i` draws
/// from stream `CLIENT_STREAM_BASE + i`. Kept far above the small scalar
/// streams so the domains never collide.
const CLIENT_STREAM_BASE: u64 = 1 << 32;
/// Base of the per-persona test-mixture stream domain (text tasks).
const TEST_PERSONA_STREAM_BASE: u64 = 1 << 33;
/// Number of personas mixed into a text task's test set. Capped so test-set
/// construction stays O(1) in the population size.
const TEST_PERSONA_CAP: usize = 64;

/// A federation whose client shards can be synthesised on demand.
///
/// `materialize(client)` must be a pure function of `(source, client)`: two
/// calls with the same id return bitwise-identical datasets, regardless of
/// what was materialised in between. All shards share the test set's class
/// space.
pub trait ClientDataSource: Send + Sync {
    /// Task name (e.g. `"synth-cifar10-lazy[beta=0.5]"`).
    fn name(&self) -> &str;

    /// Number of clients in the federation.
    fn num_clients(&self) -> usize;

    /// Number of classes in the task.
    fn num_classes(&self) -> usize;

    /// The held-out global test set (always resident).
    fn test_set(&self) -> &Dataset;

    /// Synthesises client `client`'s shard. Pure: same id ⇒ same bits.
    fn materialize(&self, client: usize) -> Dataset;

    /// Shared-ownership form of [`ClientDataSource::materialize`]. Sources
    /// that already hold their shards (the eager adapter) override this to
    /// hand out an `Arc` clone instead of a deep copy.
    fn shard(&self, client: usize) -> Arc<Dataset> {
        // alloc: pooled — shard-cache miss materialization; steady rounds hit the cache
        Arc::new(self.materialize(client))
    }

    /// Tokens mixed into the simulation's config fingerprint so checkpoints
    /// refuse to resume under a different population shape. Must cover the
    /// population size and everything that shapes shard contents.
    fn fingerprint_tokens(&self) -> Vec<u64>;

    /// Materialises the whole federation eagerly. Intended for equivalence
    /// tests and small populations only — this is exactly the O(population)
    /// memory footprint the sharded plane exists to avoid.
    fn materialize_all(&self) -> FederatedDataset {
        let clients = (0..self.num_clients())
            .map(|client| self.materialize(client))
            .collect();
        FederatedDataset::from_parts(self.name().to_string(), clients, self.test_set().clone())
    }
}

/// How a lazy image task assigns classes to a client's samples.
#[derive(Debug, Clone, Copy)]
enum ImageSkew {
    /// Uniform class draw per sample.
    Iid,
    /// Per-client class distribution drawn from `Dir(beta)`.
    Dirichlet(f32),
}

/// The per-task generator a [`SynthTaskSource`] synthesises shards from.
#[derive(Debug, Clone)]
enum Generator {
    /// CIFAR-10/100 stand-ins: label-skew via per-client class distributions.
    Images { gen: SynthImages, skew: ImageSkew },
    /// FEMNIST stand-in: per-writer style offset + class subset.
    Femnist {
        gen: SynthImages,
        classes_per_client: usize,
        style_strength: f32,
    },
    /// Shakespeare stand-in: per-role transition table.
    NextChar(SynthNextChar),
    /// Sent140 stand-in: per-user topic bias.
    Sentiment(SynthSentiment),
}

/// A lazy synthetic benchmark task: shards are synthesised per client from
/// `(task_seed, client_id)` and never stored here.
#[derive(Debug, Clone)]
pub struct SynthTaskSource {
    name: String,
    kind_tag: u64,
    task_seed: u64,
    base: SeededRng,
    num_clients: usize,
    samples_per_client: usize,
    num_classes: usize,
    generator: Generator,
    test: Dataset,
}

impl SynthTaskSource {
    fn base_rng(task_seed: u64) -> SeededRng {
        SeededRng::new(task_seed)
    }

    /// Lazy CIFAR-10 stand-in over `config.num_clients` clients.
    pub fn cifar10(config: &SynthCifar10Config, het: Heterogeneity, task_seed: u64) -> Self {
        Self::image_task(
            "synth-cifar10-lazy",
            1,
            SynthImages::new(
                config.image,
                &mut Self::base_rng(task_seed).fork(GENERATOR_STREAM), // fork: construction-seed
            ),
            config.num_clients,
            config.samples_per_client,
            config.test_samples,
            het,
            task_seed,
        )
    }

    /// Lazy CIFAR-100 stand-in.
    pub fn cifar100(config: &SynthCifar100Config, het: Heterogeneity, task_seed: u64) -> Self {
        Self::image_task(
            "synth-cifar100-lazy",
            2,
            SynthImages::new(
                config.image,
                &mut Self::base_rng(task_seed).fork(GENERATOR_STREAM), // fork: construction-seed
            ),
            config.num_clients,
            config.samples_per_client,
            config.test_samples,
            het,
            task_seed,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn image_task(
        name: &str,
        kind_tag: u64,
        gen: SynthImages,
        num_clients: usize,
        samples_per_client: usize,
        test_samples: usize,
        het: Heterogeneity,
        task_seed: u64,
    ) -> Self {
        assert!(num_clients > 0 && samples_per_client > 0);
        let base = Self::base_rng(task_seed);
        let num_classes = gen.config().num_classes;
        let test = gen.generate(
            test_samples.max(1),
            &mut base.fork(TEST_STREAM), // fork: construction-seed
        );
        let skew = match het {
            Heterogeneity::Iid => ImageSkew::Iid,
            Heterogeneity::Dirichlet(beta) => {
                assert!(beta > 0.0, "beta must be positive");
                ImageSkew::Dirichlet(beta)
            }
        };
        Self {
            name: format!("{name}[{}]", het.label()),
            kind_tag,
            task_seed,
            base,
            num_clients,
            samples_per_client,
            num_classes,
            generator: Generator::Images { gen, skew },
            test,
        }
    }

    /// Lazy FEMNIST stand-in: per-client writer style + class subset, the
    /// same per-client construction as [`FederatedDataset::synth_femnist`]
    /// but derived from `(task_seed, client_id)` on demand.
    pub fn femnist(config: &SynthFemnistConfig, task_seed: u64) -> Self {
        assert!(config.num_clients > 0 && config.samples_per_client > 0);
        assert!(config.classes_per_client >= 1);
        let base = Self::base_rng(task_seed);
        let gen = SynthImages::new(
            config.image,
            &mut base.fork(GENERATOR_STREAM), // fork: construction-seed
        );
        let num_classes = config.image.num_classes;
        let test = gen.generate(
            config.test_samples.max(1),
            &mut base.fork(TEST_STREAM), // fork: construction-seed
        );
        Self {
            name: "synth-femnist-lazy".to_string(),
            kind_tag: 3,
            task_seed,
            base,
            num_clients: config.num_clients,
            samples_per_client: config.samples_per_client,
            num_classes,
            generator: Generator::Femnist {
                gen,
                classes_per_client: config.classes_per_client,
                style_strength: config.style_strength,
            },
            test,
        }
    }

    /// Lazy Shakespeare stand-in: per-role next-character shards.
    pub fn shakespeare(config: &SynthShakespeareConfig, task_seed: u64) -> Self {
        assert!(config.num_clients > 0 && config.samples_per_client > 0);
        let base = Self::base_rng(task_seed);
        let corpus = SynthNextChar::new(
            config.text,
            &mut base.fork(GENERATOR_STREAM), // fork: construction-seed
        );
        let num_classes = config.text.vocab;
        let test = Self::text_test_set(
            &base,
            config.num_clients,
            config.test_samples,
            |persona, n, rng| corpus.generate_for_client(n, persona, rng),
        );
        Self {
            name: "synth-shakespeare-lazy".to_string(),
            kind_tag: 4,
            task_seed,
            base,
            num_clients: config.num_clients,
            samples_per_client: config.samples_per_client,
            num_classes,
            generator: Generator::NextChar(corpus),
            test,
        }
    }

    /// Lazy Sent140 stand-in: per-user sentiment shards.
    pub fn sent140(config: &SynthSent140Config, task_seed: u64) -> Self {
        assert!(config.num_clients > 0 && config.samples_per_client > 0);
        let base = Self::base_rng(task_seed);
        let corpus = SynthSentiment::new(config.text);
        let test = Self::text_test_set(
            &base,
            config.num_clients,
            config.test_samples,
            |persona, n, rng| corpus.generate_for_client(n, persona, rng),
        );
        Self {
            name: "synth-sent140-lazy".to_string(),
            kind_tag: 5,
            task_seed,
            base,
            num_clients: config.num_clients,
            samples_per_client: config.samples_per_client,
            num_classes: 2,
            generator: Generator::Sentiment(corpus),
            test,
        }
    }

    /// Test mixture over at most [`TEST_PERSONA_CAP`] personas, so building
    /// the test set stays O(1) in the population size (the eager text tasks
    /// mix over *every* client — fine at 10^2 clients, fatal at 10^6).
    fn text_test_set(
        base: &SeededRng,
        num_clients: usize,
        test_samples: usize,
        generate: impl Fn(u64, usize, &mut SeededRng) -> Dataset,
    ) -> Dataset {
        let personas = num_clients.min(TEST_PERSONA_CAP);
        let per_persona = (test_samples / personas).max(1);
        let parts: Vec<Dataset> = (0..personas)
            .map(|persona| {
                generate(
                    persona as u64,
                    per_persona,
                    &mut base.fork(TEST_PERSONA_STREAM_BASE + persona as u64), // fork: construction-seed
                )
            })
            .collect();
        let refs: Vec<&Dataset> = parts.iter().collect();
        Dataset::concat(&refs)
    }

    /// The seed this source was constructed from.
    pub fn task_seed(&self) -> u64 {
        self.task_seed
    }
}

impl ClientDataSource for SynthTaskSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn test_set(&self) -> &Dataset {
        &self.test
    }

    fn materialize(&self, client: usize) -> Dataset {
        assert!(client < self.num_clients, "client {client} out of range");
        let mut rng = self.base.fork(CLIENT_STREAM_BASE + client as u64); // fork: construction-seed
        let n = self.samples_per_client;
        match &self.generator {
            Generator::Images { gen, skew } => match skew {
                ImageSkew::Iid => gen.generate(n, &mut rng),
                ImageSkew::Dirichlet(beta) => {
                    let class_weights = rng.dirichlet(self.num_classes, *beta);
                    gen.generate_weighted(n, &class_weights, &mut rng)
                }
            },
            Generator::Femnist {
                gen,
                classes_per_client,
                style_strength,
            } => {
                let style = gen.style_pattern(*style_strength, &mut rng);
                let class_subset = rng.sample_without_replacement(
                    self.num_classes,
                    (*classes_per_client).min(self.num_classes),
                );
                gen.generate_with(n, Some(&class_subset), Some(&style), &mut rng)
            }
            Generator::NextChar(corpus) => corpus.generate_for_client(n, client as u64, &mut rng),
            Generator::Sentiment(corpus) => corpus.generate_for_client(n, client as u64, &mut rng),
        }
    }

    fn fingerprint_tokens(&self) -> Vec<u64> {
        let skew_token = match &self.generator {
            Generator::Images { skew, .. } => match skew {
                ImageSkew::Iid => 0,
                ImageSkew::Dirichlet(beta) => u64::from(beta.to_bits()),
            },
            Generator::Femnist {
                classes_per_client,
                style_strength,
                ..
            } => (*classes_per_client as u64) << 32 | u64::from(style_strength.to_bits()),
            Generator::NextChar(_) | Generator::Sentiment(_) => 0,
        };
        vec![
            self.kind_tag,
            self.task_seed,
            self.num_clients as u64,
            self.samples_per_client as u64,
            self.num_classes as u64,
            self.test.len() as u64,
            skew_token,
        ]
    }
}

/// Eager adapter: wraps a fully materialised [`FederatedDataset`] so existing
/// tasks can ride the sharded engine unchanged. `shard()` is an `Arc` clone.
#[derive(Debug, Clone)]
pub struct EagerSource {
    name: String,
    clients: Vec<Arc<Dataset>>,
    test: Dataset,
    num_classes: usize,
}

impl EagerSource {
    /// Takes ownership of `data`, wrapping each client shard in an `Arc`.
    pub fn new(data: FederatedDataset) -> Self {
        let num_classes = data.num_classes();
        let (name, clients, test) = data.into_parts();
        Self {
            name,
            clients: clients.into_iter().map(Arc::new).collect(),
            test,
            num_classes,
        }
    }
}

impl ClientDataSource for EagerSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn test_set(&self) -> &Dataset {
        &self.test
    }

    fn materialize(&self, client: usize) -> Dataset {
        // alloc: pooled — shard-cache miss materialization; steady rounds hit the cache
        (*self.clients[client]).clone()
    }

    fn shard(&self, client: usize) -> Arc<Dataset> {
        Arc::clone(&self.clients[client])
    }

    fn fingerprint_tokens(&self) -> Vec<u64> {
        let mut tokens = vec![
            0, // kind tag: eager adapter
            self.clients.len() as u64,
            self.num_classes as u64,
            self.test.len() as u64,
        ];
        tokens.extend(self.clients.iter().map(|c| c.len() as u64));
        tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federated::SynthCifar10Config;

    fn small_source() -> SynthTaskSource {
        SynthTaskSource::cifar10(
            &SynthCifar10Config {
                num_clients: 12,
                samples_per_client: 8,
                test_samples: 30,
                ..Default::default()
            },
            Heterogeneity::Dirichlet(0.5),
            42,
        )
    }

    #[test]
    fn materialize_is_a_pure_function_of_the_client_id() {
        let source = small_source();
        let a = source.materialize(5);
        // Materialise other clients in between: must not disturb client 5.
        let _ = source.materialize(0);
        let _ = source.materialize(11);
        let b = source.materialize(5);
        assert_eq!(a.features().data(), b.features().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn distinct_clients_get_distinct_shards() {
        let source = small_source();
        let a = source.materialize(0);
        let b = source.materialize(1);
        assert_ne!(a.features().data(), b.features().data());
    }

    #[test]
    fn dirichlet_source_is_label_skewed_vs_iid() {
        let config = SynthCifar10Config {
            num_clients: 16,
            samples_per_client: 40,
            test_samples: 10,
            ..Default::default()
        };
        let skew_of = |source: &SynthTaskSource| {
            let counts: Vec<Vec<usize>> = (0..source.num_clients())
                .map(|c| source.materialize(c).class_counts())
                .collect();
            crate::partition::skew_score(&counts)
        };
        let iid = SynthTaskSource::cifar10(&config, Heterogeneity::Iid, 7);
        let dir = SynthTaskSource::cifar10(&config, Heterogeneity::Dirichlet(0.1), 7);
        assert!(
            skew_of(&dir) > skew_of(&iid) + 0.15,
            "Dirichlet lazy shards should be more skewed than IID"
        );
    }

    #[test]
    fn all_five_tasks_materialize_consistent_shards() {
        let sources: Vec<Box<dyn ClientDataSource>> = vec![
            Box::new(SynthTaskSource::cifar10(
                &SynthCifar10Config {
                    num_clients: 4,
                    samples_per_client: 6,
                    test_samples: 20,
                    ..Default::default()
                },
                Heterogeneity::Dirichlet(0.5),
                3,
            )),
            Box::new(SynthTaskSource::cifar100(
                &SynthCifar100Config {
                    num_clients: 4,
                    samples_per_client: 6,
                    test_samples: 20,
                    ..Default::default()
                },
                Heterogeneity::Iid,
                3,
            )),
            Box::new(SynthTaskSource::femnist(
                &SynthFemnistConfig {
                    num_clients: 4,
                    samples_per_client: 6,
                    test_samples: 20,
                    classes_per_client: 5,
                    ..Default::default()
                },
                3,
            )),
            Box::new(SynthTaskSource::shakespeare(
                &SynthShakespeareConfig {
                    num_clients: 4,
                    samples_per_client: 6,
                    test_samples: 20,
                    ..Default::default()
                },
                3,
            )),
            Box::new(SynthTaskSource::sent140(
                &SynthSent140Config {
                    num_clients: 4,
                    samples_per_client: 6,
                    test_samples: 20,
                    ..Default::default()
                },
                3,
            )),
        ];
        for source in &sources {
            for client in 0..source.num_clients() {
                let shard = source.materialize(client);
                assert_eq!(shard.num_classes(), source.num_classes(), "{}", source.name());
                assert_eq!(shard.len(), 6, "{}", source.name());
                let again = source.materialize(client);
                assert_eq!(
                    shard.features().data(),
                    again.features().data(),
                    "{} client {client} must re-materialise bitwise",
                    source.name()
                );
            }
            assert!(!source.test_set().is_empty());
        }
    }

    #[test]
    fn femnist_lazy_clients_use_restricted_class_subsets() {
        let source = SynthTaskSource::femnist(
            &SynthFemnistConfig {
                num_clients: 8,
                samples_per_client: 30,
                test_samples: 40,
                classes_per_client: 5,
                ..Default::default()
            },
            4,
        );
        for client in 0..source.num_clients() {
            let counts = source.materialize(client).class_counts();
            let used = counts.iter().filter(|&&c| c > 0).count();
            assert!(used <= 5, "client uses {used} classes, expected <= 5");
        }
    }

    #[test]
    fn materialize_all_round_trips_through_eager_source() {
        let source = small_source();
        let eager = EagerSource::new(source.materialize_all());
        assert_eq!(eager.num_clients(), source.num_clients());
        assert_eq!(eager.num_classes(), source.num_classes());
        for client in 0..source.num_clients() {
            let lazy = source.materialize(client);
            let kept = eager.materialize(client);
            assert_eq!(lazy.features().data(), kept.features().data());
            assert_eq!(lazy.labels(), kept.labels());
        }
        // Eager `shard` is shared ownership, not a copy.
        let a = eager.shard(0);
        let b = eager.shard(0);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn fingerprint_tokens_cover_population_shape() {
        let a = small_source().fingerprint_tokens();
        let mut config = SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 8,
            test_samples: 30,
            ..Default::default()
        };
        config.num_clients = 13;
        let b = SynthTaskSource::cifar10(&config, Heterogeneity::Dirichlet(0.5), 42)
            .fingerprint_tokens();
        assert_ne!(a, b, "population size must change the fingerprint");
        let c = small_source();
        let c = SynthTaskSource::cifar10(
            &SynthCifar10Config {
                num_clients: 12,
                samples_per_client: 8,
                test_samples: 30,
                ..Default::default()
            },
            Heterogeneity::Dirichlet(0.1),
            c.task_seed(),
        )
        .fingerprint_tokens();
        assert_ne!(a, c, "skew must change the fingerprint");
    }

    #[test]
    #[should_panic]
    fn materialize_rejects_out_of_range_client() {
        let source = small_source();
        let _ = source.materialize(12);
    }
}
