//! Criterion micro-benchmarks of the extension kernels: upload compression
//! (quantization / sparsification), differential-privacy clipping and noising,
//! and secure-aggregation masking. These are the per-upload costs a production
//! deployment pays on top of the paper's plain pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross_compress::{Compressor, RandK, TopK, UniformQuantizer};
use fedcross_privacy::clipping::clipped_delta;
use fedcross_privacy::mechanism::add_gaussian_noise;
use fedcross_privacy::secure_agg::PairwiseMasker;
use fedcross_tensor::SeededRng;

fn make_delta(dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = SeededRng::new(seed);
    (0..dim).map(|_| rng.normal_with(0.0, 0.1)).collect()
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("upload_compression");
    group.sample_size(20);
    for &dim in &[10_000usize, 100_000] {
        let delta = make_delta(dim, 3);
        group.bench_with_input(BenchmarkId::new("quantize_8bit", dim), &dim, |b, _| {
            let quantizer = UniformQuantizer::new(8, true);
            let mut rng = SeededRng::new(4);
            b.iter(|| black_box(quantizer.compress(&delta, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("quantize_decode_8bit", dim), &dim, |b, _| {
            let quantizer = UniformQuantizer::new(8, true);
            let mut rng = SeededRng::new(4);
            let encoded = quantizer.compress(&delta, &mut rng);
            b.iter(|| black_box(encoded.decode()))
        });
        group.bench_with_input(BenchmarkId::new("top_10pct", dim), &dim, |b, _| {
            let sparsifier = TopK::new(0.1);
            let mut rng = SeededRng::new(5);
            b.iter(|| black_box(sparsifier.compress(&delta, &mut rng)))
        });
        group.bench_with_input(BenchmarkId::new("rand_10pct", dim), &dim, |b, _| {
            let sparsifier = RandK::new(0.1);
            let mut rng = SeededRng::new(6);
            b.iter(|| black_box(sparsifier.compress(&delta, &mut rng)))
        });
    }
    group.finish();
}

fn bench_privacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("privacy_kernels");
    group.sample_size(20);
    for &dim in &[10_000usize, 100_000] {
        let trained = make_delta(dim, 7);
        let anchor = make_delta(dim, 8);
        group.bench_with_input(BenchmarkId::new("clip_delta", dim), &dim, |b, _| {
            b.iter(|| black_box(clipped_delta(&trained, &anchor, 1.0)))
        });
        group.bench_with_input(BenchmarkId::new("gaussian_noise", dim), &dim, |b, _| {
            let mut rng = SeededRng::new(9);
            b.iter(|| {
                let mut noised = trained.clone();
                add_gaussian_noise(&mut noised, 0.1, &mut rng);
                black_box(noised)
            })
        });
        group.bench_with_input(BenchmarkId::new("pairwise_mask_k10", dim), &dim, |b, _| {
            let masker = PairwiseMasker::new(11, 10.0);
            b.iter(|| black_box(masker.mask(&trained, 3, 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compression, bench_privacy);
criterion_main!(benches);
