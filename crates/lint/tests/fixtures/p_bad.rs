// P001 fixture: bare unwrap, empty-message expect and panic! must be
// flagged in a library crate; a reasoned expect and a marker-covered
// unwrap must stay silent. Linted as crate "core", file "state.rs".

pub fn drain(v: &mut Vec<u32>) -> u32 {
    let a = v.pop().unwrap();
    let b = v.pop().expect("");
    if a == 0 {
        panic!("zero entry in ring");
    }
    // panic: ring is pre-filled to capacity during construction
    let c = v.pop().unwrap();
    let d = v.pop().expect("ring holds at least four entries");
    a + b + c + d
}
