#!/usr/bin/env bash
# Run the lint plane locally, exactly as CI's `lint` + `sanitize-alloc`
# jobs do:
#
#   1. `fedcross-lint --deny-all --deny-waivers` — the static invariant
#      checker (rules D001-D006 plus the call-graph series A001/P001/
#      W001/W002, see docs/LINTS.md): unordered-map iteration on
#      trajectory paths, wall-clock/OS-entropy outside bench, unaudited
#      SeededRng::fork call sites, FMA / unordered parallel float
#      reductions in kernel files, uncommented `unsafe`, unpaired `*_into`
#      kernels, unclassified allocations reachable from hot-path roots,
#      unreasoned unwrap/expect/panic! in library crates, and stale
#      waivers/markers. Waiver counts are gated against the checked-in
#      lint-waivers.budget.
#   2. The `lint_plane` integration suite — the runtime half: every
#      registered algorithm's trajectory is bitwise identical at rayon
#      threads 1/2/4 and under permuted upload arrival order, and its state
#      round-trips through snapshot/restore bitwise.
#   3. The scoped no-alloc sanitizer (`--features sanitize-alloc`): a
#      counting global allocator + engine AllocGuards prove steady-state
#      rounds and evals stay free of >= 64 KiB allocations at runtime —
#      the backstop for what the conservative A001 call graph cannot see.
#
# Pass --static-only to skip the (slower) runtime suites, e.g. as a
# pre-commit hook. The full schedule sweep is also available standalone:
#   cargo run --release -p fedcross-bench --bin determinism_check
# and `fedcross-lint --reach NAME` explains why a function is (or is not)
# considered hot-path reachable.
set -euo pipefail

cd "$(dirname "$0")/.."

static_only=0
for arg in "$@"; do
    case "$arg" in
        --static-only) static_only=1 ;;
        *) echo "usage: scripts/lint.sh [--static-only]" >&2; exit 2 ;;
    esac
done

echo "== fedcross-lint --deny-all --deny-waivers =="
cargo run -q -p fedcross-lint --bin fedcross-lint -- --deny-all --deny-waivers

if [[ "$static_only" -eq 0 ]]; then
    echo
    echo "== lint_plane integration suite =="
    cargo test -q -p fedcross-tests --test lint_plane
    echo
    echo "== scoped no-alloc sanitizer (sanitize-alloc) =="
    cargo test -q -p fedcross-tests --features sanitize-alloc --test sanitize_alloc --test round_alloc
    cargo test -q -p fedcross-tensor --features sanitize-alloc --lib alloc_guard
fi
