//! Per-client error-feedback memory (EF-SGD).
//!
//! Biased compressors such as top-`k` drop information every round; error
//! feedback keeps them convergent by having every client remember the residual
//! `delta_sent_for_compression − delta_actually_transmitted` and add it back
//! to its next delta. The memory lives on the client, so it costs no extra
//! communication.

use std::collections::BTreeMap;

use crate::codec::{CompressedUpdate, Compressor};
use fedcross_nn::params::{add_into, sub_into};
use fedcross_tensor::SeededRng;

/// Error-feedback residual memory, keyed by client index.
#[derive(Debug, Clone, Default)]
pub struct ErrorFeedback {
    // BTreeMap, not HashMap: snapshot_residuals iterates this map, and D001
    // requires every iterated map on a trajectory path to have a fixed order.
    residuals: BTreeMap<usize, Vec<f32>>,
}

impl ErrorFeedback {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clients with a stored residual.
    pub fn tracked_clients(&self) -> usize {
        self.residuals.len()
    }

    /// The residual currently stored for `client`, if any.
    pub fn residual(&self, client: usize) -> Option<&[f32]> {
        self.residuals.get(&client).map(Vec::as_slice)
    }

    /// Compresses `delta` for `client` with error feedback: the stored
    /// residual is added before compression and the new residual (corrected
    /// delta minus what the encoding reconstructs to) is stored for the next
    /// round.
    ///
    /// The client's stored residual buffer is recycled as the working buffer
    /// (`corrected = residual + delta`, then `residual = corrected − decoded`
    /// in place), so the steady-state path performs no full-model
    /// allocations beyond what the codec itself needs.
    pub fn compress_with_feedback(
        &mut self,
        client: usize,
        delta: &[f32],
        compressor: &dyn Compressor,
        rng: &mut SeededRng,
    ) -> CompressedUpdate {
        // Take the stored residual and reuse its allocation; a missing or
        // stale-dimension residual degrades to a zero vector.
        let mut corrected = match self.residuals.remove(&client) {
            Some(residual) if residual.len() == delta.len() => residual,
            // alloc: bounded — per-upload error-feedback buffer
            _ => vec![0f32; delta.len()],
        };
        // corrected = residual + delta (addition is commutative, so this is
        // numerically identical to the historical delta + residual order).
        add_into(&mut corrected, delta);
        let compressed = compressor.compress(&corrected, rng);
        let decoded = compressed.decode();
        // residual = corrected - decoded, in place.
        sub_into(&mut corrected, &decoded);
        self.residuals.insert(client, corrected);
        compressed
    }

    /// Drops all stored residuals.
    pub fn reset(&mut self) {
        self.residuals.clear();
    }

    /// The complete residual memory as a `(client id, residual)` table sorted
    /// by client id — the deterministic shape a checkpoint's client table
    /// requires (`BTreeMap` iteration is already in key order, so no sort is
    /// needed).
    pub fn snapshot_residuals(&self) -> Vec<(usize, Vec<f32>)> {
        self.residuals
            .iter()
            .map(|(&client, residual)| (client, residual.clone()))
            .collect()
    }

    /// Replaces the residual memory with a checkpointed table (validation —
    /// id ranges, dimensions, sortedness — is the checkpoint layer's job;
    /// this is the mechanical restore).
    pub fn restore_residuals(&mut self, table: &[(usize, Vec<f32>)]) {
        self.residuals = table
            .iter()
            .map(|(client, residual)| (*client, residual.clone()))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Identity;
    use crate::quantize::UniformQuantizer;
    use crate::sparsify::TopK;
    use fedcross_nn::params::l2_norm;

    #[test]
    fn identity_compression_leaves_no_residual() {
        let mut feedback = ErrorFeedback::new();
        let delta = vec![1.0, -2.0, 3.0];
        let update =
            feedback.compress_with_feedback(0, &delta, &Identity, &mut SeededRng::new(0));
        assert_eq!(update.decode(), delta);
        assert!(l2_norm(feedback.residual(0).unwrap()) < 1e-6);
        assert_eq!(feedback.tracked_clients(), 1);
    }

    #[test]
    fn residual_carries_dropped_coordinates_forward() {
        let mut feedback = ErrorFeedback::new();
        let compressor = TopK::new(0.3); // keeps 1 of 3 coordinates
        let delta = vec![0.1, 10.0, 0.2];
        let first =
            feedback.compress_with_feedback(7, &delta, &compressor, &mut SeededRng::new(1));
        assert_eq!(first.decode(), vec![0.0, 10.0, 0.0]);
        let residual = feedback.residual(7).unwrap().to_vec();
        assert!((residual[0] - 0.1).abs() < 1e-6);
        assert!((residual[2] - 0.2).abs() < 1e-6);

        // A zero delta next round still transmits the remembered residual.
        let second =
            feedback.compress_with_feedback(7, &[0.0, 0.0, 0.0], &compressor, &mut SeededRng::new(2));
        let decoded = second.decode();
        assert!(decoded[2] > 0.0 || decoded[0] > 0.0, "residual must eventually be sent");
    }

    #[test]
    fn accumulated_transmissions_approach_the_accumulated_deltas() {
        // Send the same delta for many rounds through an aggressive top-k
        // compressor with feedback: the sum of the decoded transmissions must
        // track the sum of the raw deltas (the EF-SGD guarantee).
        let mut feedback = ErrorFeedback::new();
        let compressor = TopK::new(0.1);
        let delta: Vec<f32> = (0..50).map(|i| (i as f32 - 25.0) * 0.01).collect();
        let rounds = 120;
        let mut transmitted_sum = vec![0f32; delta.len()];
        let mut rng = SeededRng::new(3);
        let mut gap_half_way = 0f32;
        for round in 0..rounds {
            let decoded = feedback
                .compress_with_feedback(1, &delta, &compressor, &mut rng)
                .decode();
            for (t, d) in transmitted_sum.iter_mut().zip(decoded) {
                *t += d;
            }
            if round + 1 == rounds / 2 {
                let target: Vec<f32> = delta.iter().map(|&d| d * (round + 1) as f32).collect();
                let gap: Vec<f32> = transmitted_sum
                    .iter()
                    .zip(&target)
                    .map(|(&t, &g)| t - g)
                    .collect();
                gap_half_way = l2_norm(&gap);
            }
        }
        let target: Vec<f32> = delta.iter().map(|&d| d * rounds as f32).collect();
        let gap: Vec<f32> = transmitted_sum
            .iter()
            .zip(&target)
            .map(|(&t, &g)| t - g)
            .collect();
        let gap_final = l2_norm(&gap);
        // The gap equals the current residual: it must stay bounded (it does
        // not keep growing between the half-way point and the end, unlike the
        // no-feedback case where it grows linearly in the number of rounds)
        // and well below the total dropped mass.
        assert!(
            gap_final <= gap_half_way * 1.25 + 0.1,
            "residual kept growing ({gap_half_way} -> {gap_final})"
        );
        assert!(
            gap_final < 0.2 * rounds as f32 * l2_norm(&delta),
            "error feedback failed to keep the residual bounded (gap {gap_final})"
        );
    }

    #[test]
    fn per_client_residuals_are_independent() {
        let mut feedback = ErrorFeedback::new();
        let compressor = TopK::new(0.5);
        let mut rng = SeededRng::new(4);
        let _ = feedback.compress_with_feedback(0, &[1.0, 0.2, 0.1, 0.9], &compressor, &mut rng);
        let _ = feedback.compress_with_feedback(1, &[0.5, 0.4, 0.3, 0.6], &compressor, &mut rng);
        assert_eq!(feedback.tracked_clients(), 2);
        // Client 0 drops {0.2, 0.1}; client 1 drops {0.4, 0.3}.
        assert_ne!(feedback.residual(0), feedback.residual(1));
        assert!(l2_norm(feedback.residual(0).unwrap()) > 0.0);
        feedback.reset();
        assert_eq!(feedback.tracked_clients(), 0);
        assert!(feedback.residual(0).is_none());
        let _ = UniformQuantizer::new(2, false); // quantizer also usable here
    }

    #[test]
    fn residual_snapshot_is_sorted_and_restores_identically() {
        let mut feedback = ErrorFeedback::new();
        let compressor = TopK::new(0.3);
        let mut rng = SeededRng::new(6);
        // Insert in non-ascending client order; the snapshot must sort.
        for &client in &[9usize, 2, 5] {
            let delta: Vec<f32> = (0..6).map(|i| (client * 6 + i) as f32 * 0.1).collect();
            let _ = feedback.compress_with_feedback(client, &delta, &compressor, &mut rng);
        }
        let table = feedback.snapshot_residuals();
        let ids: Vec<usize> = table.iter().map(|(c, _)| *c).collect();
        assert_eq!(ids, vec![2, 5, 9]);

        let mut restored = ErrorFeedback::new();
        restored.restore_residuals(&table);
        assert_eq!(restored.tracked_clients(), 3);
        for (client, residual) in &table {
            assert_eq!(restored.residual(*client), Some(residual.as_slice()));
        }
        // The restored memory continues exactly like the original.
        let next = vec![0.5f32; 6];
        let a = feedback
            .compress_with_feedback(5, &next, &compressor, &mut SeededRng::new(7))
            .decode();
        let b = restored
            .compress_with_feedback(5, &next, &compressor, &mut SeededRng::new(7))
            .decode();
        assert_eq!(a, b);
    }

    #[test]
    fn dimension_change_discards_the_stale_residual() {
        let mut feedback = ErrorFeedback::new();
        let compressor = TopK::new(0.5);
        let mut rng = SeededRng::new(5);
        let _ = feedback.compress_with_feedback(0, &[1.0, 2.0, 3.0, 4.0], &compressor, &mut rng);
        // A different dimensionality must not panic and must ignore the old
        // residual.
        let update = feedback.compress_with_feedback(0, &[1.0, 1.0], &compressor, &mut rng);
        assert_eq!(update.dim(), 2);
    }
}
