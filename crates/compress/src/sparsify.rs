//! Sparsification of parameter deltas.

use crate::codec::{CompressedUpdate, Compressor};
use fedcross_tensor::SeededRng;

/// Keeps only the `fraction` of coordinates with the largest magnitude.
///
/// Top-`k` is biased (it systematically drops small coordinates), which is why
/// it is normally combined with [`crate::feedback::ErrorFeedback`].
#[derive(Debug, Clone, Copy)]
pub struct TopK {
    fraction: f32,
}

impl TopK {
    /// Creates a top-`k` sparsifier keeping `fraction ∈ (0, 1]` of coordinates.
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn new(fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must lie in (0, 1]"
        );
        Self { fraction }
    }

    /// Number of coordinates kept for a delta of dimension `dim` (always at
    /// least one for a non-empty delta).
    pub fn kept(&self, dim: usize) -> usize {
        if dim == 0 {
            0
        } else {
            ((dim as f32 * self.fraction).ceil() as usize).clamp(1, dim)
        }
    }
}

impl Compressor for TopK {
    fn compress(&self, delta: &[f32], _rng: &mut SeededRng) -> CompressedUpdate {
        let keep = self.kept(delta.len());
        // alloc: bounded — per-upload codec buffer sized by the compressed delta
        let mut order: Vec<usize> = (0..delta.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            delta[b]
                .abs()
                .partial_cmp(&delta[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        // alloc: bounded — per-upload codec buffer sized by the compressed delta
        let mut picked: Vec<usize> = order.into_iter().take(keep).collect();
        picked.sort_unstable();
        CompressedUpdate::Sparse {
            dim: delta.len(),
            // alloc: bounded — per-upload codec buffer sized by the compressed delta
            indices: picked.iter().map(|&i| i as u32).collect(),
            // alloc: bounded — per-upload codec buffer sized by the compressed delta
            values: picked.iter().map(|&i| delta[i]).collect(),
        }
    }

    fn label(&self) -> String {
        // alloc: cold — reporting label, not on the round path
        format!("top-{:.0}%", self.fraction * 100.0)
    }
}

/// Keeps a uniformly random `fraction` of coordinates, rescaled by
/// `1/fraction` so the sparsified delta is an unbiased estimate of the
/// original.
#[derive(Debug, Clone, Copy)]
pub struct RandK {
    fraction: f32,
}

impl RandK {
    /// Creates a random-`k` sparsifier keeping `fraction ∈ (0, 1]` of
    /// coordinates.
    ///
    /// # Panics
    /// Panics if the fraction is outside `(0, 1]`.
    pub fn new(fraction: f32) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must lie in (0, 1]"
        );
        Self { fraction }
    }
}

impl Compressor for RandK {
    fn compress(&self, delta: &[f32], rng: &mut SeededRng) -> CompressedUpdate {
        if delta.is_empty() {
            return CompressedUpdate::Sparse {
                dim: 0,
                // alloc: bounded — per-upload codec buffer sized by the compressed delta
                indices: Vec::new(),
                // alloc: bounded — per-upload codec buffer sized by the compressed delta
                values: Vec::new(),
            };
        }
        let keep = ((delta.len() as f32 * self.fraction).ceil() as usize).clamp(1, delta.len());
        let mut picked = rng.sample_without_replacement(delta.len(), keep);
        picked.sort_unstable();
        let scale = delta.len() as f32 / keep as f32;
        CompressedUpdate::Sparse {
            dim: delta.len(),
            // alloc: bounded — per-upload codec buffer sized by the compressed delta
            indices: picked.iter().map(|&i| i as u32).collect(),
            // alloc: bounded — per-upload codec buffer sized by the compressed delta
            values: picked.iter().map(|&i| delta[i] * scale).collect(),
        }
    }

    fn label(&self) -> String {
        // alloc: cold — reporting label, not on the round path
        format!("rand-{:.0}%", self.fraction * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::l2_norm;

    fn sample_delta(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = SeededRng::new(seed);
        (0..n).map(|_| rng.normal_with(0.0, 1.0)).collect()
    }

    #[test]
    fn topk_keeps_exactly_the_largest_magnitudes() {
        let delta = vec![0.1, -5.0, 0.2, 3.0, -0.05];
        let update = TopK::new(0.4).compress(&delta, &mut SeededRng::new(0));
        match &update {
            CompressedUpdate::Sparse { indices, values, .. } => {
                assert_eq!(indices, &vec![1, 3]);
                assert_eq!(values, &vec![-5.0, 3.0]);
            }
            other => panic!("expected sparse update, got {other:?}"),
        }
        let decoded = update.decode();
        assert_eq!(decoded, vec![0.0, -5.0, 0.0, 3.0, 0.0]);
    }

    #[test]
    fn topk_payload_matches_fraction() {
        let delta = sample_delta(1000, 1);
        let update = TopK::new(0.1).compress(&delta, &mut SeededRng::new(1));
        assert_eq!(update.payload_scalars(), 200); // 100 indices + 100 values
        assert!(update.compression_ratio() > 4.0);
    }

    #[test]
    fn topk_always_keeps_at_least_one_coordinate() {
        let delta = vec![1.0, 2.0, 3.0];
        let update = TopK::new(0.01).compress(&delta, &mut SeededRng::new(2));
        match update {
            CompressedUpdate::Sparse { indices, .. } => assert_eq!(indices.len(), 1),
            other => panic!("expected sparse update, got {other:?}"),
        }
        assert_eq!(TopK::new(0.5).kept(0), 0);
    }

    #[test]
    fn topk_preserves_most_of_the_energy() {
        let delta = sample_delta(2000, 3);
        let update = TopK::new(0.25).compress(&delta, &mut SeededRng::new(3));
        let decoded = update.decode();
        // The largest quarter of Gaussian coordinates carries well over half
        // of the L2 energy.
        assert!(l2_norm(&decoded) > 0.6 * l2_norm(&delta));
    }

    #[test]
    fn randk_is_unbiased_on_average() {
        let delta = vec![2.0f32; 50];
        let sparsifier = RandK::new(0.2);
        let mut rng = SeededRng::new(4);
        let mut accumulated = [0f32; 50];
        let trials = 2000;
        for _ in 0..trials {
            let decoded = sparsifier.compress(&delta, &mut rng).decode();
            for (acc, value) in accumulated.iter_mut().zip(decoded) {
                *acc += value;
            }
        }
        let per_coordinate_means: Vec<f32> =
            accumulated.iter().map(|acc| acc / trials as f32).collect();
        for &mean in &per_coordinate_means {
            assert!((mean - 2.0).abs() < 0.5, "rand-k mean {mean} is biased");
        }
        let overall = per_coordinate_means.iter().sum::<f32>() / per_coordinate_means.len() as f32;
        assert!(
            (overall - 2.0).abs() < 0.1,
            "rand-k overall mean {overall} is biased"
        );
    }

    #[test]
    fn randk_respects_the_budget() {
        let delta = sample_delta(500, 5);
        let update = RandK::new(0.05).compress(&delta, &mut SeededRng::new(5));
        assert_eq!(update.payload_scalars(), 50);
        assert_eq!(update.dim(), 500);
        let empty = RandK::new(0.5).compress(&[], &mut SeededRng::new(5));
        assert_eq!(empty.dim(), 0);
    }

    #[test]
    fn labels_mention_the_fraction() {
        assert_eq!(TopK::new(0.1).label(), "top-10%");
        assert_eq!(RandK::new(0.25).label(), "rand-25%");
    }

    #[test]
    #[should_panic]
    fn zero_fraction_is_rejected() {
        let _ = TopK::new(0.0);
    }

    #[test]
    #[should_panic]
    fn fraction_above_one_is_rejected() {
        let _ = RandK::new(1.5);
    }
}
