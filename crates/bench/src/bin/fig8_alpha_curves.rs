//! Figure 8: learning curves of FedCross for different α values under the
//! in-order and lowest-similarity strategies (CIFAR-10, β = 1.0), with a
//! FedAvg reference curve.
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin fig8_alpha_curves [--rounds N] [--all-alphas]
//! ```

use fedcross::{Acceleration, AlgorithmSpec, SelectionStrategy};
use fedcross_bench::report::{format_curve, write_json};
use fedcross_bench::{build_model, build_task, run_method_on, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());
    let alphas: Vec<f32> = if args.flag("--all-alphas") {
        vec![0.5, 0.8, 0.9, 0.95, 0.99, 0.999]
    } else {
        vec![0.5, 0.9, 0.99, 0.999]
    };

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(1.0));
    let data = build_task(task, &config, config.seed);

    println!(
        "Figure 8 — FedCross learning curves for different alpha ({}; {} rounds, K={})",
        task.label(),
        config.rounds,
        config.clients_per_round
    );

    let mut json = Vec::new();

    // FedAvg reference (the black curve of the paper's figure).
    let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
    let reference = run_method_on(
        AlgorithmSpec::FedAvg,
        &data,
        template,
        &config,
        &task.label(),
        "CNN",
    );
    println!(
        "\n  FedAvg reference: best {:>5.1}%  curve: {}",
        reference.result.best_accuracy_pct(),
        format_curve(&reference.result.history, 6)
    );
    json.push(serde_json::json!({
        "strategy": "fedavg",
        "alpha": null,
        "best_accuracy_pct": reference.result.best_accuracy_pct(),
        "curve": reference.result.history.accuracy_curve(),
    }));

    for strategy in [SelectionStrategy::InOrder, SelectionStrategy::LowestSimilarity] {
        println!("\n  strategy: {strategy}");
        for &alpha in &alphas {
            let spec = AlgorithmSpec::FedCross {
                alpha,
                strategy,
                acceleration: Acceleration::None,
            };
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let outcome = run_method_on(spec, &data, template, &config, &task.label(), "CNN");
            println!(
                "    alpha {:>5}: best {:>5.1}%  curve: {}",
                alpha,
                outcome.result.best_accuracy_pct(),
                format_curve(&outcome.result.history, 6)
            );
            json.push(serde_json::json!({
                "strategy": strategy.to_string(),
                "alpha": alpha,
                "best_accuracy_pct": outcome.result.best_accuracy_pct(),
                "curve": outcome.result.history.accuracy_curve(),
            }));
        }
    }
    write_json("fig8_alpha_curves.json", &json);
    println!("\nPaper shape to check: accuracy improves as alpha grows towards 0.99 and");
    println!("collapses at 0.999; lowest-similarity tracks or beats in-order.");
}
