//! Synthetic text tasks standing in for Shakespeare (next-character
//! prediction) and Sent140 (binary sentiment), the two LEAF datasets used in
//! the paper's Table II.
//!
//! LEAF's defining property is that every client is a natural user (a
//! Shakespeare role, a Twitter account) with its own distribution. Both
//! generators therefore take a per-client latent "persona" so that client
//! data are heterogeneous without any explicit Dirichlet partitioning — the
//! same way the paper treats these datasets as "naturally non-IID".

use crate::dataset::Dataset;
use fedcross_tensor::{SeededRng, Tensor};

/// Configuration of the next-character (Shakespeare stand-in) task.
#[derive(Debug, Clone, Copy)]
pub struct NextCharConfig {
    /// Character vocabulary size.
    pub vocab: usize,
    /// Input sequence length (the label is the following character).
    pub seq_len: usize,
    /// Peakedness of the per-character transition distribution: higher means
    /// more deterministic, easier-to-learn text.
    pub peakedness: f32,
    /// How strongly each client's transition table deviates from the shared
    /// base table (0 = identical clients).
    pub persona_strength: f32,
}

impl Default for NextCharConfig {
    fn default() -> Self {
        Self {
            vocab: 32,
            seq_len: 10,
            peakedness: 6.0,
            persona_strength: 1.5,
        }
    }
}

/// A synthetic next-character corpus: a shared base Markov chain over
/// characters, perturbed per client.
#[derive(Debug, Clone)]
pub struct SynthNextChar {
    config: NextCharConfig,
    /// Base transition logits `[vocab, vocab]`.
    base_logits: Vec<f32>,
}

impl SynthNextChar {
    /// Builds the shared base language from `rng`.
    pub fn new(config: NextCharConfig, rng: &mut SeededRng) -> Self {
        assert!(config.vocab >= 2 && config.seq_len >= 1);
        let base_logits = (0..config.vocab * config.vocab)
            .map(|_| rng.normal() * config.peakedness)
            .collect();
        Self {
            config,
            base_logits,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &NextCharConfig {
        &self.config
    }

    /// Builds the transition probability table of one client by perturbing the
    /// base logits with the client's persona.
    fn client_table(&self, persona_seed: u64) -> Vec<f32> {
        let v = self.config.vocab;
        let mut persona_rng = SeededRng::new(persona_seed);
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut table = vec![0f32; v * v];
        for row in 0..v {
            let mut logits: Vec<f32> = (0..v)
                .map(|col| {
                    self.base_logits[row * v + col]
                        + self.config.persona_strength * persona_rng.normal()
                })
                // alloc: pooled — shard-cache miss path; steady rounds hit the cache
                .collect();
            // Softmax the row.
            let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0f32;
            for l in logits.iter_mut() {
                *l = (*l - max).exp();
                sum += *l;
            }
            for (col, l) in logits.iter().enumerate() {
                table[row * v + col] = l / sum;
            }
        }
        table
    }

    /// Generates `n` (sequence, next-character) samples for the client
    /// identified by `persona_seed`.
    pub fn generate_for_client(
        &self,
        n: usize,
        persona_seed: u64,
        rng: &mut SeededRng,
    ) -> Dataset {
        let v = self.config.vocab;
        let t = self.config.seq_len;
        let table = self.client_table(persona_seed);
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut features = vec![0f32; n * t];
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let mut current = rng.below(v);
            for step in 0..t {
                features[i * t + step] = current as f32;
                let row = &table[current * v..(current + 1) * v];
                current = rng.weighted_index(row);
            }
            labels.push(current);
        }
        Dataset::new(Tensor::from_vec(features, &[n, t]), labels, v)
    }
}

/// Configuration of the sentiment (Sent140 stand-in) task.
#[derive(Debug, Clone, Copy)]
pub struct SentimentConfig {
    /// Word vocabulary size (split into a positive-leaning and a
    /// negative-leaning half).
    pub vocab: usize,
    /// Tweet length in tokens.
    pub seq_len: usize,
    /// Probability that a token is drawn from the class-consistent half of the
    /// vocabulary (0.5 = unlearnable noise, 1.0 = trivially separable).
    pub signal_strength: f32,
    /// How strongly each client's vocabulary is biased towards its own topic
    /// subset of words.
    pub persona_strength: f32,
}

impl Default for SentimentConfig {
    fn default() -> Self {
        Self {
            vocab: 64,
            seq_len: 12,
            signal_strength: 0.8,
            persona_strength: 0.5,
        }
    }
}

/// A synthetic binary-sentiment corpus with per-client topic bias.
#[derive(Debug, Clone)]
pub struct SynthSentiment {
    config: SentimentConfig,
}

impl SynthSentiment {
    /// Creates the corpus description.
    pub fn new(config: SentimentConfig) -> Self {
        assert!(config.vocab >= 4 && config.vocab.is_multiple_of(2), "vocab must be even and >= 4");
        assert!((0.5..=1.0).contains(&config.signal_strength));
        Self { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SentimentConfig {
        &self.config
    }

    /// Generates `n` labelled tweets for the client identified by
    /// `persona_seed`. Labels: 0 = negative, 1 = positive.
    pub fn generate_for_client(
        &self,
        n: usize,
        persona_seed: u64,
        rng: &mut SeededRng,
    ) -> Dataset {
        let v = self.config.vocab;
        let half = v / 2;
        let t = self.config.seq_len;
        let mut persona_rng = SeededRng::new(persona_seed);
        // The client's preferred words within each half (topic bias).
        let topic_weights: Vec<f32> = (0..v)
            .map(|_| (self.config.persona_strength * persona_rng.normal()).exp())
            // alloc: pooled — shard-cache miss path; steady rounds hit the cache
            .collect();

        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut features = vec![0f32; n * t];
        // alloc: pooled — shard-cache miss path; steady rounds hit the cache
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = rng.below(2);
            labels.push(label);
            // Positive tweets draw signal tokens from [half, v), negative from [0, half).
            let (sig_lo, sig_hi) = if label == 1 { (half, v) } else { (0, half) };
            for step in 0..t {
                let from_signal = rng.uniform() < self.config.signal_strength;
                let (lo, hi) = if from_signal {
                    (sig_lo, sig_hi)
                } else if label == 1 {
                    (0, half)
                } else {
                    (half, v)
                };
                let weights = &topic_weights[lo..hi];
                let token = lo + rng.weighted_index(weights);
                features[i * t + step] = token as f32;
            }
        }
        Dataset::new(Tensor::from_vec(features, &[n, t]), labels, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nextchar_shapes_and_ranges() {
        let mut rng = SeededRng::new(0);
        let corpus = SynthNextChar::new(NextCharConfig::default(), &mut rng);
        let ds = corpus.generate_for_client(20, 1, &mut rng);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.sample_dims(), &[10]);
        assert_eq!(ds.num_classes(), 32);
        assert!(ds.features().data().iter().all(|&t| (0.0..32.0).contains(&t)));
        assert!(ds.labels().iter().all(|&l| l < 32));
    }

    #[test]
    fn nextchar_labels_follow_transition_structure() {
        // With high peakedness the next character is nearly a deterministic
        // function of the previous one, so repeated contexts repeat labels.
        let mut rng = SeededRng::new(1);
        let corpus = SynthNextChar::new(
            NextCharConfig {
                peakedness: 50.0,
                persona_strength: 0.0,
                ..NextCharConfig::default()
            },
            &mut rng,
        );
        let ds = corpus.generate_for_client(200, 7, &mut rng);
        // Group by last input token and check label consistency.
        let t = corpus.config().seq_len;
        let mut by_last: std::collections::HashMap<usize, Vec<usize>> = Default::default();
        for i in 0..ds.len() {
            let last = ds.features().data()[i * t + t - 1] as usize;
            by_last.entry(last).or_default().push(ds.labels()[i]);
        }
        let mut consistent = 0usize;
        let mut groups = 0usize;
        for labels in by_last.values() {
            if labels.len() < 3 {
                continue;
            }
            groups += 1;
            let first = labels[0];
            if labels.iter().all(|&l| l == first) {
                consistent += 1;
            }
        }
        assert!(groups > 0);
        assert!(
            consistent as f32 / groups as f32 > 0.8,
            "high-peakedness chains should be nearly deterministic"
        );
    }

    #[test]
    fn different_personas_have_different_distributions() {
        let mut rng = SeededRng::new(2);
        let corpus = SynthNextChar::new(NextCharConfig::default(), &mut rng);
        let a = corpus.generate_for_client(300, 1, &mut SeededRng::new(10));
        let b = corpus.generate_for_client(300, 2, &mut SeededRng::new(10));
        // Label histograms should differ noticeably between personas.
        let hist = |ds: &Dataset| {
            let mut h = vec![0f32; ds.num_classes()];
            for &l in ds.labels() {
                h[l] += 1.0;
            }
            h
        };
        let ha = hist(&a);
        let hb = hist(&b);
        let diff: f32 = ha.iter().zip(&hb).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 30.0, "persona histogram difference {diff} too small");
    }

    #[test]
    fn same_persona_same_seed_is_deterministic() {
        let corpus = SynthNextChar::new(NextCharConfig::default(), &mut SeededRng::new(3));
        let a = corpus.generate_for_client(10, 5, &mut SeededRng::new(4));
        let b = corpus.generate_for_client(10, 5, &mut SeededRng::new(4));
        assert_eq!(a.features().data(), b.features().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn sentiment_shapes_and_balance() {
        let mut rng = SeededRng::new(4);
        let corpus = SynthSentiment::new(SentimentConfig::default());
        let ds = corpus.generate_for_client(200, 3, &mut rng);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.num_classes(), 2);
        let positives = ds.labels().iter().filter(|&&l| l == 1).count();
        assert!(positives > 60 && positives < 140, "labels should be roughly balanced");
    }

    #[test]
    fn sentiment_signal_words_predict_label() {
        let mut rng = SeededRng::new(5);
        let config = SentimentConfig {
            signal_strength: 0.95,
            ..SentimentConfig::default()
        };
        let corpus = SynthSentiment::new(config);
        let ds = corpus.generate_for_client(300, 1, &mut rng);
        let half = (config.vocab / 2) as f32;
        // A trivial classifier: positive iff most tokens are in the upper half.
        let mut correct = 0usize;
        for i in 0..ds.len() {
            let row = &ds.features().data()[i * config.seq_len..(i + 1) * config.seq_len];
            let upper = row.iter().filter(|&&t| t >= half).count();
            let pred = usize::from(upper * 2 > config.seq_len);
            if pred == ds.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / ds.len() as f32;
        assert!(acc > 0.9, "bag-of-words accuracy {acc} too low — signal missing");
    }

    #[test]
    #[should_panic]
    fn sentiment_rejects_odd_vocab() {
        let _ = SynthSentiment::new(SentimentConfig {
            vocab: 7,
            ..SentimentConfig::default()
        });
    }
}
