//! Cross-crate property-based tests of the FedCross algorithmic invariants:
//! the convergence-analysis identities of Section III-C exercised on real
//! model parameter vectors, and the dataset/partition contracts the
//! algorithms rely on.

use fedcross::aggregation::{cross_aggregate, cross_aggregate_all, global_model};
use fedcross::selection::SelectionStrategy;
use fedcross_data::partition::{class_count_matrix, dirichlet_partition, iid_partition};
use fedcross_nn::models::mlp;
use fedcross_nn::params::squared_distance;
use fedcross_tensor::SeededRng;
use proptest::prelude::*;

fn random_models(k: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..k)
        .map(|_| (0..dim).map(|_| rng.uniform_range(-2.0, 2.0)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equation 2: with the in-order strategy every model is selected as a
    /// collaborator exactly once per round, so the parameter sum is invariant.
    #[test]
    fn in_order_cross_aggregation_preserves_parameter_sum(
        k in 2usize..8,
        dim in 1usize..32,
        round in 0usize..20,
        alpha in 0.5f32..0.999,
        seed in 0u64..500,
    ) {
        let models = random_models(k, dim, seed);
        let collaborators = SelectionStrategy::InOrder.select_all(round, &models);
        let fused = cross_aggregate_all(&models, &collaborators, alpha);
        for d in 0..dim {
            let before: f32 = models.iter().map(|m| m[d]).sum();
            let after: f32 = fused.iter().map(|m| m[d]).sum();
            prop_assert!((before - after).abs() < 1e-3 * (1.0 + before.abs()));
        }
    }

    /// Lemma 3.4: under the in-order strategy (every model is a collaborator
    /// exactly once, i.e. the assignment is a permutation) cross-aggregation
    /// cannot increase the mean squared distance of the model set to any
    /// reference point.
    #[test]
    fn in_order_cross_aggregation_never_increases_mean_distance_to_any_point(
        k in 2usize..6,
        dim in 1usize..24,
        alpha in 0.5f32..0.999,
        round in 0usize..10,
        seed in 0u64..500,
    ) {
        let models = random_models(k, dim, seed);
        let reference = random_models(1, dim, seed.wrapping_add(1)).remove(0);
        let collaborators = SelectionStrategy::InOrder.select_all(round, &models);
        let fused = cross_aggregate_all(&models, &collaborators, alpha);
        let before: f32 = models.iter().map(|m| squared_distance(m, &reference)).sum();
        let after: f32 = fused.iter().map(|m| squared_distance(m, &reference)).sum();
        prop_assert!(after <= before + 1e-2 * (1.0 + before));
    }

    /// For every strategy (permutation or not), each fused model is a convex
    /// combination of two uploaded models, so its distance to any reference
    /// point is bounded by the worse of the two endpoints.
    #[test]
    fn fused_models_never_leave_the_segment_endpoints(
        k in 2usize..6,
        dim in 1usize..24,
        alpha in 0.5f32..0.999,
        seed in 0u64..500,
    ) {
        let models = random_models(k, dim, seed);
        let reference = random_models(1, dim, seed.wrapping_add(1)).remove(0);
        for strategy in [
            SelectionStrategy::InOrder,
            SelectionStrategy::HighestSimilarity,
            SelectionStrategy::LowestSimilarity,
        ] {
            let collaborators = strategy.select_all(0, &models);
            let fused = cross_aggregate_all(&models, &collaborators, alpha);
            for (i, (w, &co)) in fused.iter().zip(&collaborators).enumerate() {
                let bound = squared_distance(&models[i], &reference)
                    .max(squared_distance(&models[co], &reference));
                prop_assert!(
                    squared_distance(w, &reference) <= bound + 1e-3 * (1.0 + bound),
                    "{strategy}: fused model {i} escaped its segment"
                );
            }
        }
    }

    /// The deployable global model is always inside the convex hull of the
    /// middleware models (coordinate-wise between min and max).
    #[test]
    fn global_model_stays_in_the_convex_hull(
        k in 2usize..8,
        dim in 1usize..16,
        seed in 0u64..500,
    ) {
        let models = random_models(k, dim, seed);
        let global = global_model(&models);
        for d in 0..dim {
            let lo = models.iter().map(|m| m[d]).fold(f32::INFINITY, f32::min);
            let hi = models.iter().map(|m| m[d]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(global[d] >= lo - 1e-5 && global[d] <= hi + 1e-5);
        }
    }

    /// CrossAggr of two identical vectors is the vector itself, regardless of α.
    #[test]
    fn cross_aggregation_of_identical_models_is_identity(
        dim in 1usize..64,
        alpha in 0.5f32..0.999,
        seed in 0u64..500,
    ) {
        let model = random_models(1, dim, seed).remove(0);
        let fused = cross_aggregate(&model, &model, alpha);
        for (a, b) in fused.iter().zip(&model) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    /// Dirichlet partitioning assigns every sample to exactly one client for
    /// any β, and the class-count matrix accounts for every sample.
    #[test]
    fn dirichlet_partition_is_a_partition(
        clients in 1usize..20,
        per_class in 1usize..20,
        beta in 0.05f32..5.0,
        seed in 0u64..500,
    ) {
        let classes = 6usize;
        let labels: Vec<usize> = (0..per_class * classes).map(|i| i % classes).collect();
        let mut rng = SeededRng::new(seed);
        let shards = dirichlet_partition(&labels, classes, clients, beta, &mut rng);
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        let counts = class_count_matrix(&labels, &shards, classes);
        let total: usize = counts.iter().flatten().sum();
        prop_assert_eq!(total, labels.len());
    }

    /// IID partitioning balances shard sizes to within one sample.
    #[test]
    fn iid_partition_is_balanced(n in 1usize..300, clients in 1usize..20, seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let shards = iid_partition(n, clients, &mut rng);
        let min = shards.iter().map(Vec::len).min().unwrap();
        let max = shards.iter().map(Vec::len).max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Model parameter vectors survive a set/get round trip bit-exactly —
    /// the property the whole dispatch/upload cycle depends on.
    #[test]
    fn model_params_roundtrip(seed in 0u64..100, scale in 0.1f32..3.0) {
        let mut rng = SeededRng::new(seed);
        let template = mlp(6, &[8, 4], 3, &mut rng);
        let mut modified: Vec<f32> = template.params_flat();
        for p in modified.iter_mut() {
            *p *= scale;
        }
        let mut clone = template.clone_model();
        clone.set_params_flat(&modified);
        prop_assert_eq!(clone.params_flat(), modified);
    }
}

#[test]
fn selection_strategies_agree_on_two_models_but_not_generally() {
    let models = vec![
        vec![1.0, 0.0, 0.0],
        vec![0.95, 0.05, 0.0],
        vec![0.0, 0.0, 1.0],
    ];
    let highest = SelectionStrategy::HighestSimilarity.select_all(0, &models);
    let lowest = SelectionStrategy::LowestSimilarity.select_all(0, &models);
    assert_ne!(highest, lowest);
    // Model 0's closest peer is 1, its most distant is 2.
    assert_eq!(highest[0], 1);
    assert_eq!(lowest[0], 2);
}
