//! Convolution and pooling kernels (`im2col` / `col2im`, max / average pooling).
//!
//! Layout convention: image batches are rank-4 `[N, C, H, W]` (batch, channel,
//! height, width), matching the layer implementations in `fedcross-nn`.

use crate::Tensor;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Kernel height/width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding added to each spatial border.
    pub padding: usize,
}

impl Conv2dGeom {
    /// Creates a geometry descriptor.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of extent `size`.
    pub fn out_size(&self, size: usize) -> usize {
        (size + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Unfolds an `[N, C, H, W]` batch into the `im2col` matrix
/// `[N * OH * OW, C * k * k]`.
///
/// Each output row contains the receptive field of one output pixel, so a 2-D
/// convolution becomes a single matrix product against the reshaped kernel
/// bank.
///
/// # Panics
/// Panics if `input` is not rank-4.
pub fn im2col(input: &Tensor, geom: Conv2dGeom) -> Tensor {
    assert_eq!(input.rank(), 4, "im2col expects an [N, C, H, W] tensor");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = geom.kernel;
    let oh = geom.out_size(h);
    let ow = geom.out_size(w);
    let row_len = c * k * k;
    let mut out = vec![0f32; n * oh * ow * row_len];
    let data = input.data();

    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (ni * oh + oy) * ow + ox;
                let row = &mut out[row_idx * row_len..(row_idx + 1) * row_len];
                let iy0 = (oy * geom.stride) as isize - geom.padding as isize;
                let ix0 = (ox * geom.stride) as isize - geom.padding as isize;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            let col = (ci * k + ky) * k + kx;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                let src =
                                    ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                                row[col] = data[src];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n * oh * ow, row_len])
}

/// Folds an `im2col` matrix back into an `[N, C, H, W]` tensor, summing
/// overlapping contributions. This is the adjoint of [`im2col`] and is used to
/// propagate gradients through a convolution to its input.
///
/// # Panics
/// Panics if the column matrix does not match the geometry implied by
/// `input_dims` and `geom`.
pub fn col2im(cols: &Tensor, input_dims: &[usize], geom: Conv2dGeom) -> Tensor {
    assert_eq!(input_dims.len(), 4, "col2im expects [N, C, H, W] dims");
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let k = geom.kernel;
    let oh = geom.out_size(h);
    let ow = geom.out_size(w);
    let row_len = c * k * k;
    assert_eq!(
        cols.dims(),
        &[n * oh * ow, row_len],
        "col matrix shape does not match geometry"
    );

    let mut out = vec![0f32; n * c * h * w];
    let data = cols.data();
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row_idx = (ni * oh + oy) * ow + ox;
                let row = &data[row_idx * row_len..(row_idx + 1) * row_len];
                let iy0 = (oy * geom.stride) as isize - geom.padding as isize;
                let ix0 = (ox * geom.stride) as isize - geom.padding as isize;
                for ci in 0..c {
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                let dst =
                                    ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                                out[dst] += row[(ci * k + ky) * k + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, input_dims)
}

/// Result of a max-pooling forward pass: the pooled tensor plus the flat index
/// (into the input) of each selected maximum, needed for the backward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled tensor `[N, C, OH, OW]`.
    pub output: Tensor,
    /// For each output element, the flat index of the input element that won.
    pub argmax: Vec<usize>,
}

/// 2-D max pooling over an `[N, C, H, W]` tensor.
pub fn max_pool2d(input: &Tensor, geom: Conv2dGeom) -> MaxPoolOutput {
    assert_eq!(input.rank(), 4, "max_pool2d expects an [N, C, H, W] tensor");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let k = geom.kernel;
    let oh = geom.out_size(h);
    let ow = geom.out_size(w);
    let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();

    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let out_idx = ((ni * c + ci) * oh + oy) * ow + ox;
                    let iy0 = (oy * geom.stride) as isize - geom.padding as isize;
                    let ix0 = (ox * geom.stride) as isize - geom.padding as isize;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..k {
                        let iy = iy0 + ky as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = ix0 + kx as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[out_idx] = best;
                    argmax[out_idx] = best_idx;
                }
            }
        }
    }
    MaxPoolOutput {
        output: Tensor::from_vec(out, &[n, c, oh, ow]),
        argmax,
    }
}

/// Backward pass of max pooling: routes each output gradient to the input
/// position that produced the maximum.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Tensor {
    assert_eq!(
        grad_output.numel(),
        argmax.len(),
        "argmax length must match output size"
    );
    let mut grad_input = Tensor::zeros(input_dims);
    let gi = grad_input.data_mut();
    for (g, &idx) in grad_output.data().iter().zip(argmax) {
        gi[idx] += g;
    }
    grad_input
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool2d(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4, "global_avg_pool2d expects rank-4 input");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let area = (h * w) as f32;
    let mut out = vec![0f32; n * c];
    for ni in 0..n {
        for ci in 0..c {
            let start = (ni * c + ci) * h * w;
            let sum: f32 = input.data()[start..start + h * w].iter().sum();
            out[ni * c + ci] = sum / area;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Backward pass of global average pooling: spreads each gradient uniformly
/// over the spatial positions it averaged.
pub fn global_avg_pool2d_backward(grad_output: &Tensor, input_dims: &[usize]) -> Tensor {
    assert_eq!(input_dims.len(), 4, "expected [N, C, H, W] dims");
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    assert_eq!(grad_output.dims(), &[n, c], "grad_output must be [N, C]");
    let area = (h * w) as f32;
    let mut out = vec![0f32; n * c * h * w];
    for ni in 0..n {
        for ci in 0..c {
            let g = grad_output.data()[ni * c + ci] / area;
            let start = (ni * c + ci) * h * w;
            for v in &mut out[start..start + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(out, input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_out_size() {
        let g = Conv2dGeom::new(3, 1, 1);
        assert_eq!(g.out_size(8), 8);
        let g2 = Conv2dGeom::new(2, 2, 0);
        assert_eq!(g2.out_size(8), 4);
        let g3 = Conv2dGeom::new(3, 2, 1);
        assert_eq!(g3.out_size(8), 4);
    }

    #[test]
    fn im2col_identity_kernel_geometry() {
        // 1x1 kernel, stride 1, no padding: im2col is a pure reshape/permute.
        let input = Tensor::arange(2 * 3 * 2 * 2).reshape(&[2, 3, 2, 2]);
        let cols = im2col(&input, Conv2dGeom::new(1, 1, 0));
        assert_eq!(cols.dims(), &[2 * 2 * 2, 3]);
        // First output pixel of first image should contain channel values at (0,0).
        assert_eq!(cols.row(0).data(), &[0.0, 4.0, 8.0]);
    }

    #[test]
    fn im2col_known_patch() {
        // Single 1-channel 3x3 image, 2x2 kernel, stride 1, no padding.
        let input = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let cols = im2col(&input, Conv2dGeom::new(2, 1, 0));
        assert_eq!(cols.dims(), &[4, 4]);
        assert_eq!(cols.row(0).data(), &[0.0, 1.0, 3.0, 4.0]);
        assert_eq!(cols.row(3).data(), &[4.0, 5.0, 7.0, 8.0]);
    }

    #[test]
    fn im2col_respects_padding() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let cols = im2col(&input, Conv2dGeom::new(3, 1, 1));
        assert_eq!(cols.dims(), &[4, 9]);
        // Top-left output: only the bottom-right 2x2 of the kernel overlaps the image.
        let row = cols.row(0);
        let nonzero = row.data().iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 4);
    }

    #[test]
    fn conv_via_im2col_matches_direct_computation() {
        // 1 image, 1 channel 4x4, one 3x3 kernel of all ones => output = sum of each patch.
        let input = Tensor::arange(16).reshape(&[1, 1, 4, 4]);
        let geom = Conv2dGeom::new(3, 1, 0);
        let cols = im2col(&input, geom);
        let kernel = Tensor::ones(&[9, 1]); // [C*k*k, out_channels]
        let out = cols.matmul(&kernel); // [4, 1]
        // Patch sums computed by hand.
        assert_eq!(out.data(), &[45.0, 54.0, 81.0, 90.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y (adjoint test).
        let geom = Conv2dGeom::new(3, 1, 1);
        let dims = [2usize, 2, 5, 5];
        let x = Tensor::from_vec(
            (0..dims.iter().product::<usize>())
                .map(|i| ((i * 7 % 11) as f32) - 5.0)
                .collect(),
            &dims,
        );
        let cols = im2col(&x, geom);
        let y = Tensor::from_vec(
            (0..cols.numel()).map(|i| ((i * 3 % 13) as f32) - 6.0).collect(),
            cols.dims(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let folded = col2im(&y, &dims, geom);
        let rhs: f32 = x.data().iter().zip(folded.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn max_pool_picks_maxima() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let pooled = max_pool2d(&input, Conv2dGeom::new(2, 2, 0));
        assert_eq!(pooled.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(pooled.output.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_gradient_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let pooled = max_pool2d(&input, Conv2dGeom::new(2, 2, 0));
        let grad_out = Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]);
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, input.dims());
        assert_eq!(grad_in.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_averages_each_channel() {
        let input = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        let out = global_avg_pool2d(&input);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_uniformly() {
        let grad_out = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let grad_in = global_avg_pool2d_backward(&grad_out, &[1, 2, 2, 2]);
        assert_eq!(grad_in.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_with_stride_one_overlapping_windows() {
        let input = Tensor::arange(9).reshape(&[1, 1, 3, 3]);
        let pooled = max_pool2d(&input, Conv2dGeom::new(2, 1, 0));
        assert_eq!(pooled.output.dims(), &[1, 1, 2, 2]);
        assert_eq!(pooled.output.data(), &[4.0, 5.0, 7.0, 8.0]);
    }
}
