//! Token embedding layer for the text models (Shakespeare / Sent140 LSTMs).

use crate::layer::{Layer, Param};
use fedcross_tensor::{init, SeededRng, Tensor, TensorPool};

/// Maps integer token ids to dense vectors.
///
/// * input: `[N, T]` token ids stored as `f32` (values must be integral and
///   within `[0, vocab)`)
/// * weight: `[vocab, dim]`
/// * output: `[N, T, dim]`
#[derive(Debug, Clone)]
pub struct Embedding {
    weight: Param,
    vocab: usize,
    dim: usize,
    cached_ids: Option<Vec<usize>>,
    cached_batch: usize,
    cached_steps: usize,
}

impl Embedding {
    /// Creates an embedding table with small normal initialisation.
    pub fn new(vocab: usize, dim: usize, rng: &mut SeededRng) -> Self {
        let weight = init::normal(&[vocab, dim], 0.0, 0.1, rng);
        Self {
            weight: Param::new(weight),
            vocab,
            dim,
            cached_ids: None,
            cached_batch: 0,
            cached_steps: 0,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

impl Layer for Embedding {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert_eq!(input.rank(), 2, "Embedding expects [N, T] token ids");
        let (n, t) = (input.dims()[0], input.dims()[1]);
        let mut ids = Vec::with_capacity(n * t);
        let mut out = vec![0f32; n * t * self.dim];
        for (pos, &raw) in input.data().iter().enumerate() {
            let id = raw.round() as usize;
            assert!(
                id < self.vocab,
                "token id {id} out of range for vocab {}",
                self.vocab
            );
            ids.push(id);
            let src = &self.weight.value.data()[id * self.dim..(id + 1) * self.dim];
            out[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(src);
        }
        self.cached_ids = Some(ids);
        self.cached_batch = n;
        self.cached_steps = t;
        Tensor::from_vec(out, &[n, t, self.dim])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let ids = self
            .cached_ids
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(
            grad_output.dims(),
            &[self.cached_batch, self.cached_steps, self.dim],
            "grad shape mismatch"
        );
        let gw = self.weight.grad.data_mut();
        for (pos, &id) in ids.iter().enumerate() {
            let grad_row = &grad_output.data()[pos * self.dim..(pos + 1) * self.dim];
            let dst = &mut gw[id * self.dim..(id + 1) * self.dim];
            for (d, &g) in dst.iter_mut().zip(grad_row) {
                *d += g;
            }
        }
        // Token ids are not differentiable; return a zero gradient of the input shape.
        Tensor::zeros(&[self.cached_batch, self.cached_steps])
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        assert_eq!(input.rank(), 2, "Embedding expects [N, T] token ids");
        let (n, t) = (input.dims()[0], input.dims()[1]);
        // Reuse the id vector's capacity across steps.
        let mut ids = self.cached_ids.take().unwrap_or_default();
        ids.clear();
        ids.reserve(n * t);
        let mut out = pool.take_uninit(&[n, t, self.dim]);
        let od = out.data_mut();
        for (pos, &raw) in input.data().iter().enumerate() {
            let id = raw.round() as usize;
            assert!(
                id < self.vocab,
                "token id {id} out of range for vocab {}",
                self.vocab
            );
            ids.push(id);
            let src = &self.weight.value.data()[id * self.dim..(id + 1) * self.dim];
            od[pos * self.dim..(pos + 1) * self.dim].copy_from_slice(src);
        }
        self.cached_ids = Some(ids);
        self.cached_batch = n;
        self.cached_steps = t;
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let ids = self
            .cached_ids
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(
            grad_output.dims(),
            &[self.cached_batch, self.cached_steps, self.dim],
            "grad shape mismatch"
        );
        let gw = self.weight.grad.data_mut();
        for (pos, &id) in ids.iter().enumerate() {
            let grad_row = &grad_output.data()[pos * self.dim..(pos + 1) * self.dim];
            let dst = &mut gw[id * self.dim..(id + 1) * self.dim];
            for (d, &g) in dst.iter_mut().zip(grad_row) {
                *d += g;
            }
        }
        // Token ids are not differentiable; return a zero gradient of the input shape.
        pool.take_zeroed(&[self.cached_batch, self.cached_steps])
    }

    fn backward_into_discard(&mut self, grad_output: &Tensor, pool: &mut TensorPool) {
        // First-layer form: skip materialising the all-zero token-id
        // gradient; only the embedding-table gradient matters.
        let _ = pool;
        let ids = self
            .cached_ids
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(
            grad_output.dims(),
            &[self.cached_batch, self.cached_steps, self.dim],
            "grad shape mismatch"
        );
        let gw = self.weight.grad.data_mut();
        for (pos, &id) in ids.iter().enumerate() {
            let grad_row = &grad_output.data()[pos * self.dim..(pos + 1) * self.dim];
            let dst = &mut gw[id * self.dim..(id + 1) * self.dim];
            for (d, &g) in dst.iter_mut().zip(grad_row) {
                *d += g;
            }
        }
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&self.weight]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        vec![&mut self.weight]
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic lookup table: no stochastic state.
    }

    fn name(&self) -> &'static str {
        "embedding"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_gathers_rows() {
        let mut rng = SeededRng::new(0);
        let mut emb = Embedding::new(5, 3, &mut rng);
        // Make the table recognisable.
        for v in 0..5 {
            for d in 0..3 {
                emb.weight.value.set(&[v, d], (v * 10 + d) as f32);
            }
        }
        let ids = Tensor::from_vec(vec![0.0, 2.0, 4.0, 1.0], &[2, 2]);
        let out = emb.forward(&ids, true);
        assert_eq!(out.dims(), &[2, 2, 3]);
        assert_eq!(&out.data()[0..3], &[0.0, 1.0, 2.0]);
        assert_eq!(&out.data()[3..6], &[20.0, 21.0, 22.0]);
        assert_eq!(&out.data()[6..9], &[40.0, 41.0, 42.0]);
    }

    #[test]
    fn backward_accumulates_into_used_rows_only() {
        let mut rng = SeededRng::new(1);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let ids = Tensor::from_vec(vec![1.0, 1.0, 3.0], &[1, 3]);
        emb.forward(&ids, true);
        emb.zero_grads();
        let grad = Tensor::ones(&[1, 3, 2]);
        emb.backward(&grad);
        // Row 1 used twice, row 3 once, rows 0 and 2 never.
        assert_eq!(&emb.weight.grad.data()[0..2], &[0.0, 0.0]);
        assert_eq!(&emb.weight.grad.data()[2..4], &[2.0, 2.0]);
        assert_eq!(&emb.weight.grad.data()[4..6], &[0.0, 0.0]);
        assert_eq!(&emb.weight.grad.data()[6..8], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_token_panics() {
        let mut rng = SeededRng::new(2);
        let mut emb = Embedding::new(3, 2, &mut rng);
        let ids = Tensor::from_vec(vec![5.0], &[1, 1]);
        emb.forward(&ids, true);
    }

    #[test]
    fn param_count_is_vocab_times_dim() {
        let mut rng = SeededRng::new(3);
        let emb = Embedding::new(100, 16, &mut rng);
        assert_eq!(emb.param_count(), 1600);
        assert_eq!(emb.vocab_size(), 100);
        assert_eq!(emb.dim(), 16);
    }
}
