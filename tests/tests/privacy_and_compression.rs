//! Cross-crate tests of the privacy and compression extensions: DP-FedAvg /
//! DP-FedCross / secure aggregation and compressed uploads, all driven through
//! the same simulation engine as the paper's methods, plus property-based
//! tests of the mechanism invariants.

use fedcross_compress::{CompressedFedAvg, Compressor, Identity, TopK, UniformQuantizer};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::params::l2_norm;
use fedcross_nn::Model;
use fedcross_privacy::accountant::RdpAccountant;
use fedcross_privacy::algorithms::{DpFedAvg, SecureAggFedAvg};
use fedcross_privacy::clipping::clip_to_norm;
use fedcross_privacy::mechanism::{DpConfig, NoisePlacement};
use fedcross_privacy::secure_agg::{aggregate_masked, PairwiseMasker};
use fedcross_tensor::SeededRng;
use proptest::prelude::*;

fn setup(seed: u64, clients: usize, samples: usize) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: samples,
            test_samples: 80,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (4, 8),
            fc_hidden: 16,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sim_config(rounds: usize, k: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: k,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.08,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 21,
    }
}

#[test]
fn dp_fedavg_budget_grows_with_training_length() {
    let (data, template) = setup(0, 8, 15);
    let dp = DpConfig {
        clip_norm: 2.0,
        noise_multiplier: 0.8,
        placement: NoisePlacement::Central,
    };
    let run = |rounds: usize| {
        let mut algo = DpFedAvg::new(template.params_flat(), dp, 5);
        let _ = Simulation::new(sim_config(rounds, 3), &data, template.clone_model())
            .run(&mut algo);
        algo.epsilon(1e-5).expect("accountant initialised")
    };
    let short = run(3);
    let long = run(9);
    assert!(short > 0.0 && short.is_finite());
    assert!(long > short, "epsilon must grow with rounds ({short} -> {long})");
}

#[test]
fn clip_only_dp_fedavg_matches_generous_clipping() {
    // With an enormous clip norm and no noise, DP-FedAvg degenerates to plain
    // (unweighted) FedAvg on the same schedule.
    let (data, template) = setup(1, 8, 20);
    let dp_loose = DpConfig {
        clip_norm: 1e6,
        noise_multiplier: 0.0,
        placement: NoisePlacement::Central,
    };
    let dp_tight = DpConfig {
        clip_norm: 0.05,
        noise_multiplier: 0.0,
        placement: NoisePlacement::Central,
    };
    let run = |dp: DpConfig| {
        let mut algo = DpFedAvg::new(template.params_flat(), dp, 5);
        let result =
            Simulation::new(sim_config(8, 3), &data, template.clone_model()).run(&mut algo);
        (result.history.best_accuracy(), algo.global_params())
    };
    let (loose_acc, loose_params) = run(dp_loose);
    let (tight_acc, tight_params) = run(dp_tight);
    // Loose clipping learns; over-aggressive clipping barely moves the model.
    assert!(loose_acc >= tight_acc - 0.05);
    let init = template.params_flat();
    let loose_move = fedcross_nn::params::euclidean(&loose_params, &init);
    let tight_move = fedcross_nn::params::euclidean(&tight_params, &init);
    assert!(
        tight_move < loose_move,
        "tight clipping must constrain the update ({tight_move} vs {loose_move})"
    );
}

#[test]
fn secure_aggregation_reaches_the_same_accuracy_as_plain_uploads() {
    let (data, template) = setup(2, 8, 25);
    let config = sim_config(8, 3);

    let mut plain = DpFedAvg::new(
        template.params_flat(),
        DpConfig {
            clip_norm: 1e6,
            noise_multiplier: 0.0,
            placement: NoisePlacement::Central,
        },
        0,
    );
    let plain_result =
        Simulation::new(config, &data, template.clone_model()).run(&mut plain);

    let mut masked = SecureAggFedAvg::new(template.params_flat(), 25.0, 17);
    let masked_result = Simulation::new(config, &data, template).run(&mut masked);

    assert!(
        (plain_result.history.best_accuracy() - masked_result.history.best_accuracy()).abs()
            < 0.08,
        "secure aggregation changed the outcome: {} vs {}",
        plain_result.history.best_accuracy(),
        masked_result.history.best_accuracy()
    );
}

#[test]
fn compressed_fedavg_accounting_is_exact() {
    let (data, template) = setup(3, 8, 15);
    let param_count = template.param_count() as u64;
    let mut algo = CompressedFedAvg::new(
        template.params_flat(),
        Box::new(UniformQuantizer::new(8, true)),
        false,
        2,
    );
    let result = Simulation::new(sim_config(4, 3), &data, template).run(&mut algo);
    let stats = algo.upload_stats();
    // 4 rounds x 3 clients = 12 uploads of exactly one model each.
    assert_eq!(stats.uploads, 12);
    assert_eq!(stats.raw_scalars, 12 * param_count);
    assert!(stats.compressed_scalars < stats.raw_scalars / 3);
    assert_eq!(result.comm.client_contacts, 12);
}

#[test]
fn eight_bit_quantization_tracks_uncompressed_fedavg() {
    let (data, template) = setup(4, 8, 30);
    let run = |compressor: Box<dyn Compressor>| {
        let mut algo = CompressedFedAvg::new(template.params_flat(), compressor, false, 3);
        Simulation::new(sim_config(10, 3), &data, template.clone_model())
            .run(&mut algo)
            .history
            .best_accuracy()
    };
    let uncompressed = run(Box::new(Identity));
    let quantized = run(Box::new(UniformQuantizer::new(8, true)));
    assert!(uncompressed > 0.2, "baseline FedAvg should learn");
    assert!(
        quantized > uncompressed - 0.1,
        "8-bit quantization lost too much accuracy ({quantized} vs {uncompressed})"
    );
}

#[test]
fn aggressive_topk_benefits_from_error_feedback() {
    let (data, template) = setup(5, 8, 30);
    let run = |error_feedback: bool| {
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            Box::new(TopK::new(0.05)),
            error_feedback,
            4,
        );
        Simulation::new(sim_config(12, 3), &data, template.clone_model())
            .run(&mut algo)
            .history
            .best_accuracy()
    };
    let with_feedback = run(true);
    let without_feedback = run(false);
    // Error feedback should never hurt; on this short run it usually helps.
    assert!(
        with_feedback >= without_feedback - 0.05,
        "error feedback regressed accuracy: {with_feedback} vs {without_feedback}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clipping_never_exceeds_the_bound(
        values in prop::collection::vec(-50f32..50.0, 1..256),
        clip in 0.01f32..10.0,
    ) {
        let mut delta = values;
        let original_norm = l2_norm(&delta);
        let reported = clip_to_norm(&mut delta, clip);
        prop_assert!((reported - original_norm).abs() <= 1e-2 * original_norm.max(1.0));
        prop_assert!(l2_norm(&delta) <= clip * 1.001 + 1e-6);
    }

    #[test]
    fn quantization_error_is_bounded_by_one_bucket(
        values in prop::collection::vec(-5f32..5.0, 1..128),
        bits in 1u8..=8,
        seed in 0u64..1000,
    ) {
        let quantizer = UniformQuantizer::new(bits, false);
        let mut rng = SeededRng::new(seed);
        let encoded = quantizer.compress(&values, &mut rng);
        let decoded = encoded.decode();
        prop_assert_eq!(decoded.len(), values.len());
        let lo = values.iter().copied().fold(f32::INFINITY, f32::min);
        let hi = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let bound = quantizer.max_error(hi - lo) + 1e-5;
        for (&original, &restored) in values.iter().zip(&decoded) {
            prop_assert!((original - restored).abs() <= bound);
        }
    }

    #[test]
    fn pairwise_masks_always_cancel(
        dims in 1usize..64,
        participants in 1usize..8,
        seed in 0u64..1000,
    ) {
        let uploads: Vec<Vec<f32>> = (0..participants)
            .map(|p| (0..dims).map(|d| (p * dims + d) as f32 * 0.1 - 1.0).collect())
            .collect();
        let masker = PairwiseMasker::new(seed, 10.0);
        let masked = masker.mask_all(&uploads);
        let raw_sum = aggregate_masked(&uploads);
        let masked_sum = aggregate_masked(&masked);
        for (a, b) in raw_sum.iter().zip(&masked_sum) {
            prop_assert!((a - b).abs() < 1e-2);
        }
    }

    #[test]
    fn accountant_is_monotone_in_noise_and_rounds(
        z in 0.3f32..4.0,
        q in 0.01f32..0.9,
        rounds in 1u64..500,
    ) {
        let accountant = RdpAccountant::new(z, q);
        let eps = accountant.epsilon_after(rounds, 1e-5);
        let eps_more_rounds = accountant.epsilon_after(rounds + 10, 1e-5);
        let eps_more_noise = RdpAccountant::new(z * 2.0, q).epsilon_after(rounds, 1e-5);
        prop_assert!(eps.is_finite() && eps > 0.0);
        prop_assert!(eps_more_rounds >= eps);
        prop_assert!(eps_more_noise <= eps);
    }
}
