#!/usr/bin/env bash
# Run the determinism lint plane locally, exactly as CI's `lint` job does:
#
#   1. `fedcross-lint --deny-all` — the static invariant checker (rules
#      D001-D006, see docs/LINTS.md): unordered-map iteration on trajectory
#      paths, wall-clock/OS-entropy outside bench, unaudited SeededRng::fork
#      call sites, FMA / unordered parallel float reductions in kernel
#      files, uncommented `unsafe`, unpaired `*_into` kernels.
#   2. The `lint_plane` integration suite — the runtime half: every
#      registered algorithm's trajectory is bitwise identical at rayon
#      threads 1/2/4 and under permuted upload arrival order, and its state
#      round-trips through snapshot/restore bitwise.
#
# Pass --static-only to skip the (slower) runtime suite, e.g. as a pre-commit
# hook. The full schedule sweep is also available as a standalone binary:
#   cargo run --release -p fedcross-bench --bin determinism_check
set -euo pipefail

cd "$(dirname "$0")/.."

static_only=0
for arg in "$@"; do
    case "$arg" in
        --static-only) static_only=1 ;;
        *) echo "usage: scripts/lint.sh [--static-only]" >&2; exit 2 ;;
    esac
done

echo "== fedcross-lint --deny-all =="
cargo run -q -p fedcross-lint --bin fedcross-lint -- --deny-all

if [[ "$static_only" -eq 0 ]]; then
    echo
    echo "== lint_plane integration suite =="
    cargo test -q -p fedcross-tests --test lint_plane
fi
