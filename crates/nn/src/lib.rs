//! # fedcross-nn
//!
//! Neural-network layers, models, losses and optimizers for the FedCross
//! federated-learning reproduction.
//!
//! The FedCross paper (ICDE 2024) evaluates its multi-model cross-aggregation
//! scheme on four model families: the FedAvg two-conv CNN, ResNet-20, VGG-16
//! and an LSTM text classifier. This crate provides architecture-faithful,
//! CPU-scaled versions of all of them on top of the `fedcross-tensor`
//! substrate, along with:
//!
//! * an explicit-backward [`Layer`] abstraction (no autograd graph — every
//!   gradient is hand-derived and checked against finite differences in
//!   tests),
//! * a [`Model`] trait exposing the *flattened parameter vector* interface
//!   that every FL aggregation rule in the workspace operates on,
//! * [`Sequential`] composition plus residual blocks and an LSTM,
//! * softmax cross-entropy loss ([`loss`]),
//! * SGD with momentum and weight decay ([`optim`]), the optimizer used by
//!   every client in the paper's experiments,
//! * parameter-vector helpers ([`params`]) used by FedAvg-style weighted
//!   averaging and FedCross cross-aggregation.
//!
//! ## Quick example
//!
//! ```
//! use fedcross_nn::models::mlp;
//! use fedcross_nn::{loss::softmax_cross_entropy, optim::Sgd, Model};
//! use fedcross_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut model = mlp(4, &[16], 3, &mut rng);
//! let x = Tensor::ones(&[2, 4]);
//! let labels = vec![0usize, 2];
//! let logits = model.forward(&x, true);
//! let (loss, grad) = softmax_cross_entropy(&logits, &labels);
//! model.backward(&grad);
//! let mut sgd = Sgd::new(0.1, 0.9, 0.0);
//! sgd.step(model.as_mut());
//! assert!(loss > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod layer;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod params;
pub mod sequential;

pub use layer::{Layer, Param};
pub use params::ParamBlock;
pub use sequential::Sequential;

use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// FNV-1a offset basis / prime, shared by every layout-hash implementation so
/// the default and the structured overrides can never drift apart.
pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Mixes one byte string into an FNV-1a hash state.
pub(crate) fn fnv1a_mix(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// A trainable model: a differentiable classifier exposing its parameters as a
/// single flat `f32` vector.
///
/// The flat-vector interface is what federated aggregation operates on: the
/// cloud server in FedAvg averages `params_flat()` across clients, and
/// FedCross' cross-aggregation computes `α·v_i + (1-α)·v_co` over the same
/// vectors before pushing them back with [`Model::set_params_flat`].
pub trait Model: Send {
    /// Runs the forward pass, returning logits of shape `[batch, classes]`.
    ///
    /// `train` toggles training-time behaviour (dropout, batch-norm batch
    /// statistics).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Runs the backward pass given the gradient of the loss w.r.t. the
    /// logits, accumulating parameter gradients internally.
    fn backward(&mut self, grad_logits: &Tensor);

    /// Pooled forward pass: every transient activation is checked out of
    /// `pool` and reused across steps, so steady-state training performs zero
    /// full-activation allocations. Must be bitwise identical to
    /// [`Model::forward`]; the returned logits are pool-owned and should be
    /// recycled by the caller once consumed. The default falls back to the
    /// allocating form so external models keep working.
    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        let _ = pool;
        self.forward(input, train)
    }

    /// Pooled backward pass; see [`Model::forward_into`].
    fn backward_into(&mut self, grad_logits: &Tensor, pool: &mut TensorPool) {
        let _ = pool;
        self.backward(grad_logits);
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize;

    /// A cheap fingerprint of the model's *parameter layout*: the sequence of
    /// per-parameter tensor sizes in [`Model::params_flat`] order (plus, for
    /// structured models, the layer-name sequence), FNV-1a hashed. Two models
    /// with equal hashes accept each other's flat vectors tensor-for-tensor;
    /// a matching `param_count` alone does not guarantee that (different
    /// layer shapes can sum to the same total). The worker pool keys its
    /// cached-model compatibility check on this.
    ///
    /// Structured models additionally fold in each layer's value-level
    /// configuration via [`Layer::config_hash`] (dropout probability and
    /// mask-stream seed, conv stride/padding, pooling geometry), so template
    /// variants along those axes hash differently too. The default falls
    /// back to hashing just the total count — correct but collision-prone,
    /// so structured models should override it ([`Sequential`] does).
    fn param_layout_hash(&self) -> u64 {
        fnv1a_mix(FNV_OFFSET, &self.param_count().to_le_bytes())
    }

    /// Returns all parameters concatenated into one flat vector.
    fn params_flat(&self) -> Vec<f32>;

    /// Writes all parameters into `out` (cleared first), reusing its
    /// capacity. The allocation-free form the optimizer's step scratch uses;
    /// must produce exactly the bytes of [`Model::params_flat`]. The default
    /// falls back to the allocating form.
    fn read_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        // alloc: cold — trait-default fallback; Sequential overrides the pooled form
        out.extend_from_slice(&self.params_flat());
    }

    /// Writes all gradients into `out` (cleared first), reusing its capacity;
    /// see [`Model::read_params_into`].
    fn read_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.grads_flat());
    }

    /// Visits every parameter (value + gradient pair) in [`Model::params_flat`]
    /// order, letting an optimizer update values in place without ever
    /// materialising the flat vectors. Returns `false` when unsupported (the
    /// default), in which case callers fall back to the flat-vector path.
    fn visit_params_for_step(&mut self, f: &mut dyn FnMut(&mut Param)) -> bool {
        let _ = f;
        false
    }

    /// Overwrites all parameters from a flat vector produced by
    /// [`Model::params_flat`] (of this or an architecturally identical model).
    fn set_params_flat(&mut self, flat: &[f32]);

    /// Returns all accumulated gradients concatenated into one flat vector,
    /// in the same order as [`Model::params_flat`].
    fn grads_flat(&self) -> Vec<f32>;

    /// Resets all accumulated gradients to zero.
    fn zero_grads(&mut self);

    /// Restores every layer's stochastic state (dropout mask RNGs, …) to what
    /// a fresh construction-time copy of the model would have; see
    /// [`Layer::reset_stochastic_state`].
    ///
    /// `set_params_flat` + `reset_stochastic_state` together turn a cached,
    /// previously trained model instance into the bitwise equivalent of
    /// `template.clone_model()` + `set_params_flat` — the contract the
    /// persistent client-worker plane in `fedcross-flsim` relies on. The
    /// default is a no-op; models composed of stochastic layers (anything
    /// holding [`layers::Dropout`]) **must** override it and forward the call
    /// to their layers, or cached reuse will silently diverge from
    /// clone-per-round trajectories. [`Sequential`] already does.
    fn reset_stochastic_state(&mut self, rng: &mut SeededRng) {
        let _ = rng;
    }

    /// Clones the model (architecture, parameters and buffers) behind a box.
    fn clone_model(&self) -> Box<dyn Model>;

    /// A short human-readable architecture name (e.g. `"cnn"`, `"resnet20"`).
    fn arch_name(&self) -> &'static str {
        "model"
    }
}

impl Clone for Box<dyn Model> {
    fn clone(&self) -> Self {
        self.clone_model()
    }
}
