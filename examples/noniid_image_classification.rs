//! Non-IID image classification across an AIoT-style camera fleet.
//!
//! The motivating scenario of the paper's introduction: many devices, each
//! seeing a label-skewed slice of the world. This example sweeps the Dirichlet
//! concentration β and shows how FedCross and FedAvg behave as clients become
//! more heterogeneous.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin noniid_image_classification
//! ```

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::partition::skew_score;
use fedcross_data::Heterogeneity;
use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let settings = [
        Heterogeneity::Dirichlet(0.1),
        Heterogeneity::Dirichlet(0.5),
        Heterogeneity::Iid,
    ];

    let sim_config = SimulationConfig {
        rounds: 18,
        clients_per_round: 4,
        eval_every: 3,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 3,
    };

    println!("setting      skew   FedAvg best   FedCross best   gap");
    println!("----------   -----  -----------   -------------   ------");
    for heterogeneity in settings {
        let mut rng = SeededRng::new(11);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 16,
                samples_per_client: 40,
                test_samples: 200,
                ..Default::default()
            },
            heterogeneity,
            &mut rng,
        );
        let skew = skew_score(&data.class_count_matrix());
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (8, 16),
                fc_hidden: 32,
                kernel: 3,
            },
            &mut rng,
        );

        let mut best = Vec::new();
        for spec in [AlgorithmSpec::FedAvg, AlgorithmSpec::fedcross_default()] {
            let mut algorithm = build_algorithm(
                spec,
                template.params_flat(),
                data.num_clients(),
                sim_config.clients_per_round,
            );
            let result = Simulation::new(sim_config, &data, template.clone_model())
                .run(algorithm.as_mut());
            best.push(result.best_accuracy_pct());
        }
        println!(
            "{:<12} {:>5.2}  {:>10.1}%   {:>12.1}%   {:>+5.1}pp",
            heterogeneity.label(),
            skew,
            best[0],
            best[1],
            best[1] - best[0]
        );
    }
    println!("\nExpected: clients' label skew (smaller beta) makes federated training harder,");
    println!("and the multi-model scheme holds up at least as well as single-model FedAvg.");
}
