//! Parameter-free activation layers.

use crate::layer::{Layer, Param};
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// Rectified linear unit layer.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(input.relu_mask());
        input.relu()
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        grad_output.mul(mask)
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        if let Some(old) = self.mask.take() {
            pool.recycle(old);
        }
        let mut mask = pool.take_uninit(input.dims());
        input.relu_mask_into(&mut mask);
        self.mask = Some(mask);
        let mut out = pool.take_uninit(input.dims());
        input.relu_into(&mut out);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let mask = self.mask.as_ref().expect("backward called before forward");
        let mut out = pool.take_uninit(grad_output.dims());
        grad_output.zip_map_into(mask, &mut out, |a, b| a * b);
        out
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic activation: no stochastic state to reset.
    }

    fn name(&self) -> &'static str {
        "relu"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic tangent layer.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a new Tanh layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.tanh();
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward called before forward");
        // d tanh(x)/dx = 1 - tanh(x)^2
        grad_output.zip_map(out, |g, y| g * (1.0 - y * y))
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        if let Some(old) = self.output.take() {
            pool.recycle(old);
        }
        let mut cached = pool.take_uninit(input.dims());
        input.map_into(&mut cached, f32::tanh);
        let out = pool.take_copy(&cached);
        self.output = Some(cached);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let out = self.output.as_ref().expect("backward called before forward");
        let mut grad = pool.take_uninit(grad_output.dims());
        grad_output.zip_map_into(out, &mut grad, |g, y| g * (1.0 - y * y));
        grad
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic activation: no stochastic state to reset.
    }

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Logistic sigmoid layer.
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a new Sigmoid layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.sigmoid();
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward called before forward");
        // dσ(x)/dx = σ(x)(1 - σ(x))
        grad_output.zip_map(out, |g, y| g * y * (1.0 - y))
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        if let Some(old) = self.output.take() {
            pool.recycle(old);
        }
        let mut cached = pool.take_uninit(input.dims());
        input.sigmoid_into(&mut cached);
        let out = pool.take_copy(&cached);
        self.output = Some(cached);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let out = self.output.as_ref().expect("backward called before forward");
        let mut grad = pool.take_uninit(grad_output.dims());
        grad_output.zip_map_into(out, &mut grad, |g, y| g * y * (1.0 - y));
        grad
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic activation: no stochastic state to reset.
    }

    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_activation<L: Layer>(layer: &mut L, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let grad_out = Tensor::ones(out.dims());
        let grad_in = layer.backward(&grad_out);
        let eps = 1e-3;
        for i in 0..x.numel() {
            let mut plus = x.clone();
            plus.data_mut()[i] += eps;
            let mut minus = x.clone();
            minus.data_mut()[i] -= eps;
            let fp = layer.forward(&plus, true).sum();
            let fm = layer.forward(&minus, true).sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad_in.data()[i]).abs() < tol,
                "component {i}: numeric {numeric} vs analytic {}",
                grad_in.data()[i]
            );
        }
    }

    #[test]
    fn relu_forward_and_backward() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[2, 2]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let grad = relu.backward(&Tensor::ones(&[2, 2]));
        assert_eq!(grad.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_matches_finite_differences() {
        let mut layer = Tanh::new();
        let x = Tensor::from_vec(vec![0.3, -0.8, 1.5, 0.0], &[2, 2]);
        finite_diff_activation(&mut layer, &x, 1e-3);
    }

    #[test]
    fn sigmoid_gradient_matches_finite_differences() {
        let mut layer = Sigmoid::new();
        let x = Tensor::from_vec(vec![0.3, -0.8, 1.5, 0.0], &[2, 2]);
        finite_diff_activation(&mut layer, &x, 1e-3);
    }

    #[test]
    fn relu_gradient_matches_finite_differences_away_from_kink() {
        let mut layer = Relu::new();
        let x = Tensor::from_vec(vec![0.5, -0.5, 2.0, -2.0], &[2, 2]);
        finite_diff_activation(&mut layer, &x, 1e-3);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(Tanh::new().param_count(), 0);
        assert_eq!(Sigmoid::new().param_count(), 0);
    }

    #[test]
    fn layer_names() {
        assert_eq!(Relu::new().name(), "relu");
        assert_eq!(Tanh::new().name(), "tanh");
        assert_eq!(Sigmoid::new().name(), "sigmoid");
    }
}
