//! Multi-layer perceptron used for unit tests and quick experiments.

use crate::layers::{Linear, Relu};
use crate::{Model, Sequential};
use fedcross_tensor::SeededRng;

/// Builds a fully-connected ReLU network: `input -> hidden[0] -> ... -> classes`.
pub fn mlp(
    input_dim: usize,
    hidden: &[usize],
    classes: usize,
    rng: &mut SeededRng,
) -> Box<dyn Model> {
    assert!(input_dim > 0 && classes > 0, "dimensions must be positive");
    let mut model = Sequential::new("mlp");
    let mut prev = input_dim;
    for &h in hidden {
        model = model.push(Linear::new(prev, h, rng)).push(Relu::new());
        prev = h;
    }
    model = model.push(Linear::new(prev, classes, rng));
    model.boxed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Sgd;
    use fedcross_tensor::Tensor;

    #[test]
    fn mlp_shapes_and_param_count() {
        let mut rng = SeededRng::new(0);
        let mut model = mlp(10, &[32, 16], 4, &mut rng);
        let x = Tensor::ones(&[3, 10]);
        let y = model.forward(&x, true);
        assert_eq!(y.dims(), &[3, 4]);
        let expected = 10 * 32 + 32 + 32 * 16 + 16 + 16 * 4 + 4;
        assert_eq!(model.param_count(), expected);
        assert_eq!(model.arch_name(), "mlp");
    }

    #[test]
    fn mlp_with_no_hidden_layers_is_logistic_regression() {
        let mut rng = SeededRng::new(1);
        let model = mlp(5, &[], 2, &mut rng);
        assert_eq!(model.param_count(), 5 * 2 + 2);
    }

    #[test]
    fn mlp_learns_xor() {
        let mut rng = SeededRng::new(2);
        let mut model = mlp(2, &[16], 2, &mut rng);
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let labels = vec![0usize, 1, 1, 0];
        let mut sgd = Sgd::new(0.5, 0.9, 0.0);
        for _ in 0..300 {
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            sgd.step(model.as_mut());
        }
        let logits = model.forward(&x, false);
        let acc = crate::loss::accuracy(&logits, &labels);
        assert!(acc > 0.99, "XOR accuracy {acc}");
    }
}
