//! Ablation (extension): robustness to client dropout.
//!
//! The paper assumes every selected client uploads every round. Real
//! federations lose clients mid-round, and FedCross is structurally more
//! exposed than FedAvg: a dropped client means one middleware model simply
//! skips the round. This harness sweeps the per-contact dropout probability
//! for FedAvg and FedCross and reports accuracy plus the realised number of
//! client contacts.
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin ablation_dropout [--rounds N]
//! ```

use fedcross::{build_algorithm, AlgorithmSpec};
use fedcross_bench::report::{format_mean_std, print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, scaled_fedcross, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{AvailabilityModel, Simulation, SimulationConfig};

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());
    let dropout_probs = [0.0f32, 0.1, 0.3, 0.5];

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5));
    let data = build_task(task, &config, config.seed);
    let k = config.clients_per_round.min(data.num_clients());

    println!("Ablation — client dropout robustness (CIFAR-10, beta=0.5, CNN)");
    println!(
        "({} clients, K={}, {} rounds; dropped clients never upload)\n",
        config.num_clients, config.clients_per_round, config.rounds
    );
    print_header(&[
        ("Method", 10),
        ("Dropout", 9),
        ("Accuracy (%)", 16),
        ("Best (%)", 10),
        ("Contacts", 10),
    ]);

    let mut json = Vec::new();
    for &prob in &dropout_probs {
        for spec in [AlgorithmSpec::FedAvg, scaled_fedcross()] {
            let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
            let mut algo = build_algorithm(spec, template.params_flat(), data.num_clients(), k);
            let sim_config = SimulationConfig {
                rounds: config.rounds,
                clients_per_round: k,
                eval_every: config.eval_every,
                eval_batch_size: 64,
                local: config.local,
                seed: config.seed,
            };
            let availability = if prob > 0.0 {
                AvailabilityModel::RandomDropout { prob }
            } else {
                AvailabilityModel::AlwaysOn
            };
            let result = Simulation::new(sim_config, &data, template)
                .with_availability(availability)
                .run(algo.as_mut());
            let (mean, std) = result.history.mean_std_last(3);
            print_row(&[
                (spec.label().to_string(), 10),
                (format!("{:.0}%", prob * 100.0), 9),
                (format_mean_std(mean, std), 16),
                (format!("{:.2}", result.best_accuracy_pct()), 10),
                (format!("{}", result.comm.client_contacts), 10),
            ]);
            json.push(serde_json::json!({
                "method": spec.label(),
                "dropout_prob": prob,
                "accuracy_mean_pct": mean,
                "accuracy_std_pct": std,
                "best_accuracy_pct": result.best_accuracy_pct(),
                "client_contacts": result.comm.client_contacts,
            }));
        }
    }

    write_json("ablation_dropout.json", &json);
    println!("\nExpected shape: both methods degrade gracefully as dropout grows (fewer");
    println!("effective updates per round) and no run crashes or diverges: a FedCross middleware");
    println!("model whose client drops out simply skips the round and is re-dispatched later.");
    println!("FedCross is hit harder at this reduced round budget because every skipped upload");
    println!("also delays middleware unification (its known slow-convergence trait, Sec. IV-F2);");
    println!("use --rounds 60 or --full to approach the paper's regime.");
}
