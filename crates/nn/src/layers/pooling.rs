//! Pooling layers.

use crate::layer::{Layer, Param};
use fedcross_tensor::conv::{
    global_avg_pool2d, global_avg_pool2d_backward, global_avg_pool2d_backward_into,
    global_avg_pool2d_into, max_pool2d, max_pool2d_backward, max_pool2d_backward_into,
    max_pool2d_into, Conv2dGeom,
};
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// 2-D max pooling.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    geom: Conv2dGeom,
    argmax: Option<Vec<usize>>,
    input_dims: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with a square window of side `kernel` and
    /// stride equal to the kernel size (the common non-overlapping case).
    pub fn new(kernel: usize) -> Self {
        Self::with_stride(kernel, kernel)
    }

    /// Creates a max-pooling layer with an explicit stride.
    pub fn with_stride(kernel: usize, stride: usize) -> Self {
        Self {
            geom: Conv2dGeom::new(kernel, stride, 0),
            argmax: None,
            input_dims: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let result = max_pool2d(input, self.geom);
        self.argmax = Some(result.argmax);
        self.input_dims = Some(input.dims().to_vec());
        result.output
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward called before forward");
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward called before forward");
        max_pool2d_backward(grad_output, argmax, dims)
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        let dims = input.dims();
        let oh = self.geom.out_size(dims[2]);
        let ow = self.geom.out_size(dims[3]);
        let mut out = pool.take_uninit(&[dims[0], dims[1], oh, ow]);
        let mut argmax = self.argmax.take().unwrap_or_default();
        max_pool2d_into(input, self.geom, &mut out, &mut argmax);
        self.argmax = Some(argmax);
        match &mut self.input_dims {
            Some(cached) => {
                cached.clear();
                cached.extend_from_slice(dims);
            }
            // alloc: pooled — dims cached on first call; steady rounds take the Some branch
            None => self.input_dims = Some(dims.to_vec()),
        }
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward called before forward");
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward called before forward");
        let mut grad_in = pool.take_uninit(dims);
        max_pool2d_backward_into(grad_output, argmax, dims, &mut grad_in);
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic pooling: no stochastic state.
    }

    fn config_hash(&self, hash: u64) -> u64 {
        // The whole layer is configuration: window size and stride exist in
        // no parameter tensor.
        let hash = crate::fnv1a_mix(hash, &self.geom.kernel.to_le_bytes());
        crate::fnv1a_mix(hash, &self.geom.stride.to_le_bytes())
    }

    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool2d {
    input_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.input_dims = Some(input.dims().to_vec());
        global_avg_pool2d(input)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward called before forward");
        global_avg_pool2d_backward(grad_output, dims)
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        match &mut self.input_dims {
            Some(cached) => {
                cached.clear();
                cached.extend_from_slice(input.dims());
            }
            // alloc: pooled — dims cached on first call; steady rounds take the Some branch
            None => self.input_dims = Some(input.dims().to_vec()),
        }
        let dims = input.dims();
        let mut out = pool.take_uninit(&[dims[0], dims[1]]);
        global_avg_pool2d_into(input, &mut out);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward called before forward");
        let mut out = pool.take_uninit(dims);
        global_avg_pool2d_backward_into(grad_output, dims, &mut out);
        out
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Deterministic pooling: no stochastic state.
    }

    fn name(&self) -> &'static str {
        "global_avg_pool2d"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_halves_spatial_size() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::arange(32).reshape(&[1, 2, 4, 4]);
        let y = pool.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2, 2, 2]);
    }

    #[test]
    fn maxpool_backward_routes_to_maxima() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 9.0, 3.0, 2.0], &[1, 1, 2, 2]);
        pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![7.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn gradient_of_sum_through_maxpool_is_indicator_of_max() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![0.1, 0.9, 0.4, 0.2, 0.8, 0.3, 0.7, 0.5, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85],
            &[1, 1, 4, 4],
        );
        let y = pool.forward(&x, true);
        let grad = pool.backward(&Tensor::ones(y.dims()));
        // Exactly one non-zero per pooling window.
        let nonzero = grad.data().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(nonzero, 4);
        assert_eq!(grad.sum(), 4.0);
    }

    #[test]
    fn global_avg_pool_reduces_to_channel_means() {
        let mut pool = GlobalAvgPool2d::new();
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2]);
        let y = pool.forward(&x, true);
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 2.0]);
        let g = pool.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pooling_layers_have_no_params() {
        assert_eq!(MaxPool2d::new(2).param_count(), 0);
        assert_eq!(GlobalAvgPool2d::new().param_count(), 0);
    }
}
