//! Reductions, norms, distances and model-similarity measures.
//!
//! [`cosine_similarity`] is the similarity measure FedCross uses to pick
//! collaborative models (Section III-B1 of the paper); the flat-parameter
//! variants here operate directly on the flattened model vectors that the
//! cloud server holds.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        self.sum() / self.numel() as f32
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        let mean = self.mean();
        self.data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / self.numel() as f32
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in a rank-1 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        self.data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Row-wise argmax of a rank-2 tensor (one index per row).
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let cols = self.dims()[1];
        self.data()
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Dot product with another tensor of identical shape.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot: element counts differ ({} vs {})",
            self.numel(),
            other.numel()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data().iter().map(|&x| x.abs()).sum()
    }

    /// Squared Euclidean distance to another tensor of identical shape.
    pub fn squared_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "squared_distance: element counts differ"
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean distance to another tensor of identical shape.
    pub fn distance(&self, other: &Tensor) -> f32 {
        self.squared_distance(other).sqrt()
    }
}

/// Cosine similarity between two flat parameter slices.
///
/// Defined as `<x, y> / (||x|| * ||y||)` and clamped to `[-1, 1]`; returns 0
/// when either vector has (near-)zero norm so that freshly-initialised models
/// never produce NaNs in the selection strategies.
pub fn cosine_similarity(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "cosine_similarity: lengths differ");
    let mut dot = 0f64;
    let mut nx = 0f64;
    let mut ny = 0f64;
    for (&a, &b) in x.iter().zip(y) {
        dot += a as f64 * b as f64;
        nx += a as f64 * a as f64;
        ny += b as f64 * b as f64;
    }
    let denom = nx.sqrt() * ny.sqrt();
    if denom <= f64::MIN_POSITIVE {
        return 0.0;
    }
    (dot / denom).clamp(-1.0, 1.0) as f32
}

/// Cosine similarity between two tensors of identical element count.
pub fn cosine_similarity_tensors(x: &Tensor, y: &Tensor) -> f32 {
    cosine_similarity(x.data(), y.data())
}

/// Euclidean distance between two flat parameter slices.
pub fn euclidean_distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "euclidean_distance: lengths differ");
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt() as f32
}

/// Mean of a slice of f32 values (0 for an empty slice).
pub fn mean_of(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Sample standard deviation of a slice (0 for fewer than two values).
pub fn std_dev_of(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = mean_of(values);
    let var = values
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<f32>()
        / (values.len() - 1) as f32;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_variance() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn max_min_argmax() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 7.0, 2.0], &[4]);
        assert_eq!(t.max(), 7.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.l2_norm(), 5.0);
        assert_eq!(a.l1_norm(), 7.0);
    }

    #[test]
    fn distances() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.squared_distance(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn cosine_similarity_identical_vectors_is_one() {
        let x = vec![0.5, -1.0, 2.0, 3.0];
        assert!((cosine_similarity(&x, &x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_opposite_vectors_is_minus_one() {
        let x = vec![1.0, 2.0, -3.0];
        let y: Vec<f32> = x.iter().map(|v| -v).collect();
        assert!((cosine_similarity(&x, &y) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_orthogonal_vectors_is_zero() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 1.0];
        assert!(cosine_similarity(&x, &y).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_scale_invariant() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.2, -0.4, 1.7];
        let scaled: Vec<f32> = y.iter().map(|v| v * 42.0).collect();
        assert!((cosine_similarity(&x, &y) - cosine_similarity(&x, &scaled)).abs() < 1e-5);
    }

    #[test]
    fn cosine_similarity_zero_vector_returns_zero() {
        let x = vec![0.0, 0.0, 0.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(cosine_similarity(&x, &y), 0.0);
    }

    #[test]
    fn cosine_similarity_tensor_wrapper() {
        let a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        assert!((cosine_similarity_tensors(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn euclidean_distance_matches_tensor_distance() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 6.0, 3.0];
        assert!((euclidean_distance(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mean_and_std_helpers() {
        assert_eq!(mean_of(&[]), 0.0);
        assert_eq!(mean_of(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev_of(&[1.0]), 0.0);
        let sd = std_dev_of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 1e-2);
    }
}
