//! Criterion benchmarks of the persistent round plane (PR 3): steady-state
//! rounds on warm cached workers vs. the historical clone-per-round path, and
//! pooled vs. clone-per-call evaluation. These isolate exactly the costs the
//! `ClientWorkerPool` / `EvalWorker` refactor removes from every round of a
//! multi-round simulation.
//!
//! `FEDCROSS_BENCH_SMOKE=1` shrinks every benchmark to a 2-sample smoke run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fedcross::{FedCross, FedCrossConfig};
use fedcross_bench::{build_model, build_task, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{
    ClientWorkerPool, CommTracker, EvalWorker, FederatedAlgorithm, LocalTrainConfig,
};
use fedcross_tensor::SeededRng;

fn sample_size() -> usize {
    if std::env::var_os("FEDCROSS_BENCH_SMOKE").is_some() {
        2
    } else {
        10
    }
}

fn bench_round_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_plane");
    group.sample_size(sample_size());

    let config = ExperimentConfig {
        num_clients: 8,
        clients_per_round: 4,
        samples_per_client: 20,
        test_samples: 40,
        rounds: 1,
        eval_every: 1,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 5,
    };
    let data = build_task(TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5)), &config, 5);
    let template = build_model(ModelSpec::Cnn, &data, 6);
    let make_algorithm = || {
        FedCross::new(
            FedCrossConfig::default(),
            template.params_flat(),
            config.clients_per_round,
        )
    };

    // Steady-state FedCross round on warm workers (the cost a multi-round
    // simulation pays every round after warm-up).
    group.bench_function("fedcross_round_persistent_workers", |b| {
        let mut plane = ClientWorkerPool::new();
        b.iter(|| {
            let mut algorithm = make_algorithm();
            let mut comm = CommTracker::new();
            let mut ctx = RoundContext::new(
                &data,
                template.as_ref(),
                config.local,
                config.clients_per_round,
                SeededRng::new(9),
                &mut comm,
            )
            .with_worker_pool(&mut plane);
            black_box(algorithm.run_round(0, &mut ctx));
        })
    });

    // The same round with a cold context-owned pool: every iteration clones
    // one model per job, which is exactly the pre-PR-3 per-round cost.
    group.bench_function("fedcross_round_clone_per_round", |b| {
        b.iter(|| {
            let mut algorithm = make_algorithm();
            let mut comm = CommTracker::new();
            let mut ctx = RoundContext::new(
                &data,
                template.as_ref(),
                config.local,
                config.clients_per_round,
                SeededRng::new(9),
                &mut comm,
            );
            black_box(algorithm.run_round(0, &mut ctx));
        })
    });

    // Evaluation: cached worker vs. clone-per-call.
    let params = template.params_flat();
    group.bench_function("eval_pooled_worker", |b| {
        let mut worker = EvalWorker::new(template.as_ref());
        b.iter(|| {
            black_box(worker.evaluate_params(&params, data.test_set(), 16));
        })
    });
    group.bench_function("eval_clone_per_call", |b| {
        b.iter(|| {
            black_box(fedcross_flsim::eval::evaluate_params(
                template.as_ref(),
                &params,
                data.test_set(),
                16,
            ));
        })
    });

    group.finish();
}

criterion_group!(benches, bench_round_plane);
criterion_main!(benches);
