//! Federated dataset assembly: one [`Dataset`] per client plus a global test
//! set, for each of the five benchmark tasks of the paper.

use crate::dataset::Dataset;
use crate::partition::{partition, Heterogeneity};
use crate::synth::images::{SynthImageConfig, SynthImages};
use crate::synth::text::{NextCharConfig, SentimentConfig, SynthNextChar, SynthSentiment};
use fedcross_tensor::SeededRng;

/// A federated learning task: per-client training data and a held-out global
/// test set used by the server for evaluation.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    name: String,
    clients: Vec<Dataset>,
    test: Dataset,
    num_classes: usize,
}

impl FederatedDataset {
    /// Assembles a federated dataset from already-partitioned client data.
    ///
    /// # Panics
    /// Panics if there are no clients or class counts disagree.
    pub fn from_parts(name: impl Into<String>, clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client");
        let num_classes = test.num_classes();
        assert!(
            clients.iter().all(|c| c.num_classes() == num_classes),
            "all clients must share the test set's class space"
        );
        Self {
            name: name.into(),
            clients,
            test,
            num_classes,
        }
    }

    /// Task name (e.g. `"synth-cifar10"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Decomposes the dataset into `(name, clients, test)`, handing ownership
    /// of the per-client shards to the caller. Used by the eager
    /// [`crate::source::ClientDataSource`] adapter to wrap each shard in an
    /// `Arc` without copying it.
    pub fn into_parts(self) -> (String, Vec<Dataset>, Dataset) {
        (self.name, self.clients, self.test)
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// A single client's training data.
    pub fn client(&self, i: usize) -> &Dataset {
        &self.clients[i]
    }

    /// All clients' training data.
    pub fn clients(&self) -> &[Dataset] {
        &self.clients
    }

    /// The held-out global test set.
    pub fn test_set(&self) -> &Dataset {
        &self.test
    }

    /// Number of classes in the task.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Per-client training sample counts.
    pub fn client_sizes(&self) -> Vec<usize> {
        self.clients.iter().map(Dataset::len).collect()
    }

    /// Total number of training samples across all clients.
    pub fn total_train_samples(&self) -> usize {
        self.client_sizes().iter().sum()
    }

    /// Per-client per-class sample counts (the data behind the paper's
    /// Figure 3 dot plots).
    pub fn class_count_matrix(&self) -> Vec<Vec<usize>> {
        self.clients
            .iter()
            .map(|c| c.class_counts())
            .collect()
    }

    // ------------------------------------------------------------------
    // Image tasks (CIFAR-10 / CIFAR-100 stand-ins, Dirichlet or IID split)
    // ------------------------------------------------------------------

    fn synth_image_task(
        name: &str,
        image_config: SynthImageConfig,
        num_clients: usize,
        samples_per_client: usize,
        test_samples: usize,
        heterogeneity: Heterogeneity,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(num_clients > 0 && samples_per_client > 0);
        let generator = SynthImages::new(image_config, &mut rng.fork(1)); // fork: construction-seed
        let total = num_clients * samples_per_client;
        let pool = generator.generate(total, &mut rng.fork(2)); // fork: construction-seed
        let shards = partition(
            pool.labels(),
            pool.num_classes(),
            num_clients,
            heterogeneity,
            &mut rng.fork(3), // fork: construction-seed
        );
        let clients = shards.iter().map(|s| pool.subset(s)).collect();
        let test = generator.generate(test_samples.max(1), &mut rng.fork(4)); // fork: construction-seed
        Self::from_parts(format!("{name}[{}]", heterogeneity.label()), clients, test)
    }

    /// CIFAR-10 stand-in, 10 classes, Dirichlet or IID client split.
    pub fn synth_cifar10(
        config: &SynthCifar10Config,
        heterogeneity: Heterogeneity,
        rng: &mut SeededRng,
    ) -> Self {
        Self::synth_image_task(
            "synth-cifar10",
            config.image,
            config.num_clients,
            config.samples_per_client,
            config.test_samples,
            heterogeneity,
            rng,
        )
    }

    /// CIFAR-100 stand-in, 100 classes, Dirichlet or IID client split.
    pub fn synth_cifar100(
        config: &SynthCifar100Config,
        heterogeneity: Heterogeneity,
        rng: &mut SeededRng,
    ) -> Self {
        Self::synth_image_task(
            "synth-cifar100",
            config.image,
            config.num_clients,
            config.samples_per_client,
            config.test_samples,
            heterogeneity,
            rng,
        )
    }

    /// FEMNIST stand-in: naturally non-IID — every client is one writer with
    /// its own style offset and its own subset of character classes.
    pub fn synth_femnist(config: &SynthFemnistConfig, rng: &mut SeededRng) -> Self {
        assert!(config.num_clients > 0 && config.samples_per_client > 0);
        assert!(config.classes_per_client >= 1);
        let generator = SynthImages::new(config.image, &mut rng.fork(1)); // fork: construction-seed
        let num_classes = config.image.num_classes;
        let mut clients = Vec::with_capacity(config.num_clients);
        for client_id in 0..config.num_clients {
            let mut client_rng = rng.fork(100 + client_id as u64); // fork: construction-seed
            let style = generator.style_pattern(config.style_strength, &mut client_rng);
            let class_subset = client_rng.sample_without_replacement(
                num_classes,
                config.classes_per_client.min(num_classes),
            );
            clients.push(generator.generate_with(
                config.samples_per_client,
                Some(&class_subset),
                Some(&style),
                &mut client_rng,
            ));
        }
        // Test set: unstyled samples from the full class space.
        let test = generator.generate(config.test_samples.max(1), &mut rng.fork(2)); // fork: construction-seed
        Self::from_parts("synth-femnist", clients, test)
    }

    /// Shakespeare stand-in: naturally non-IID next-character prediction where
    /// every client is one "role" with its own character transition table.
    pub fn synth_shakespeare(config: &SynthShakespeareConfig, rng: &mut SeededRng) -> Self {
        assert!(config.num_clients > 0 && config.samples_per_client > 0);
        let corpus = SynthNextChar::new(config.text, &mut rng.fork(1)); // fork: construction-seed
        let mut clients = Vec::with_capacity(config.num_clients);
        for client_id in 0..config.num_clients {
            clients.push(corpus.generate_for_client(
                config.samples_per_client,
                client_id as u64,
                &mut rng.fork(100 + client_id as u64), // fork: construction-seed
            ));
        }
        // Test set: a mixture over all personas, matching LEAF's held-out users.
        let per_client_test =
            (config.test_samples / config.num_clients).max(1);
        let test_parts: Vec<Dataset> = (0..config.num_clients)
            .map(|client_id| {
                corpus.generate_for_client(
                    per_client_test,
                    client_id as u64,
                    &mut rng.fork(10_000 + client_id as u64), // fork: construction-seed
                )
            })
            .collect();
        let test_refs: Vec<&Dataset> = test_parts.iter().collect();
        let test = Dataset::concat(&test_refs);
        Self::from_parts("synth-shakespeare", clients, test)
    }

    /// Sent140 stand-in: naturally non-IID binary sentiment where every client
    /// is one user with its own topic/vocabulary bias.
    pub fn synth_sent140(config: &SynthSent140Config, rng: &mut SeededRng) -> Self {
        assert!(config.num_clients > 0 && config.samples_per_client > 0);
        let corpus = SynthSentiment::new(config.text);
        let mut clients = Vec::with_capacity(config.num_clients);
        for client_id in 0..config.num_clients {
            clients.push(corpus.generate_for_client(
                config.samples_per_client,
                client_id as u64,
                &mut rng.fork(100 + client_id as u64), // fork: construction-seed
            ));
        }
        let per_client_test = (config.test_samples / config.num_clients).max(1);
        let test_parts: Vec<Dataset> = (0..config.num_clients)
            .map(|client_id| {
                corpus.generate_for_client(
                    per_client_test,
                    client_id as u64,
                    &mut rng.fork(10_000 + client_id as u64), // fork: construction-seed
                )
            })
            .collect();
        let test_refs: Vec<&Dataset> = test_parts.iter().collect();
        let test = Dataset::concat(&test_refs);
        Self::from_parts("synth-sent140", clients, test)
    }
}

/// Configuration of the CIFAR-10 stand-in task.
#[derive(Debug, Clone, Copy)]
pub struct SynthCifar10Config {
    /// Number of clients (the paper uses 100).
    pub num_clients: usize,
    /// Training samples generated per client (before Dirichlet skew).
    pub samples_per_client: usize,
    /// Held-out global test samples.
    pub test_samples: usize,
    /// Underlying image distribution.
    pub image: SynthImageConfig,
}

impl Default for SynthCifar10Config {
    fn default() -> Self {
        Self {
            num_clients: 100,
            samples_per_client: 50,
            test_samples: 500,
            image: SynthImageConfig::cifar10(),
        }
    }
}

/// Configuration of the CIFAR-100 stand-in task.
#[derive(Debug, Clone, Copy)]
pub struct SynthCifar100Config {
    /// Number of clients.
    pub num_clients: usize,
    /// Training samples generated per client.
    pub samples_per_client: usize,
    /// Held-out global test samples.
    pub test_samples: usize,
    /// Underlying image distribution.
    pub image: SynthImageConfig,
}

impl Default for SynthCifar100Config {
    fn default() -> Self {
        Self {
            num_clients: 100,
            samples_per_client: 50,
            test_samples: 1000,
            image: SynthImageConfig::cifar100(),
        }
    }
}

/// Configuration of the FEMNIST stand-in task.
#[derive(Debug, Clone, Copy)]
pub struct SynthFemnistConfig {
    /// Number of writer clients (the paper uses 180).
    pub num_clients: usize,
    /// Samples per writer.
    pub samples_per_client: usize,
    /// Held-out global test samples.
    pub test_samples: usize,
    /// Character classes each writer actually uses.
    pub classes_per_client: usize,
    /// Strength of the per-writer style offset.
    pub style_strength: f32,
    /// Underlying image distribution.
    pub image: SynthImageConfig,
}

impl Default for SynthFemnistConfig {
    fn default() -> Self {
        Self {
            num_clients: 180,
            samples_per_client: 40,
            test_samples: 800,
            classes_per_client: 16,
            style_strength: 0.5,
            image: SynthImageConfig::femnist(),
        }
    }
}

/// Configuration of the Shakespeare stand-in task.
#[derive(Debug, Clone, Copy)]
pub struct SynthShakespeareConfig {
    /// Number of role clients (the paper uses 128).
    pub num_clients: usize,
    /// Sequences per role.
    pub samples_per_client: usize,
    /// Held-out test sequences (drawn across all roles).
    pub test_samples: usize,
    /// Underlying language model.
    pub text: NextCharConfig,
}

impl Default for SynthShakespeareConfig {
    fn default() -> Self {
        Self {
            num_clients: 128,
            samples_per_client: 60,
            test_samples: 640,
            text: NextCharConfig::default(),
        }
    }
}

/// Configuration of the Sent140 stand-in task.
#[derive(Debug, Clone, Copy)]
pub struct SynthSent140Config {
    /// Number of user clients (the paper uses 803).
    pub num_clients: usize,
    /// Tweets per user.
    pub samples_per_client: usize,
    /// Held-out test tweets (drawn across all users).
    pub test_samples: usize,
    /// Underlying sentiment distribution.
    pub text: SentimentConfig,
}

impl Default for SynthSent140Config {
    fn default() -> Self {
        Self {
            num_clients: 803,
            samples_per_client: 40,
            test_samples: 800,
            text: SentimentConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::skew_score;

    fn small_cifar_config() -> SynthCifar10Config {
        SynthCifar10Config {
            num_clients: 10,
            samples_per_client: 20,
            test_samples: 50,
            ..Default::default()
        }
    }

    #[test]
    fn cifar10_task_has_expected_structure() {
        let mut rng = SeededRng::new(0);
        let fed = FederatedDataset::synth_cifar10(
            &small_cifar_config(),
            Heterogeneity::Iid,
            &mut rng,
        );
        assert_eq!(fed.num_clients(), 10);
        assert_eq!(fed.num_classes(), 10);
        assert_eq!(fed.total_train_samples(), 200);
        assert_eq!(fed.test_set().len(), 50);
        assert!(fed.name().contains("cifar10"));
        assert!(fed.name().contains("IID"));
    }

    #[test]
    fn dirichlet_split_is_more_skewed_than_iid() {
        let mut rng = SeededRng::new(1);
        let config = SynthCifar10Config {
            num_clients: 20,
            samples_per_client: 50,
            test_samples: 20,
            ..Default::default()
        };
        let iid = FederatedDataset::synth_cifar10(&config, Heterogeneity::Iid, &mut SeededRng::new(2));
        let skewed =
            FederatedDataset::synth_cifar10(&config, Heterogeneity::Dirichlet(0.1), &mut rng);
        let iid_skew = skew_score(&iid.class_count_matrix());
        let dir_skew = skew_score(&skewed.class_count_matrix());
        assert!(
            dir_skew > iid_skew + 0.15,
            "Dirichlet skew {dir_skew} vs IID skew {iid_skew}"
        );
    }

    #[test]
    fn cifar100_has_100_classes() {
        let mut rng = SeededRng::new(3);
        let config = SynthCifar100Config {
            num_clients: 5,
            samples_per_client: 10,
            test_samples: 30,
            ..Default::default()
        };
        let fed = FederatedDataset::synth_cifar100(&config, Heterogeneity::Dirichlet(0.5), &mut rng);
        assert_eq!(fed.num_classes(), 100);
        assert_eq!(fed.num_clients(), 5);
    }

    #[test]
    fn femnist_clients_use_restricted_class_subsets() {
        let mut rng = SeededRng::new(4);
        let config = SynthFemnistConfig {
            num_clients: 8,
            samples_per_client: 30,
            test_samples: 40,
            classes_per_client: 5,
            ..Default::default()
        };
        let fed = FederatedDataset::synth_femnist(&config, &mut rng);
        assert_eq!(fed.num_clients(), 8);
        assert_eq!(fed.num_classes(), 62);
        for counts in fed.class_count_matrix() {
            let used = counts.iter().filter(|&&c| c > 0).count();
            assert!(used <= 5, "client uses {used} classes, expected <= 5");
        }
        // Test set spans more classes than any single client.
        let test_classes = fed.test_set().class_counts().iter().filter(|&&c| c > 0).count();
        assert!(test_classes > 5);
    }

    #[test]
    fn shakespeare_task_structure() {
        let mut rng = SeededRng::new(5);
        let config = SynthShakespeareConfig {
            num_clients: 6,
            samples_per_client: 15,
            test_samples: 30,
            ..Default::default()
        };
        let fed = FederatedDataset::synth_shakespeare(&config, &mut rng);
        assert_eq!(fed.num_clients(), 6);
        assert_eq!(fed.num_classes(), config.text.vocab);
        assert_eq!(fed.client(0).sample_dims(), &[config.text.seq_len]);
        assert!(fed.test_set().len() >= 6);
    }

    #[test]
    fn sent140_task_structure() {
        let mut rng = SeededRng::new(6);
        let config = SynthSent140Config {
            num_clients: 7,
            samples_per_client: 12,
            test_samples: 35,
            ..Default::default()
        };
        let fed = FederatedDataset::synth_sent140(&config, &mut rng);
        assert_eq!(fed.num_clients(), 7);
        assert_eq!(fed.num_classes(), 2);
        assert!(fed.total_train_samples() == 84);
    }

    #[test]
    fn federated_dataset_is_deterministic_per_seed() {
        let config = small_cifar_config();
        let a = FederatedDataset::synth_cifar10(&config, Heterogeneity::Dirichlet(0.5), &mut SeededRng::new(9));
        let b = FederatedDataset::synth_cifar10(&config, Heterogeneity::Dirichlet(0.5), &mut SeededRng::new(9));
        assert_eq!(a.client_sizes(), b.client_sizes());
        assert_eq!(
            a.client(0).features().data(),
            b.client(0).features().data()
        );
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_empty_clients() {
        let test = Dataset::empty(&[4], 2);
        let _ = FederatedDataset::from_parts("x", Vec::new(), test);
    }
}
