//! Criterion micro-benchmarks of the Byzantine-robust aggregation kernels:
//! coordinate-wise median, trimmed mean, (multi-)Krum selection and the
//! norm-bounded mean, at the same upload shapes as the `aggregation` bench
//! so the overhead of robustness over plain averaging is directly readable.
//!
//! Median and trimmed mean sort every coordinate column (O(dim · n log n)),
//! Krum is O(n² · dim) pairwise distances; all three parallelise over
//! coordinate chunks / candidates once the workload crosses the rayon
//! threshold, with bitwise-identical serial and parallel results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::aggregation::{
    coordinate_median_into, multi_krum_select, norm_bounded_mean_into, trimmed_mean_into,
};
use fedcross_nn::params::average_into;
use fedcross_tensor::SeededRng;

fn make_uploads(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
        .collect()
}

fn bench_robust_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("robust_aggregation");
    group.sample_size(20);

    for &dim in &[10_000usize, 100_000] {
        let uploads = make_uploads(10, dim, 7);
        let anchor: Vec<f32> = make_uploads(1, dim, 8).pop().unwrap();
        let mut out = vec![0f32; dim];

        // The non-robust baseline every rule is paying over.
        group.bench_with_input(BenchmarkId::new("plain_mean_into", dim), &dim, |b, _| {
            b.iter(|| {
                average_into(&mut out, &uploads);
                black_box(out.len())
            })
        });
        group.bench_with_input(
            BenchmarkId::new("coordinate_median_into", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    coordinate_median_into(&mut out, &uploads);
                    black_box(out.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("trimmed_mean_into_t0.2", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    trimmed_mean_into(&mut out, &uploads, 0.2);
                    black_box(out.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("multi_krum_select_f2_m3", dim),
            &dim,
            |b, _| b.iter(|| black_box(multi_krum_select(&uploads, 2, 3))),
        );
        group.bench_with_input(
            BenchmarkId::new("norm_bounded_mean_into_c1", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    norm_bounded_mean_into(&mut out, &anchor, &uploads, 1.0);
                    black_box(out.len())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_robust_aggregation);
criterion_main!(benches);
