//! FedAvg (McMahan et al. 2017): the classic one-to-multi baseline.

use fedcross_flsim::checkpoint::{AlgorithmState, StateError};
use fedcross_flsim::engine::{canonicalize_updates, FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_nn::params::{weighted_average_into, ParamBlock};

/// Federated Averaging: dispatch the single global model to `K` selected
/// clients, then replace it with the sample-count-weighted average of their
/// locally trained models.
///
/// The global model lives on the copy-on-write parameter plane: dispatch is a
/// reference bump per client, and the aggregation writes the new average into
/// the retired global buffer in place.
pub struct FedAvg {
    global: ParamBlock,
}

impl FedAvg {
    /// Creates FedAvg from the initial global model parameters.
    pub fn new(init_params: Vec<f32>) -> Self {
        assert!(!init_params.is_empty(), "initial parameters must not be empty");
        Self {
            global: ParamBlock::from(init_params),
        }
    }

    /// The current global model parameters.
    pub fn global(&self) -> &[f32] {
        &self.global
    }
}

impl FederatedAlgorithm for FedAvg {
    fn name(&self) -> String {
        // alloc: cold — identity string for reporting, built outside the per-round loop
        "fedavg".to_string()
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .map(|&client| (client, self.global.clone()))
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        let mut updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        // Aggregate in dispatch order regardless of upload arrival order
        // (bitwise no-op on an unshuffled round).
        canonicalize_updates(&mut updates, &selected);
        if updates.is_empty() {
            // Every selected client dropped out this round (possible under an
            // availability model); the global model simply carries over.
            return RoundReport::default();
        }

        // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
        let params: Vec<&[f32]> = updates.iter().map(|u| u.params.as_slice()).collect();
        let weights: Vec<f32> = updates
            .iter()
            .map(|u| u.num_samples.max(1) as f32)
            // alloc: bounded — cohort-sized per-round dispatch/bookkeeping, inside the round_alloc ceiling
            .collect();
        // The dispatch references are gone, so the retired global buffer is
        // unique again and the average lands in it without an allocation.
        weighted_average_into(self.global.make_mut(), &params, &weights);
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }

    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        // The global model is the whole training state (reference bump).
        Ok(AlgorithmState::single_model(self.global.clone()))
    }

    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        self.global = state.expect_single_model(self.global.len())?.clone();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::test_support::{quick_config, tiny_image_setup};
    use fedcross_nn::params::weighted_average;
    use fedcross_flsim::Simulation;

    #[test]
    fn fedavg_runs_and_updates_the_global_model() {
        let (data, template) = tiny_image_setup(0, 6);
        let init = template.params_flat();
        let mut algo = FedAvg::new(init.clone());
        let sim = Simulation::new(quick_config(3, 3), &data, template);
        let result = sim.run(&mut algo);
        assert_eq!(result.history.len(), 3);
        assert_ne!(algo.global_params(), init);
        assert_eq!(result.comm.client_contacts, 9);
        assert_eq!(
            result.comm.overhead_class(result.model_params),
            fedcross_flsim::CommOverheadClass::Low
        );
    }

    #[test]
    fn fedavg_learns_above_chance() {
        let (data, template) = tiny_image_setup(1, 6);
        let mut algo = FedAvg::new(template.params_flat());
        let mut config = quick_config(10, 3);
        config.local.epochs = 2;
        config.local.lr = 0.1;
        let sim = Simulation::new(config, &data, template);
        let result = sim.run(&mut algo);
        assert!(
            result.history.best_accuracy() > 0.2,
            "best accuracy {}",
            result.history.best_accuracy()
        );
    }

    #[test]
    fn aggregation_weights_by_sample_count() {
        // Construct updates by hand through the public API of weighted_average:
        // a client with three times the data pulls the average three times harder.
        let params = vec![vec![0.0f32], vec![4.0f32]];
        let avg = weighted_average(&params, &[1.0, 3.0]);
        assert!((avg[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn empty_initialisation_is_rejected() {
        let _ = FedAvg::new(Vec::new());
    }
}
