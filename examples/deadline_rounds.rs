//! Deadline rounds under stragglers, with a mid-run crash and resume.
//!
//! A third of the fleet runs on 8× slower hardware ([`DeviceModel`]), and the
//! server closes each round after a fixed latency budget
//! ([`RoundPolicy::Deadline`]): uploads that miss the budget are discarded
//! (FedCross carries the unreported middleware slots over), unless the
//! `min_quorum` rescue keeps the round from starving. Half-way through, the
//! server "crashes", checkpoints are reloaded, and the run finishes —
//! **bitwise identically** to an uninterrupted run, because straggler
//! membership, per-round latencies and fault draws are all pure functions of
//! `(seed, round, client)`, never of wall-clock time or process state.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin deadline_rounds
//! ```

use fedcross::{FedCross, FedCrossConfig};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    Checkpoint, DeviceModel, FederatedAlgorithm, LocalTrainConfig, RoundPolicy, Simulation,
    SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(55);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );

    // 30% of clients are 8x slower; a 2.0 budget means "wait twice as long as
    // a nominal device needs", so every straggler upload blows the deadline.
    let devices = DeviceModel::two_tier(0.3, 8.0, 23);
    let policy = RoundPolicy::Deadline {
        budget: 2.0,
        min_quorum: 2,
    };
    let stragglers: Vec<usize> = (0..data.num_clients())
        .filter(|&c| devices.is_straggler(c))
        .collect();
    println!(
        "fleet: {} clients, stragglers {stragglers:?} ({}), policy deadline(2.0, q=2)",
        data.num_clients(),
        devices.label()
    );

    let fed_config = FedCrossConfig {
        alpha: 0.9,
        ..Default::default()
    };
    let sim_config = SimulationConfig {
        rounds: 20,
        clients_per_round: 4,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 13,
    };
    let halfway = sim_config.rounds / 2;
    let sim = Simulation::new(sim_config, &data, template.clone_model())
        .with_devices(devices)
        .with_round_policy(policy);

    // Reference: the same 20 deadline rounds with no interruption.
    let mut reference = FedCross::new(fed_config, template.params_flat(), 4);
    let uninterrupted = sim.run(&mut reference);
    println!(
        "reference run: accuracy {:.1}%, {} uploads missed the deadline, {} rescued by quorum",
        uninterrupted.final_accuracy_pct(),
        uninterrupted.faults.missed_deadline,
        uninterrupted.faults.quorum_rescued,
    );

    // Phase 1: half the run, then the server dies mid-training.
    let mut algo = FedCross::new(fed_config, template.params_flat(), 4);
    let partial = sim.run_segment(&mut algo, 0, halfway);
    println!(
        "phase 1: rounds 0..{halfway}, accuracy so far {:.1}%, {} deadline misses",
        partial.final_accuracy_pct(),
        partial.faults.missed_deadline,
    );
    let checkpoint_path = std::env::temp_dir().join("fedcross-example-deadline.json");
    sim.checkpoint(&algo, &partial)
        .expect("FedCross supports checkpointing")
        .save(&checkpoint_path)
        .expect("checkpoint saves");
    drop(algo);

    // Phase 2: restart. Latency draws are keyed by (seed, round, client), so
    // the resumed rounds see the exact same stragglers missing the exact same
    // deadlines as the uninterrupted run.
    let restored = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut resumed = FedCross::new(fed_config, template.params_flat(), 4);
    let second = sim
        .resume(&restored, &mut resumed)
        .expect("checkpoint matches the resuming simulation");
    println!(
        "phase 2 (resumed): rounds {halfway}..{}, final accuracy {:.1}%",
        sim_config.rounds,
        second.final_accuracy_pct()
    );

    // The crash was a non-event: identical bits, identical curve, identical
    // communication totals.
    let identical = reference
        .global_params()
        .iter()
        .zip(resumed.global_params())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && uninterrupted.history == second.history
        && uninterrupted.comm == second.comm;
    println!(
        "resumed deadline run is bitwise identical to the uninterrupted run: {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    assert!(identical, "resume must be a non-event");

    let _ = std::fs::remove_file(&checkpoint_path);
    println!("\nExpected: the straggler set and every deadline decision replay exactly");
    println!("across the restart — fault-tolerant rounds and fault-tolerant servers compose.");
}
