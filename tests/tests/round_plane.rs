//! Equivalence tests for the persistent round plane (PR 3).
//!
//! The engine now trains on cached worker models (`ClientWorkerPool`) and
//! evaluates through a cached evaluation model (`EvalWorker`) instead of
//! cloning the template for every job and every evaluation. These tests pin
//! the central claim of that refactor: **reuse changes nothing but the
//! allocation profile.** Fixed-seed trajectories through persistent workers
//! are bitwise identical to the historical clone-per-round pipeline —
//! across FedCross and the baselines, across every availability model, and
//! through models with stochastic (dropout) layers, which is exactly where
//! naive model caching would silently diverge.

use fedcross::baselines::{FedAvg, FedProx};
use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{
    AvailabilityModel, ClientWorkerPool, CommTracker, EvalWorker, FederatedAlgorithm,
    LocalTrainConfig,
};
use fedcross_nn::layers::{Dropout, Flatten, Linear, Relu};
use fedcross_nn::{Model, Sequential};
use fedcross_tensor::SeededRng;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn image_task(seed: u64, clients: usize) -> FederatedDataset {
    let mut rng = SeededRng::new(seed);
    FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: 18,
            test_samples: 24,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    )
}

/// A small model that *contains dropout*: the one layer whose naive reuse
/// across rounds breaks trajectories (its mask RNG would keep running instead
/// of restarting like a fresh clone's). Flatten lets it consume the synthetic
/// CIFAR images directly.
fn dropout_model(seed: u64) -> Box<dyn Model> {
    let mut rng = SeededRng::new(seed);
    Sequential::new("dropout-mlp")
        .push(Flatten::new())
        .push(Linear::new(3 * 16 * 16, 24, &mut rng))
        .push(Relu::new())
        .push(Dropout::new(0.3, &mut rng))
        .push(Linear::new(24, 10, &mut rng))
        .boxed()
}

type AlgoFactory = fn(Vec<f32>, usize) -> Box<dyn FederatedAlgorithm>;

fn fedcross_factory(init: Vec<f32>, k: usize) -> Box<dyn FederatedAlgorithm> {
    Box::new(FedCross::new(
        FedCrossConfig {
            alpha: 0.9,
            strategy: SelectionStrategy::LowestSimilarity,
            measure: SimilarityMeasure::Cosine,
            ..Default::default()
        },
        init,
        k,
    ))
}

fn fedavg_factory(init: Vec<f32>, _k: usize) -> Box<dyn FederatedAlgorithm> {
    Box::new(FedAvg::new(init))
}

fn fedprox_factory(init: Vec<f32>, _k: usize) -> Box<dyn FederatedAlgorithm> {
    Box::new(FedProx::new(init, 0.1))
}

/// Runs `rounds` rounds of `algorithm`, recording the deployed global
/// parameters after every round. With `persistent = true` all rounds share
/// one `ClientWorkerPool` (the steady-state simulation path); with `false`
/// every round gets a fresh context-owned pool, which is exactly the
/// historical clone-per-round cost profile.
fn run_trajectory(
    make: AlgoFactory,
    data: &FederatedDataset,
    template: &dyn Model,
    availability: AvailabilityModel,
    k: usize,
    rounds: usize,
    persistent: bool,
) -> Vec<Vec<f32>> {
    let mut algorithm = make(template.params_flat(), k);
    let master = SeededRng::new(77);
    let mut shared_pool = ClientWorkerPool::new();
    let mut trajectory = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let mut comm = CommTracker::new();
        let ctx = RoundContext::new(
            data,
            template,
            LocalTrainConfig {
                epochs: 1,
                batch_size: 8,
                lr: 0.05,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            k,
            master.fork(round as u64),
            &mut comm,
        )
        .with_availability(availability, round);
        let mut ctx = if persistent {
            ctx.with_worker_pool(&mut shared_pool)
        } else {
            ctx
        };
        algorithm.run_round(round, &mut ctx);
        trajectory.push(algorithm.global_params());
    }
    trajectory
}

#[test]
fn persistent_workers_match_clone_per_round_across_algorithms_and_availability() {
    let k = 4;
    let data = image_task(11, 6);
    let template = dropout_model(23);
    let algorithms: [(&str, AlgoFactory); 3] = [
        ("fedcross", fedcross_factory),
        ("fedavg", fedavg_factory),
        ("fedprox", fedprox_factory),
    ];
    let availabilities = [
        AvailabilityModel::AlwaysOn,
        AvailabilityModel::RandomDropout { prob: 0.25 },
        AvailabilityModel::PeriodicStraggler { period: 3 },
    ];
    for (name, factory) in algorithms {
        for availability in availabilities {
            let persistent =
                run_trajectory(factory, &data, template.as_ref(), availability, k, 3, true);
            let fresh =
                run_trajectory(factory, &data, template.as_ref(), availability, k, 3, false);
            for (round, (p, f)) in persistent.iter().zip(&fresh).enumerate() {
                assert_eq!(
                    bits(p),
                    bits(f),
                    "{name} under {} diverged at round {round}: cached workers are not \
                     bitwise-equivalent to clone-per-round",
                    availability.label()
                );
            }
        }
    }
}

#[test]
fn dropout_reuse_without_reseeding_would_diverge() {
    // Sanity check that the equivalence above is non-trivial: the dropout
    // mask stream really does advance during training, so a cached model that
    // skipped `reset_stochastic_state` would produce different masks in round
    // two. We show the stream advances by comparing a reset model against a
    // deliberately unreset one.
    let template = dropout_model(5);
    let mut used = template.clone_model();
    let x = fedcross_tensor::init::normal(&[6, 3, 16, 16], 0.0, 1.0, &mut SeededRng::new(1));
    let first = used.forward(&x, true);
    let second = used.forward(&x, true); // stream advanced: different masks
    assert_ne!(bits(first.data()), bits(second.data()));

    let mut entropy = SeededRng::new(2);
    used.reset_stochastic_state(&mut entropy);
    let rewound = used.forward(&x, true);
    assert_eq!(
        bits(first.data()),
        bits(rewound.data()),
        "reset_stochastic_state must rewind the mask stream to fresh-clone state"
    );
}

#[test]
fn steady_state_rounds_construct_no_models() {
    let k = 4;
    let data = image_task(31, 6);
    let template = dropout_model(37);
    let mut algorithm = fedcross_factory(template.params_flat(), k);
    let master = SeededRng::new(3);
    let mut pool = ClientWorkerPool::new();
    let mut comm = CommTracker::new();
    for round in 0..5 {
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            LocalTrainConfig::fast(),
            k,
            master.fork(round as u64),
            &mut comm,
        )
        .with_worker_pool(&mut pool);
        algorithm.run_round(round, &mut ctx);
        if round == 0 {
            assert_eq!(pool.models_built(), k, "warm-up builds one model per slot");
        }
    }
    assert_eq!(
        pool.models_built(),
        k,
        "steady-state rounds must not construct models"
    );
    assert_eq!(pool.len(), k);
}

#[test]
fn pooled_eval_matches_clone_per_eval_bitwise() {
    let data = image_task(41, 3);
    let template = dropout_model(43);
    let mut worker = EvalWorker::new(template.as_ref());
    // Several parameter vectors through the same cached worker, each compared
    // against the *historical* clone + `evaluate` path (minibatches +
    // allocating forward) — NOT against `evaluate_params`, which now wraps
    // EvalWorker itself and would make this test compare the worker to
    // itself. Odd batch size so the tail batch is exercised.
    for seed in 0..3u64 {
        let mut rng = SeededRng::new(100 + seed);
        let params: Vec<f32> = template
            .params_flat()
            .iter()
            .map(|p| p + 0.01 * rng.normal())
            .collect();
        let pooled = worker.evaluate_params(&params, data.test_set(), 7);
        let mut reference_model = template.clone_model();
        reference_model.set_params_flat(&params);
        let cloned =
            fedcross_flsim::eval::evaluate(reference_model.as_mut(), data.test_set(), 7);
        assert_eq!(pooled.accuracy.to_bits(), cloned.accuracy.to_bits());
        assert_eq!(pooled.loss.to_bits(), cloned.loss.to_bits());
        assert_eq!(pooled.samples, cloned.samples);
    }
}

#[test]
fn simulation_results_are_unchanged_by_the_round_plane() {
    // End-to-end: a full Simulation (which now runs entirely on the
    // persistent plane) must reproduce the round-by-round numbers of driving
    // the same algorithm with fresh per-round contexts + clone-per-eval.
    use fedcross_flsim::{Simulation, SimulationConfig};
    let data = image_task(51, 5);
    let template = dropout_model(53);
    let k = 3;
    let local = LocalTrainConfig::fast();
    let config = SimulationConfig {
        rounds: 3,
        clients_per_round: k,
        eval_every: 1,
        eval_batch_size: 16,
        local,
        seed: 9,
    };

    let mut algo_sim = fedcross_factory(template.params_flat(), k);
    let sim = Simulation::new(config, &data, template.clone_model());
    let result = sim.run(algo_sim.as_mut());

    let mut algo_ref = fedcross_factory(template.params_flat(), k);
    let master = SeededRng::new(config.seed);
    for round in 0..config.rounds {
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            local,
            k,
            master.fork(round as u64),
            &mut comm,
        )
        .with_availability(AvailabilityModel::AlwaysOn, round);
        algo_ref.run_round(round, &mut ctx);
        let eval = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &algo_ref.global_params(),
            data.test_set(),
            config.eval_batch_size,
        );
        let record = &result.history.records()[round];
        assert_eq!(record.accuracy.to_bits(), eval.accuracy.to_bits(), "round {round}");
        assert_eq!(record.test_loss.to_bits(), eval.loss.to_bits(), "round {round}");
    }
}
