#!/usr/bin/env bash
# Snapshot the round-pipeline, client-training, round-plane,
# robust-aggregation, buffered-aggregation and population-scaling criterion
# benches into a machine-readable JSON file (default: BENCH_PR9.json at the
# repo root).
#
# The workspace's criterion shim appends one JSON line per benchmark to the
# file named by FEDCROSS_BENCH_JSON; this script runs the `aggregation`,
# `fl_round`, `client_training`, `round_plane`, `robust_aggregation`,
# `buffered_aggregation` and `population_scale` benches with that hook
# enabled and wraps the lines into a JSON document. The
# `population_scale/*` group sweeps the sharded lazy data plane from 10^3 to
# 10^6 clients at fixed K=10 — per-round cost and cohort selection must stay
# flat in the population (see docs/SCALE.md).
# Note that since PR 3 the
# `fl_round/one_round/*` benchmarks measure *steady-state* rounds on the
# persistent worker plane (warm cached models), which is the cost a
# multi-round simulation actually pays per round; compare against
# `round_plane/fedcross_round_clone_per_round` for the historical cold cost.
set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR9.json}"
lines="$(mktemp)"
trap 'rm -f "$lines"' EXIT

FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench aggregation
FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench fl_round
FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench client_training
FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench round_plane
FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench robust_aggregation
FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench buffered_aggregation
FEDCROSS_BENCH_JSON="$lines" cargo bench -p fedcross-bench --bench population_scale

{
    printf '{\n'
    printf '  "schema": "fedcross-bench-snapshot-v1",\n'
    printf '  "command": "scripts/bench_snapshot.sh",\n'
    printf '  "host_cores": %s,\n' "$(nproc)"
    printf '  "benches": [\n'
    sed 's/^/    /' "$lines" | sed '$!s/$/,/'
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out ($(grep -c '"bench"' "$out") benchmarks)"
