//! Ablation (extension): upload compression vs. accuracy.
//!
//! Table I of the paper compares methods by *qualitative* communication
//! overhead; this harness measures the actual upload volume and how much of it
//! can be removed by standard compression without hurting accuracy. FedAvg is
//! run with uncompressed uploads, 8-/4-bit stochastic quantization, top-10%
//! sparsification (with and without error feedback) and random-10%
//! sparsification.
//!
//! ```text
//! cargo run -p fedcross-bench --release --bin ablation_compression [--rounds N]
//! ```

use fedcross_bench::report::{print_header, print_row, write_json};
use fedcross_bench::{build_model, build_task, Args, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_compress::{CompressedFedAvg, Compressor, Identity, RandK, TopK, UniformQuantizer};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{Simulation, SimulationConfig};

fn main() {
    let args = Args::from_env();
    let config = args.apply(ExperimentConfig::default());

    let task = TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5));
    let data = build_task(task, &config, config.seed);

    let schemes: Vec<(Box<dyn Compressor>, bool)> = vec![
        (Box::new(Identity), false),
        (Box::new(UniformQuantizer::new(8, true)), false),
        (Box::new(UniformQuantizer::new(4, true)), true),
        (Box::new(TopK::new(0.1)), true),
        (Box::new(TopK::new(0.1)), false),
        (Box::new(RandK::new(0.1)), false),
    ];

    println!("Ablation — upload compression (CIFAR-10, beta=0.5, CNN, FedAvg)");
    println!(
        "({} clients, K={}, {} rounds)\n",
        config.num_clients, config.clients_per_round, config.rounds
    );
    print_header(&[
        ("Scheme", 26),
        ("Final acc (%)", 14),
        ("Best acc (%)", 14),
        ("Upload ratio", 13),
        ("Saved (MiB)", 12),
    ]);

    let mut json = Vec::new();
    for (compressor, error_feedback) in schemes {
        let template = build_model(ModelSpec::Cnn, &data, config.seed.wrapping_add(1));
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            compressor,
            error_feedback,
            config.seed.wrapping_add(3),
        );
        let sim_config = SimulationConfig {
            rounds: config.rounds,
            clients_per_round: config.clients_per_round.min(data.num_clients()),
            eval_every: config.eval_every,
            eval_batch_size: 64,
            local: config.local,
            seed: config.seed,
        };
        let name = {
            use fedcross_flsim::FederatedAlgorithm;
            algo.name()
        };
        let result = Simulation::new(sim_config, &data, template).run(&mut algo);
        let stats = algo.upload_stats();
        print_row(&[
            (name.clone(), 26),
            (format!("{:.2}", result.final_accuracy_pct()), 14),
            (format!("{:.2}", result.best_accuracy_pct()), 14),
            (format!("{:.1}x", stats.ratio()), 13),
            (format!("{:.2}", stats.saved_mib()), 12),
        ]);
        json.push(serde_json::json!({
            "scheme": name,
            "error_feedback": error_feedback,
            "final_accuracy_pct": result.final_accuracy_pct(),
            "best_accuracy_pct": result.best_accuracy_pct(),
            "upload_ratio": stats.ratio(),
            "saved_mib": stats.saved_mib(),
            "raw_scalars": stats.raw_scalars,
            "compressed_scalars": stats.compressed_scalars,
        }));
    }

    write_json("ablation_compression.json", &json);
    println!("\nExpected shape: 8-bit quantization is essentially free (~4x smaller uploads at");
    println!("uncompressed accuracy); aggressive top-10% sparsification needs error feedback to");
    println!("stay close to the uncompressed curve, and loses accuracy without it.");
}
