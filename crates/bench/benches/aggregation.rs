//! Criterion micro-benchmarks of the server-side aggregation kernels:
//! FedAvg weighted averaging vs FedCross cross-aggregation (single
//! collaborator and propeller variants) and global-model generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::aggregation::{
    cross_aggregate_all, cross_aggregate_all_into, cross_aggregate_propellers,
    cross_aggregate_propellers_into, global_model, global_model_into,
};
use fedcross_nn::params::{weighted_average, weighted_average_into};
use fedcross_tensor::SeededRng;

fn make_models(k: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SeededRng::new(seed);
    (0..k)
        .map(|_| (0..dim).map(|_| rng.uniform_range(-1.0, 1.0)).collect())
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_aggregation");
    group.sample_size(20);

    for &dim in &[10_000usize, 100_000] {
        let models = make_models(10, dim, 7);
        let weights = vec![1.0f32; models.len()];
        let collaborators: Vec<usize> = (0..models.len())
            .map(|i| (i + 1) % models.len())
            .collect();

        group.bench_with_input(
            BenchmarkId::new("fedavg_weighted_average", dim),
            &dim,
            |b, _| b.iter(|| black_box(weighted_average(&models, &weights))),
        );
        group.bench_with_input(
            BenchmarkId::new("fedcross_cross_aggregate_all", dim),
            &dim,
            |b, _| b.iter(|| black_box(cross_aggregate_all(&models, &collaborators, 0.99))),
        );
        group.bench_with_input(
            BenchmarkId::new("fedcross_propellers_x3", dim),
            &dim,
            |b, _| {
                b.iter(|| {
                    let refs: Vec<&[f32]> = models[1..4].iter().map(|m| m.as_slice()).collect();
                    black_box(cross_aggregate_propellers(&models[0], &refs, 0.99))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global_model_generation", dim),
            &dim,
            |b, _| b.iter(|| black_box(global_model(&models))),
        );

        // In-place fused kernels (the round loop's actual hot path): same
        // arithmetic, zero allocations, rayon-parallel over the K models.
        group.bench_with_input(
            BenchmarkId::new("fedavg_weighted_average_into", dim),
            &dim,
            |b, _| {
                let mut out = vec![0f32; dim];
                b.iter(|| {
                    weighted_average_into(&mut out, &models, &weights);
                    black_box(out.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fedcross_cross_aggregate_all_into", dim),
            &dim,
            |b, _| {
                let mut buffers = vec![vec![0f32; dim]; models.len()];
                b.iter(|| {
                    let mut targets: Vec<&mut [f32]> =
                        buffers.iter_mut().map(|v| v.as_mut_slice()).collect();
                    cross_aggregate_all_into(&mut targets, &models, &collaborators, 0.99);
                    black_box(targets.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fedcross_propellers_x3_into", dim),
            &dim,
            |b, _| {
                let mut out = vec![0f32; dim];
                b.iter(|| {
                    let refs: Vec<&[f32]> = models[1..4].iter().map(|m| m.as_slice()).collect();
                    cross_aggregate_propellers_into(&mut out, &models[0], &refs, 0.99);
                    black_box(out.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("global_model_generation_into", dim),
            &dim,
            |b, _| {
                let mut out = vec![0f32; dim];
                b.iter(|| {
                    global_model_into(&mut out, &models);
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
