//! Equivalence tests for the zero-allocation training plane: the pooled
//! `forward_into` / `backward_into` layer forms, the pooled loss, the
//! in-place optimizer step and the reused minibatch gather buffers must all
//! be **bitwise** indistinguishable from the historical allocating pipeline.
//!
//! The final section pins whole fixed-seed training trajectories against
//! FNV-1a fingerprints recorded from the pre-refactor (PR 1) pipeline via
//! `examples/trajectory_probe.rs` — if any kernel, blocking parameter, or
//! loop restructure changes a single bit anywhere in training, these hashes
//! move and the test fails.

use fedcross::{FedCross, FedCrossConfig, SelectionStrategy, SimilarityMeasure};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::{Batch, Dataset, Heterogeneity};
use fedcross_flsim::client::local_train;
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{CommTracker, FederatedAlgorithm, LocalTrainConfig};
use fedcross_nn::layers::{
    BatchNorm2d, Conv2d, Dropout, Embedding, Flatten, GlobalAvgPool2d, Linear, Lstm, MaxPool2d,
    Relu, ResidualBlock, Sigmoid, Tanh,
};
use fedcross_nn::loss::{softmax_cross_entropy, softmax_cross_entropy_into};
use fedcross_nn::models::{
    cnn, fedavg_cnn, lstm_classifier, mlp, resnet20_lite, CnnConfig, LstmConfig,
};
use fedcross_nn::{Layer, Model};
use fedcross_tensor::{init, SeededRng, Tensor, TensorPool};

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn fnv1a(values: &[f32]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for v in values {
        for byte in v.to_bits().to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

// ---------------------------------------------------------------------------
// Per-layer equivalence: forward/backward vs forward_into/backward_into
// ---------------------------------------------------------------------------

/// Runs one forward/backward through `allocating` with the historical API and
/// through `pooled` (a clone) with the arena API, asserting every output,
/// input gradient and parameter gradient matches bit for bit. Repeats to
/// exercise buffer reuse (the second pass runs entirely on recycled buffers).
fn assert_layer_equivalence(
    mut allocating: Box<dyn Layer>,
    mut pooled: Box<dyn Layer>,
    inputs: &[Tensor],
    train: bool,
) {
    let mut pool = TensorPool::new();
    for (pass, input) in inputs.iter().enumerate() {
        let out_a = allocating.forward(input, train);
        let out_p = pooled.forward_into(input, train, &mut pool);
        assert_eq!(
            bits(out_a.data()),
            bits(out_p.data()),
            "forward mismatch (pass {pass})"
        );
        assert_eq!(out_a.dims(), out_p.dims(), "forward dims (pass {pass})");

        let grad_out = Tensor::from_vec(
            (0..out_a.numel())
                .map(|i| ((i * 13 % 29) as f32) * 0.21 - 2.9)
                .collect(),
            out_a.dims(),
        );
        let gin_a = allocating.backward(&grad_out);
        let gin_p = pooled.backward_into(&grad_out, &mut pool);
        assert_eq!(
            bits(gin_a.data()),
            bits(gin_p.data()),
            "backward mismatch (pass {pass})"
        );
        for (pa, pp) in allocating.params().iter().zip(pooled.params()) {
            assert_eq!(
                bits(pa.grad.data()),
                bits(pp.grad.data()),
                "param grad mismatch (pass {pass})"
            );
            assert_eq!(bits(pa.value.data()), bits(pp.value.data()));
        }
        pool.recycle(out_p);
        pool.recycle(gin_p);
    }
}

fn image_batch(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    init::normal(dims, 0.0, 1.0, &mut rng)
}

#[test]
fn linear_pooled_forms_match_allocating_forms() {
    // Odd shapes: feature dims off the 8-wide tile, batch 1, empty batch.
    for &(batch, inf, outf) in &[(5usize, 7usize, 3usize), (1, 13, 9), (0, 4, 6), (16, 32, 10)] {
        let mut rng = SeededRng::new(42 + batch as u64);
        let layer = Linear::new(inf, outf, &mut rng);
        let inputs: Vec<Tensor> = (0..3).map(|i| image_batch(&[batch, inf], i)).collect();
        assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
    }
}

#[test]
fn conv2d_pooled_forms_match_allocating_forms() {
    for &(n, c, oc, hw, k, s, p) in &[
        (2usize, 3usize, 5usize, 9usize, 3usize, 1usize, 1usize),
        (1, 1, 2, 7, 3, 2, 0),
        (3, 2, 4, 8, 1, 1, 0),
    ] {
        let mut rng = SeededRng::new(7 + n as u64);
        let layer = Conv2d::new(c, oc, k, s, p, &mut rng);
        let inputs: Vec<Tensor> = (0..2).map(|i| image_batch(&[n, c, hw, hw], 10 + i)).collect();
        assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
    }
}

#[test]
fn activation_pooled_forms_match_allocating_forms() {
    let inputs: Vec<Tensor> = (0..3).map(|i| image_batch(&[3, 11], 20 + i)).collect();
    assert_layer_equivalence(Box::new(Relu::new()), Box::new(Relu::new()), &inputs, true);
    assert_layer_equivalence(Box::new(Tanh::new()), Box::new(Tanh::new()), &inputs, true);
    assert_layer_equivalence(Box::new(Sigmoid::new()), Box::new(Sigmoid::new()), &inputs, true);
}

#[test]
fn dropout_pooled_forms_match_allocating_forms() {
    // The two clones share the forked mask RNG state, so masks line up.
    let mut rng = SeededRng::new(31);
    let layer = Dropout::new(0.4, &mut rng);
    let inputs: Vec<Tensor> = (0..3).map(|i| image_batch(&[6, 10], 30 + i)).collect();
    assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
    // Eval mode exercises the identity path.
    let mut rng = SeededRng::new(32);
    let eval_layer = Dropout::new(0.4, &mut rng);
    assert_layer_equivalence(eval_layer.clone_layer(), eval_layer.clone_layer(), &inputs, false);
}

#[test]
fn shape_layers_pooled_forms_match_allocating_forms() {
    let inputs: Vec<Tensor> = (0..2).map(|i| image_batch(&[2, 3, 6, 6], 40 + i)).collect();
    assert_layer_equivalence(Box::new(Flatten::new()), Box::new(Flatten::new()), &inputs, true);
    assert_layer_equivalence(
        Box::new(MaxPool2d::new(2)),
        Box::new(MaxPool2d::new(2)),
        &inputs,
        true,
    );
    assert_layer_equivalence(
        Box::new(MaxPool2d::with_stride(3, 2)),
        Box::new(MaxPool2d::with_stride(3, 2)),
        &inputs,
        true,
    );
    assert_layer_equivalence(
        Box::new(GlobalAvgPool2d::new()),
        Box::new(GlobalAvgPool2d::new()),
        &inputs,
        true,
    );
}

#[test]
fn batchnorm_pooled_forms_match_allocating_forms() {
    let layer = BatchNorm2d::new(3);
    let inputs: Vec<Tensor> = (0..3).map(|i| image_batch(&[2, 3, 5, 5], 50 + i)).collect();
    assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
    // Eval mode uses the running statistics branch.
    let mut warm = BatchNorm2d::new(3);
    warm.forward(&inputs[0], true);
    assert_layer_equivalence(warm.clone_layer(), warm.clone_layer(), &inputs, false);
}

#[test]
fn embedding_pooled_forms_match_allocating_forms() {
    let mut rng = SeededRng::new(61);
    let layer = Embedding::new(17, 5, &mut rng);
    let inputs: Vec<Tensor> = (0..3)
        .map(|s| {
            Tensor::from_vec(
                (0..4 * 6).map(|i| ((i * 5 + s as usize) % 17) as f32).collect(),
                &[4, 6],
            )
        })
        .collect();
    assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
}

#[test]
fn lstm_pooled_forms_match_allocating_forms() {
    for &(n, t, d, h) in &[(3usize, 4usize, 5usize, 6usize), (1, 7, 3, 9), (2, 1, 2, 4)] {
        let mut rng = SeededRng::new(70 + n as u64);
        let layer = Lstm::new(d, h, &mut rng);
        let inputs: Vec<Tensor> = (0..2).map(|i| image_batch(&[n, t, d], 80 + i)).collect();
        assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
    }
}

#[test]
fn residual_block_pooled_forms_match_allocating_forms() {
    for &(cin, cout, stride) in &[(3usize, 3usize, 1usize), (3, 6, 2)] {
        let mut rng = SeededRng::new(90 + cout as u64);
        let layer = ResidualBlock::new(cin, cout, stride, &mut rng);
        let inputs: Vec<Tensor> = (0..2).map(|i| image_batch(&[2, cin, 8, 8], 95 + i)).collect();
        assert_layer_equivalence(layer.clone_layer(), layer.clone_layer(), &inputs, true);
    }
}

// ---------------------------------------------------------------------------
// Loss, model chain, first-layer gradient skip
// ---------------------------------------------------------------------------

#[test]
fn pooled_loss_matches_allocating_loss_bitwise() {
    let mut pool = TensorPool::new();
    for &(batch, classes) in &[(1usize, 2usize), (7, 10), (16, 3)] {
        let logits = image_batch(&[batch, classes], 100 + batch as u64);
        let labels: Vec<usize> = (0..batch).map(|i| (i * 3 + 1) % classes).collect();
        let (loss_a, grad_a) = softmax_cross_entropy(&logits, &labels);
        let (loss_p, grad_p) = softmax_cross_entropy_into(&logits, &labels, &mut pool);
        assert_eq!(loss_a.to_bits(), loss_p.to_bits());
        assert_eq!(bits(grad_a.data()), bits(grad_p.data()));
        pool.recycle(grad_p);
    }
}

#[test]
fn sequential_pooled_chain_matches_allocating_chain() {
    // A model covering conv, pool, flatten, linear and relu; the pooled chain
    // (with its first-layer input-gradient skip) must leave parameters and
    // gradients bitwise identical to the allocating chain.
    let config = CnnConfig {
        conv_channels: (3, 6),
        fc_hidden: 12,
        kernel: 3,
    };
    let mut rng = SeededRng::new(123);
    let mut model_a = cnn((3, 16, 16), 10, config, &mut rng);
    let mut model_p = model_a.clone_model();
    let mut pool = TensorPool::new();
    for step in 0..3 {
        let x = image_batch(&[4, 3, 16, 16], 200 + step);
        let labels: Vec<usize> = (0..4).map(|i| (i + step as usize) % 10).collect();

        model_a.zero_grads();
        let logits_a = model_a.forward(&x, true);
        let (_, grad_a) = softmax_cross_entropy(&logits_a, &labels);
        model_a.backward(&grad_a);

        model_p.zero_grads();
        let logits_p = model_p.forward_into(&x, true, &mut pool);
        assert_eq!(bits(logits_a.data()), bits(logits_p.data()), "step {step}");
        let (_, grad_p) = softmax_cross_entropy_into(&logits_p, &labels, &mut pool);
        pool.recycle(logits_p);
        model_p.backward_into(&grad_p, &mut pool);
        pool.recycle(grad_p);

        assert_eq!(
            bits(&model_a.grads_flat()),
            bits(&model_p.grads_flat()),
            "gradients diverged at step {step}"
        );
    }
}

#[test]
fn read_params_into_matches_params_flat() {
    let mut rng = SeededRng::new(321);
    let model = mlp(12, &[9, 5], 3, &mut rng);
    let mut buf = vec![f32::NAN; 4];
    model.read_params_into(&mut buf);
    assert_eq!(bits(&buf), bits(&model.params_flat()));
    let mut gbuf = Vec::new();
    model.read_grads_into(&mut gbuf);
    assert_eq!(bits(&gbuf), bits(&model.grads_flat()));
}

// ---------------------------------------------------------------------------
// Whole-loop equivalence: local_train vs the seed's allocating loop
// ---------------------------------------------------------------------------

/// The seed implementation of one client's local training, written exactly as
/// before this refactor: per-epoch `minibatches` allocation, allocating
/// forward/backward, flat-vector SGD with its own velocity buffer.
fn reference_local_train(
    model: &mut dyn Model,
    data: &Dataset,
    config: &LocalTrainConfig,
    rng: &mut SeededRng,
) -> Vec<f32> {
    let mut velocity = vec![0f32; model.param_count()];
    for _ in 0..config.epochs {
        for batch in data.minibatches(config.batch_size, Some(rng)) {
            model.zero_grads();
            let logits = model.forward(&batch.features, true);
            let (_, grad) = softmax_cross_entropy(&logits, &batch.labels);
            model.backward(&grad);
            let mut params = model.params_flat();
            let grads = model.grads_flat();
            for i in 0..params.len() {
                let mut g = grads[i];
                if config.weight_decay > 0.0 {
                    g += config.weight_decay * params[i];
                }
                let v = config.momentum * velocity[i] + g;
                velocity[i] = v;
                params[i] -= config.lr * v;
            }
            model.set_params_flat(&params);
        }
    }
    model.params_flat()
}

fn flatten_images(data: &Dataset) -> Dataset {
    let n = data.len();
    let dim: usize = data.sample_dims().iter().product();
    Dataset::new(
        data.features().reshape(&[n, dim]),
        data.labels().to_vec(),
        data.num_classes(),
    )
}

fn image_task(seed: u64, clients: usize) -> FederatedDataset {
    let mut rng = SeededRng::new(seed);
    FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: clients,
            samples_per_client: 20,
            test_samples: 30,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    )
}

#[test]
fn local_train_is_bitwise_identical_to_seed_loop() {
    let data = image_task(7, 3);
    let config = LocalTrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 1e-4,
    };

    // CNN (conv/pool/flatten/linear plane).
    let mut rng = SeededRng::new(55);
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (3, 6),
            fc_hidden: 12,
            kernel: 3,
        },
        &mut rng,
    );
    let mut pooled_model = template.clone_model();
    let update = local_train(
        0,
        pooled_model.as_mut(),
        data.client(0),
        &config,
        &mut SeededRng::new(77),
        None,
    );
    let mut ref_model = template.clone_model();
    let reference =
        reference_local_train(ref_model.as_mut(), data.client(0), &config, &mut SeededRng::new(77));
    assert_eq!(bits(update.params.as_slice()), bits(&reference), "cnn");

    // MLP (pure linear plane) on flattened features.
    let mut rng = SeededRng::new(56);
    let template = mlp(3 * 16 * 16, &[24, 12], 10, &mut rng);
    let flat = flatten_images(data.client(1));
    let mut pooled_model = template.clone_model();
    let update = local_train(
        1,
        pooled_model.as_mut(),
        &flat,
        &config,
        &mut SeededRng::new(78),
        None,
    );
    let mut ref_model = template.clone_model();
    let reference =
        reference_local_train(ref_model.as_mut(), &flat, &config, &mut SeededRng::new(78));
    assert_eq!(bits(update.params.as_slice()), bits(&reference), "mlp");
}

#[test]
fn gather_batch_reproduces_minibatches() {
    let data = flatten_images(image_task(11, 2).client(0));
    let batch_size = 6;
    let reference = data.minibatches(batch_size, Some(&mut SeededRng::new(5)));
    let mut order = Vec::new();
    data.epoch_order(Some(&mut SeededRng::new(5)), &mut order);
    let mut batch = Batch::reusable();
    for (i, chunk) in order.chunks(batch_size).enumerate() {
        data.gather_batch(chunk, &mut batch);
        assert_eq!(bits(batch.features.data()), bits(reference[i].features.data()));
        assert_eq!(batch.labels, reference[i].labels);
        assert_eq!(batch.features.dims(), reference[i].features.dims());
    }
}

// ---------------------------------------------------------------------------
// Fixed-seed trajectory fingerprints (recorded from the pre-PR pipeline)
// ---------------------------------------------------------------------------

/// FNV-1a fingerprints of fixed-seed training trajectories recorded with the
/// PR 1 (pre-training-plane) pipeline via `examples/trajectory_probe.rs`.
/// Any single-bit divergence anywhere in dispatch, training, loss, optimizer
/// or aggregation moves these hashes.
const FEDCROSS_GLOBAL_FINGERPRINT: u64 = 0x6a3f7ad376e78a38;
const CNN_LOCAL_TRAIN_FINGERPRINT: u64 = 0x9232324d6247755f;
const RESNET_LOCAL_TRAIN_FINGERPRINT: u64 = 0x05d75076902b6b4f;
const LSTM_LOCAL_TRAIN_FINGERPRINT: u64 = 0xe53afd52b8e5e469;

#[test]
fn fedcross_trajectory_matches_pre_refactor_fingerprint() {
    let data = image_task(7, 6);
    let mut rng = SeededRng::new(3);
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (3, 6),
            fc_hidden: 12,
            kernel: 3,
        },
        &mut rng,
    );
    let config = FedCrossConfig {
        alpha: 0.9,
        strategy: SelectionStrategy::LowestSimilarity,
        measure: SimilarityMeasure::Cosine,
        ..Default::default()
    };
    let mut algo = FedCross::new(config, template.params_flat(), 4);
    let master = SeededRng::new(99);
    for round in 0..3 {
        let mut comm = CommTracker::new();
        let mut ctx = RoundContext::new(
            &data,
            template.as_ref(),
            LocalTrainConfig::fast(),
            4,
            master.fork(round as u64),
            &mut comm,
        );
        algo.run_round(round, &mut ctx);
    }
    assert_eq!(
        fnv1a(&algo.global_params()),
        FEDCROSS_GLOBAL_FINGERPRINT,
        "the FedCross training trajectory diverged from the pre-refactor pipeline"
    );
}

#[test]
fn cnn_local_train_matches_pre_refactor_fingerprint() {
    let data = image_task(7, 6);
    let mut rng = SeededRng::new(11);
    let mut model = fedavg_cnn((3, 16, 16), 10, &mut rng);
    let local = LocalTrainConfig {
        epochs: 2,
        batch_size: 16,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 1e-4,
    };
    let update = local_train(
        0,
        model.as_mut(),
        data.client(0),
        &local,
        &mut SeededRng::new(13),
        None,
    );
    assert_eq!(fnv1a(update.params.as_slice()), CNN_LOCAL_TRAIN_FINGERPRINT);
}

#[test]
fn resnet_local_train_matches_pre_refactor_fingerprint() {
    let data = image_task(7, 6);
    let mut rng = SeededRng::new(23);
    let mut model = resnet20_lite((3, 16, 16), 10, &mut rng);
    let local = LocalTrainConfig {
        epochs: 1,
        batch_size: 10,
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 0.0,
    };
    let update = local_train(
        2,
        model.as_mut(),
        data.client(2),
        &local,
        &mut SeededRng::new(29),
        None,
    );
    assert_eq!(fnv1a(update.params.as_slice()), RESNET_LOCAL_TRAIN_FINGERPRINT);
}

#[test]
fn lstm_local_train_matches_pre_refactor_fingerprint() {
    let mut rng = SeededRng::new(31);
    let mut model = lstm_classifier(
        LstmConfig {
            vocab: 32,
            embed_dim: 8,
            hidden_dim: 16,
        },
        8,
        &mut rng,
    );
    let tokens: Vec<f32> = (0..40 * 12).map(|i| ((i * 7 + 3) % 32) as f32).collect();
    let labels: Vec<usize> = (0..40).map(|i| (i * 5 + 1) % 8).collect();
    let text = Dataset::new(Tensor::from_vec(tokens, &[40, 12]), labels, 8);
    let update = local_train(
        3,
        model.as_mut(),
        &text,
        &LocalTrainConfig::fast(),
        &mut SeededRng::new(37),
        None,
    );
    assert_eq!(fnv1a(update.params.as_slice()), LSTM_LOCAL_TRAIN_FINGERPRINT);
}
