//! Offline shim for `serde_derive`.
//!
//! Generates impls of the workspace's value-tree `serde::Serialize` /
//! `serde::Deserialize` traits for the type shapes the workspace actually
//! declares: structs with named fields, and enums whose variants are unit,
//! struct-like, or tuple-like. No `syn`/`quote` (offline build), so the item
//! is parsed directly from the `proc_macro` token stream.
//!
//! Generated JSON shapes match real serde's defaults:
//! * struct            -> `{"field": value, ...}`
//! * unit variant      -> `"Variant"`
//! * struct variant    -> `{"Variant": {"field": value, ...}}`
//! * newtype variant   -> `{"Variant": value}`
//! * tuple variant     -> `{"Variant": [values...]}`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skips leading attributes (`#[...]`, including expanded doc comments) and a
/// visibility qualifier (`pub`, `pub(crate)`, ...), starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group is an outer attribute.
                match tokens.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
                    _ => break,
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    i
}

/// Advances past a type (or any token run) up to the next comma that is not
/// nested inside `<...>` generics or a delimiter group.
fn skip_to_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attrs_and_vis(group_tokens, i);
        let Some(TokenTree::Ident(name)) = group_tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        match group_tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{}`, found {:?}", name, other),
        }
        i = skip_to_top_level_comma(group_tokens, i);
        i += 1; // past the comma (or end)
    }
    fields
}

fn count_tuple_fields(group_tokens: &[TokenTree]) -> usize {
    if group_tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attrs_and_vis(group_tokens, i);
        if i >= group_tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_top_level_comma(group_tokens, i);
        i += 1;
    }
    count
}

fn parse_variants(group_tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group_tokens.len() {
        i = skip_attrs_and_vis(group_tokens, i);
        let Some(TokenTree::Ident(name)) = group_tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match group_tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip a possible discriminant and advance past the separating comma.
        i = skip_to_top_level_comma(group_tokens, i);
        i += 1;
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {:?}", other),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {:?}", other),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim does not support generic type `{name}`");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        other => panic!(
            "serde_derive shim supports only brace-bodied {kind}s; `{name}` has {:?}",
            other
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("cannot derive serde impls for `{other}`"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        Fields::Named(fields) => {
                            let bindings = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => {{\n\
                                     let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                     {pushes}\n\
                                     ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(inner))])\n\
                                 }},"
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(value) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(value))]),"
                        ),
                        Fields::Tuple(n) => {
                            let bindings: Vec<String> =
                                (0..*n).map(|i| format!("value{i}")).collect();
                            let joined = bindings.join(", ");
                            let pushes: String = bindings
                                .iter()
                                .map(|b| format!("items.push(::serde::Serialize::to_value({b}));"))
                                .collect();
                            format!(
                                "{name}::{vname}({joined}) => {{\n\
                                     let mut items: Vec<::serde::Value> = Vec::new();\n\
                                     {pushes}\n\
                                     ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(items))])\n\
                                 }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let field_inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::derive_support::field(entries, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let entries = value.as_object().ok_or_else(|| ::serde::Error::custom(\n\
                             format!(\"{name}: expected object, found {{}}\", value.kind())))?;\n\
                         Ok({name} {{ {field_inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => return Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fields) => {
                            let field_inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!("{f}: ::serde::derive_support::field(inner_entries, {f:?})?,")
                                })
                                .collect();
                            Some(format!(
                                "if let Some(inner) = value.get({vname:?}) {{\n\
                                     let inner_entries = inner.as_object().ok_or_else(|| ::serde::Error::custom(\n\
                                         format!(\"{name}::{vname}: expected object, found {{}}\", inner.kind())))?;\n\
                                     return Ok({name}::{vname} {{ {field_inits} }});\n\
                                 }}"
                            ))
                        }
                        Fields::Tuple(1) => Some(format!(
                            "if let Some(inner) = value.get({vname:?}) {{\n\
                                 return Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?));\n\
                             }}"
                        )),
                        Fields::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "if let Some(inner) = value.get({vname:?}) {{\n\
                                     let items = inner.as_array().ok_or_else(|| ::serde::Error::custom(\n\
                                         \"{name}::{vname}: expected array\"))?;\n\
                                     if items.len() != {n} {{\n\
                                         return Err(::serde::Error::custom(\"{name}::{vname}: wrong arity\"));\n\
                                     }}\n\
                                     return Ok({name}::{vname}({elems}));\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let Some(tag) = value.as_str() {{\n\
                             match tag {{ {unit_arms} _ => {{}} }}\n\
                         }}\n\
                         {data_arms}\n\
                         Err(::serde::Error::custom(format!(\n\
                             \"{name}: unrecognised value of kind {{}}\", value.kind())))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
