//! Criterion benchmark of one full communication round per FL method —
//! the end-to-end per-round cost behind the paper's wall-clock comparisons.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedcross::AlgorithmSpec;
use fedcross_bench::{build_model, build_task, ExperimentConfig, ModelSpec, TaskSpec};
use fedcross_data::Heterogeneity;
use fedcross_flsim::engine::RoundContext;
use fedcross_flsim::{ClientWorkerPool, CommTracker, LocalTrainConfig};
use fedcross_tensor::SeededRng;

fn bench_fl_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("fl_round");
    group.sample_size(10);

    let config = ExperimentConfig {
        num_clients: 8,
        clients_per_round: 4,
        samples_per_client: 20,
        test_samples: 20,
        rounds: 1,
        eval_every: 1,
        local: LocalTrainConfig {
            epochs: 1,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 5,
    };
    let data = build_task(TaskSpec::Cifar10(Heterogeneity::Dirichlet(0.5)), &config, 5);
    let template = build_model(ModelSpec::Cnn, &data, 6);

    for spec in AlgorithmSpec::paper_lineup() {
        group.bench_with_input(
            BenchmarkId::new("one_round", spec.label()),
            &spec,
            |b, spec| {
                // The worker pool persists across iterations, exactly as it
                // persists across rounds inside a Simulation: after the first
                // iteration every round trains on warm cached models, which
                // is the steady-state cost a multi-round run pays.
                let mut plane = ClientWorkerPool::new();
                b.iter(|| {
                    let mut algorithm = fedcross::build_algorithm(
                        *spec,
                        template.params_flat(),
                        data.num_clients(),
                        config.clients_per_round,
                    );
                    let mut comm = CommTracker::new();
                    let mut ctx = RoundContext::new(
                        &data,
                        template.as_ref(),
                        config.local,
                        config.clients_per_round,
                        SeededRng::new(9),
                        &mut comm,
                    )
                    .with_worker_pool(&mut plane);
                    black_box(algorithm.run_round(0, &mut ctx));
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fl_round);
criterion_main!(benches);
