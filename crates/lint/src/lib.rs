//! `fedcross-lint` — static determinism-invariant checker for the FedCross
//! workspace.
//!
//! The reproduction's guarantees (bitwise trajectories, bitwise resume,
//! permutation-invariant robust rules) rest on conventions that used to be
//! enforced only by review: no unordered-map iteration in aggregation paths,
//! no wall-clock or ambient RNG in trajectory-affecting code, audited
//! `SeededRng::fork` call sites, fixed-order float reductions in kernels.
//! This crate codifies them as rules D001–D006 over a line-oriented scan of
//! `crates/*/src` (see `docs/LINTS.md` for the catalogue):
//!
//! * **D001** — no `HashMap`/`HashSet` iteration in `core`, `flsim`,
//!   `privacy`, `compress`.
//! * **D002** — no `Instant::now` / `SystemTime` / `thread_rng` /
//!   `rand::random` outside `bench`.
//! * **D003** — every `.fork(` call site carries a
//!   `// fork: construction-seed` audit marker.
//! * **D004** — no `mul_add`/FMA and no `par_iter().sum()`-style unordered
//!   float reductions in kernel files.
//! * **D005** — every `unsafe` block is preceded by a `// SAFETY:` comment.
//! * **D006** — every `pub fn *_into` kernel has an allocating counterpart
//!   in the same file.
//!
//! Exceptions are explicit, counted waivers:
//! `// lint: allow(D00x) — reason`. A waiver with no reason does not
//! silence the finding.
//!
//! Deliberately zero dependencies and no `syn`: the scanner must build and
//! run before anything else in the workspace does. The price is that rules
//! are lexical, per-file approximations (e.g. D001 only tracks unordered-map
//! bindings declared in the same file) — good enough to catch the mistakes
//! that actually happen, cheap enough to run on every commit.

pub mod callgraph;
pub mod markers;
pub mod parser;
pub mod rules;
pub mod strip;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use strip::Stripped;

/// The determinism rules checked by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Unordered-map iteration in a determinism-critical crate.
    D001,
    /// Wall-clock or ambient RNG outside `bench`.
    D002,
    /// `SeededRng::fork` call site without a construction-seed audit marker.
    D003,
    /// FMA or unordered parallel float reduction in a kernel file.
    D004,
    /// `unsafe` block without a preceding `SAFETY:` comment.
    D005,
    /// `pub fn *_into` kernel without an allocating counterpart.
    D006,
    /// Allocation construct reachable from a hot-path root without a
    /// reasoned `alloc:` marker.
    A001,
    /// `unwrap`/`expect`/`panic!` in a library crate without a reason.
    P001,
    /// Stale `lint: allow` waiver — nothing in its window triggers the
    /// waived rule anymore.
    W001,
    /// Stale `alloc:`/`panic:` marker — no matching construct in its window.
    W002,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 10] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::D006,
        RuleId::A001,
        RuleId::P001,
        RuleId::W001,
        RuleId::W002,
    ];

    /// The rule's code as it appears in waivers, e.g. `"D001"`.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
            RuleId::A001 => "A001",
            RuleId::P001 => "P001",
            RuleId::W001 => "W001",
            RuleId::W002 => "W002",
        }
    }

    /// Parses a rule code (`"D001"`, `"A001"`, …). `None` for anything that
    /// is not a known rule — prose like `allow(D00x)` never resolves.
    pub fn parse(code: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.code() == code)
    }

    /// One-line description of what the rule forbids.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => "HashMap/HashSet iteration in a determinism-critical crate",
            RuleId::D002 => "wall-clock or ambient RNG outside bench",
            RuleId::D003 => "SeededRng::fork call without `fork: construction-seed` marker",
            RuleId::D004 => "FMA or unordered parallel float reduction in a kernel file",
            RuleId::D005 => "unsafe block without a preceding SAFETY: comment",
            RuleId::D006 => "pub *_into kernel without an allocating counterpart",
            RuleId::A001 => "allocation reachable from a hot-path root without a reasoned alloc: marker",
            RuleId::P001 => "unwrap/expect/panic! in a library crate without a reason",
            RuleId::W001 => "stale waiver: nothing in its window triggers the waived rule",
            RuleId::W002 => "stale alloc:/panic: marker: no matching construct in its window",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One rule violation (possibly waived) at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Display path of the offending file (relative to the workspace root
    /// when produced by [`lint_tree`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The waiver reason, if the site carries a valid
    /// `lint: allow(D00x) — reason` annotation.
    pub waiver: Option<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}:{} {}", self.rule, self.file, self.line, self.message)?;
        if let Some(reason) = &self.waiver {
            write!(f, " [waived: {reason}]")?;
        }
        Ok(())
    }
}

/// The outcome of linting a tree: all findings plus scan statistics.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, waived or not, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that are *not* waived — these fail `--deny-all`.
    pub fn violations(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.waiver.is_none()).collect()
    }

    /// Findings silenced by an explicit waiver (still reported, still
    /// counted — exceptions are visible, not invisible).
    pub fn waived(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.waiver.is_some()).collect()
    }

    /// Per-rule waiver counts, in [`RuleId::ALL`] order, zero rows included —
    /// the summary and the `--deny-waivers` budget check both read this.
    pub fn waiver_counts(&self) -> Vec<(RuleId, usize)> {
        RuleId::ALL
            .iter()
            .map(|&rule| {
                let n = self
                    .findings
                    .iter()
                    .filter(|f| f.rule == rule && f.waiver.is_some())
                    .count();
                (rule, n)
            })
            .collect()
    }
}

/// Crates whose aggregation/trajectory paths must not iterate unordered
/// maps (rule D001).
pub const D001_CRATES: [&str; 4] = ["core", "flsim", "privacy", "compress"];

/// The one crate allowed to read wall clocks and ambient RNG (rule D002).
pub const TIMING_CRATE: &str = "bench";

/// Kernel files subject to the float-reduction rules D004/D006, beyond the
/// whole `tensor` crate. Fast-math/SIMD PRs must add their new kernel files
/// here (see ROADMAP "Open items").
pub const KERNEL_FILES: [&str; 3] = ["aggregation.rs", "robust.rs", "buffered.rs"];

/// Every file in this crate is a kernel file for D004/D006.
pub const KERNEL_CRATE: &str = "tensor";

/// How many comment lines above a site are searched for waivers and
/// audit markers — shared with the marker lookup in [`markers`].
const LOOKBACK_LINES: usize = markers::LOOKBACK_LINES;

fn is_kernel_file(crate_name: &str, file_name: &str) -> bool {
    crate_name == KERNEL_CRATE || KERNEL_FILES.contains(&file_name)
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whether `line[pos..pos+len]` is bounded by non-identifier characters.
fn word_bounded(line: &str, pos: usize, len: usize) -> bool {
    let before_ok = pos == 0
        || !line[..pos]
            .chars()
            .next_back()
            .is_some_and(is_ident_char);
    let after_ok = !line[pos + len..].chars().next().is_some_and(is_ident_char);
    before_ok && after_ok
}

/// First word-bounded occurrence of `word` in `line`.
fn find_word(line: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = line[from..].find(word) {
        let abs = from + p;
        if word_bounded(line, abs, word.len()) {
            return Some(abs);
        }
        from = abs + word.len().max(1);
    }
    None
}

fn contains_word(line: &str, word: &str) -> bool {
    find_word(line, word).is_some()
}

enum WaiverStatus {
    None,
    Waived(String),
    MissingReason,
}

/// Looks for `lint: allow(<code>)` in the comment channel on the finding's
/// line or up to [`LOOKBACK_LINES`] lines above it.
fn waiver_for(stripped: &Stripped, line_idx: usize, code: &str) -> WaiverStatus {
    let lo = line_idx.saturating_sub(LOOKBACK_LINES);
    for idx in (lo..=line_idx).rev() {
        let comment = &stripped.comments[idx];
        let mut from = 0;
        while let Some(p) = comment[from..].find("lint: allow(") {
            let rest = &comment[from + p + "lint: allow(".len()..];
            from += p + "lint: allow(".len();
            let Some(close) = rest.find(')') else { break };
            if &rest[..close] != code {
                continue;
            }
            let reason = rest[close + 1..]
                .trim_start_matches([' ', '\t', '\u{2014}', '\u{2013}', '-', ':'])
                .trim();
            return if reason.is_empty() {
                WaiverStatus::MissingReason
            } else {
                WaiverStatus::Waived(reason.to_string())
            };
        }
    }
    WaiverStatus::None
}

/// Whether the comment channel carries `marker` on the line or up to
/// [`LOOKBACK_LINES`] lines above it.
fn has_marker(stripped: &Stripped, line_idx: usize, marker: &str) -> bool {
    let lo = line_idx.saturating_sub(LOOKBACK_LINES);
    stripped.comments[lo..=line_idx]
        .iter()
        .any(|c| c.contains(marker))
}

/// Identifiers bound to `HashMap`/`HashSet` somewhere in this file: let
/// bindings, struct fields and fn parameters with an unordered-map type
/// ascription, plus `= HashMap::new()`-style initialisations. Per-file by
/// design — see the module docs for the trade-off.
fn collect_unordered_bindings(code: &[String]) -> BTreeSet<String> {
    let mut suspects = BTreeSet::new();
    for line in code {
        let trimmed = line.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(p) = line[from..].find(ty) {
                let abs = from + p;
                from = abs + ty.len();
                if !word_bounded(line, abs, ty.len()) {
                    continue;
                }
                if let Some(name) = binding_name_before(line, abs) {
                    suspects.insert(name);
                }
            }
        }
    }
    suspects
}

/// Walks left from a `HashMap`/`HashSet` type use to the identifier it is
/// bound to: handles `name: HashMap<..>`, `name: &HashMap<..>`,
/// `name = HashMap::new()` and path-qualified `std::collections::HashMap`.
fn binding_name_before(line: &str, ty_pos: usize) -> Option<String> {
    let mut t = line[..ty_pos].trim_end();
    // Strip path qualifiers (`std::collections::`) so we keep walking left.
    while t.ends_with("::") {
        t = t[..t.len() - 2].trim_end();
        let cut = t
            .rfind(|c: char| !is_ident_char(c))
            .map(|p| p + 1)
            .unwrap_or(0);
        t = t[..cut].trim_end();
    }
    // Strip reference sigils: `&`, `&mut`, `&'a mut`.
    loop {
        let stripped = t
            .strip_suffix("mut")
            .map(str::trim_end)
            .unwrap_or(t);
        let stripped = stripped.strip_suffix('&').map(str::trim_end).unwrap_or(stripped);
        if stripped.len() == t.len() {
            break;
        }
        t = stripped;
    }
    let sep = t.chars().next_back()?;
    if sep != ':' && sep != '=' {
        return None;
    }
    let t = t[..t.len() - 1].trim_end();
    if t.ends_with(':') || t.ends_with('=') || t.ends_with('<') || t.ends_with('>') {
        // `::HashMap` with no path head, `==`, generic position — not a binding.
        return None;
    }
    let start = t
        .rfind(|c: char| !is_ident_char(c))
        .map(|p| p + 1)
        .unwrap_or(0);
    let name = &t[start..];
    if name.is_empty()
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        || name == "mut"
        || name == "let"
    {
        return None;
    }
    Some(name.to_string())
}

/// D001: iteration over unordered maps in determinism-critical crates.
fn rule_d001(crate_name: &str, file: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !D001_CRATES.contains(&crate_name) {
        return;
    }
    let suspects = collect_unordered_bindings(&s.code);
    if suspects.is_empty() {
        return;
    }
    const METHODS: [&str; 7] = [
        ".iter()",
        ".iter_mut()",
        ".into_iter()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
    ];
    for (idx, line) in s.code.iter().enumerate() {
        for name in &suspects {
            // Method-call iteration: `map.iter()`, `self.map.values()`, ...
            let mut from = 0;
            while let Some(p) = line[from..].find(name.as_str()) {
                let abs = from + p;
                from = abs + name.len();
                if !word_bounded(line, abs, name.len()) {
                    continue;
                }
                // The iteration method may be chained on the same line or —
                // rustfmt style — at the start of the next one.
                let after = &line[abs + name.len()..];
                let next_line_head = if after.trim().is_empty() {
                    s.code.get(idx + 1).map(|l| l.trim_start()).unwrap_or("")
                } else {
                    ""
                };
                if let Some(m) = METHODS
                    .iter()
                    .find(|m| after.starts_with(**m) || next_line_head.starts_with(**m))
                {
                    findings.push(Finding {
                        rule: RuleId::D001,
                        file: file.to_string(),
                        line: idx + 1,
                        message: format!(
                            "iteration `{name}{m}` over an unordered map; use BTreeMap or sort first"
                        ),
                        waiver: None,
                    });
                }
            }
            // `for … in map {` / `for … in &map {`
            if let Some(in_pos) = line.find(" in ") {
                if contains_word(&line[..in_pos], "for") {
                    let mut rest = line[in_pos + 4..].trim_start();
                    rest = rest.strip_prefix("&mut ").unwrap_or(rest);
                    rest = rest.strip_prefix('&').unwrap_or(rest).trim_start();
                    // Consume a dotted path (`self.seen`, `ctx.state.map`)
                    // and compare its final segment.
                    let end = rest
                        .find(|c: char| !is_ident_char(c) && c != '.')
                        .unwrap_or(rest.len());
                    let head = rest[..end].rsplit('.').next().unwrap_or("");
                    let tail = rest[end..].trim_start();
                    // A trailing `.method()` is handled above; flag direct
                    // consumption of the map itself.
                    if head == name.as_str() && (tail.starts_with('{') || tail.is_empty()) {
                        findings.push(Finding {
                            rule: RuleId::D001,
                            file: file.to_string(),
                            line: idx + 1,
                            message: format!(
                                "`for … in {name}` iterates an unordered map; use BTreeMap or sort first"
                            ),
                            waiver: None,
                        });
                    }
                }
            }
        }
    }
}

/// D002: wall clocks and ambient RNG outside `bench`.
fn rule_d002(crate_name: &str, file: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if crate_name == TIMING_CRATE {
        return;
    }
    const PATTERNS: [&str; 4] = ["Instant::now", "SystemTime", "thread_rng", "rand::random"];
    for (idx, line) in s.code.iter().enumerate() {
        for pat in PATTERNS {
            if contains_word(line, pat) {
                findings.push(Finding {
                    rule: RuleId::D002,
                    file: file.to_string(),
                    line: idx + 1,
                    message: format!(
                        "`{pat}` is nondeterministic; derive randomness/timing from RoundStreams or move to bench"
                    ),
                    waiver: None,
                });
            }
        }
    }
}

/// D003: `.fork(` call sites must carry the construction-seed audit marker.
fn rule_d003(file: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    for (idx, line) in s.code.iter().enumerate() {
        if !line.contains(".fork(") {
            continue;
        }
        if has_marker(s, idx, "fork: construction-seed") {
            continue;
        }
        findings.push(Finding {
            rule: RuleId::D003,
            file: file.to_string(),
            line: idx + 1,
            message: "`.fork(` call without a `// fork: construction-seed` audit marker"
                .to_string(),
        waiver: None,
        });
    }
}

/// D004: FMA and unordered parallel float reductions in kernel files.
fn rule_d004(crate_name: &str, file_name: &str, file: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !is_kernel_file(crate_name, file_name) {
        return;
    }
    const PAR_SOURCES: [&str; 4] = ["par_iter", "into_par_iter", "par_chunks", "par_bridge"];
    const REDUCERS: [&str; 2] = [".sum()", ".reduce("];
    for (idx, line) in s.code.iter().enumerate() {
        if contains_word(line, "mul_add") {
            findings.push(Finding {
                rule: RuleId::D004,
                file: file.to_string(),
                line: idx + 1,
                message: "`mul_add` (FMA) changes rounding vs mul-then-add; not allowed on default kernel paths"
                    .to_string(),
                waiver: None,
            });
        }
        if PAR_SOURCES.iter().any(|p| line.contains(p)) {
            // Unordered reduction: a `.sum()`/`.reduce(` on the parallel
            // chain, scanned on this line and the next two (forward only —
            // a sequential `.sum()` above the par line is fine).
            let window_end = (idx + 2).min(s.code.len() - 1);
            if s.code[idx..=window_end]
                .iter()
                .any(|l| REDUCERS.iter().any(|r| l.contains(r)))
            {
                findings.push(Finding {
                    rule: RuleId::D004,
                    file: file.to_string(),
                    line: idx + 1,
                    message: "parallel iterator followed by `.sum()`/`.reduce(` — reduction order is schedule-dependent; reduce into indexed slots instead"
                        .to_string(),
                    waiver: None,
                });
            }
        }
    }
}

/// D005: `unsafe` blocks must be preceded by a `SAFETY:` comment.
fn rule_d005(file: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    for (idx, line) in s.code.iter().enumerate() {
        if !contains_word(line, "unsafe") {
            continue;
        }
        if has_marker(s, idx, "SAFETY:") {
            continue;
        }
        findings.push(Finding {
            rule: RuleId::D005,
            file: file.to_string(),
            line: idx + 1,
            message: "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            waiver: None,
        });
    }
}

/// D006: every `pub fn *_into` kernel needs an allocating counterpart.
fn rule_d006(crate_name: &str, file_name: &str, file: &str, s: &Stripped, findings: &mut Vec<Finding>) {
    if !is_kernel_file(crate_name, file_name) {
        return;
    }
    // All fn names in the file (any visibility — the counterpart may be
    // private or pub).
    let mut fn_names: BTreeSet<String> = BTreeSet::new();
    let mut into_fns: Vec<(usize, String)> = Vec::new();
    for (idx, line) in s.code.iter().enumerate() {
        let Some(p) = find_word(line, "fn") else { continue };
        let rest = line[p + 2..].trim_start();
        let end = rest
            .find(|c: char| !is_ident_char(c))
            .unwrap_or(rest.len());
        let name = &rest[..end];
        if name.is_empty() {
            continue;
        }
        fn_names.insert(name.to_string());
        if name.ends_with("_into") && line.trim_start().starts_with("pub") {
            into_fns.push((idx, name.to_string()));
        }
    }
    for (idx, name) in into_fns {
        let base = &name[..name.len() - "_into".len()];
        if !fn_names.contains(base) {
            findings.push(Finding {
                rule: RuleId::D006,
                file: file.to_string(),
                line: idx + 1,
                message: format!(
                    "`pub fn {name}` has no allocating counterpart `fn {base}` in this file"
                ),
                waiver: None,
            });
        }
    }
}

/// Resolves waivers for `findings`, skipping any finding `filter` rejects.
fn apply_waivers(s: &Stripped, findings: &mut [Finding], filter: impl Fn(&Finding) -> bool) {
    for f in findings.iter_mut() {
        if !filter(f) {
            continue;
        }
        match waiver_for(s, f.line - 1, f.rule.code()) {
            WaiverStatus::Waived(reason) => f.waiver = Some(reason),
            WaiverStatus::MissingReason => {
                f.message.push_str(" [waiver present but missing a reason]");
            }
            WaiverStatus::None => {}
        }
    }
}

/// Lints a set of files as one workspace: the per-file D rules run first,
/// then the call-graph rules A001/P001 (which need every file at once to
/// resolve cross-crate reachability), then — after waivers are resolved, so
/// staleness is judged against the final finding set — the hygiene rules
/// W001/W002.
///
/// Each entry is `(crate_name, file_name, display_path, source)`.
pub fn lint_files(files: &[(String, String, String, String)]) -> Report {
    let indexed = callgraph::CallGraph::index_files(files);
    let graph = callgraph::CallGraph::build(&indexed);
    let mut per_file: Vec<Vec<Finding>> = (0..indexed.len()).map(|_| Vec::new()).collect();
    for (fi, file) in indexed.iter().enumerate() {
        let s = &file.stripped;
        let f = &mut per_file[fi];
        rule_d001(&file.crate_name, &file.display_path, s, f);
        rule_d002(&file.crate_name, &file.display_path, s, f);
        rule_d003(&file.display_path, s, f);
        rule_d004(&file.crate_name, &file.file_name, &file.display_path, s, f);
        rule_d005(&file.display_path, s, f);
        rule_d006(&file.crate_name, &file.file_name, &file.display_path, s, f);
    }
    rules::rule_a001(&indexed, &graph, &mut per_file);
    rules::rule_p001(&indexed, &mut per_file);
    for (fi, file) in indexed.iter().enumerate() {
        apply_waivers(&file.stripped, &mut per_file[fi], |_| true);
    }
    rules::rule_w(&indexed, &mut per_file);
    for (fi, file) in indexed.iter().enumerate() {
        // Only the W findings just added are unprocessed; re-running the
        // others would double-append the missing-reason note.
        apply_waivers(&file.stripped, &mut per_file[fi], |f| {
            matches!(f.rule, RuleId::W001 | RuleId::W002)
        });
    }
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: indexed.len(),
    };
    for mut findings in per_file {
        findings.sort_by_key(|a| (a.line, a.rule));
        report.findings.extend(findings);
    }
    report
}

/// Lints one file's source text (a one-file workspace — cross-file
/// reachability obviously cannot fire here; `lint_tree` covers that).
///
/// * `crate_name` — the workspace crate the file belongs to (`"core"`,
///   `"tensor"`, ...), which scopes D001/D002/D004/D006 and the A/P rules;
/// * `file_name` — the bare file name (`"aggregation.rs"`), which scopes the
///   kernel-file rules;
/// * `display_path` — the path reported in findings.
pub fn lint_source(
    crate_name: &str,
    file_name: &str,
    display_path: &str,
    source: &str,
) -> Vec<Finding> {
    lint_files(&[(
        crate_name.to_string(),
        file_name.to_string(),
        display_path.to_string(),
        source.to_string(),
    )])
    .findings
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads `<root>/crates/*/src` into `(crate, file, display, source)` tuples,
/// in sorted order (the linter's own output is deterministic, naturally).
pub fn read_tree(root: &Path) -> io::Result<Vec<(String, String, String, String)>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for dir in crate_dirs {
        let crate_name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let source = fs::read_to_string(&path)?;
            let file_name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .display()
                .to_string();
            out.push((crate_name.clone(), file_name, display, source));
        }
    }
    Ok(out)
}

/// Walks `<root>/crates/*/src` and lints every `.rs` file as one workspace.
pub fn lint_tree(root: &Path) -> io::Result<Report> {
    Ok(lint_files(&read_tree(root)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(crate_name: &str, file_name: &str, src: &str) -> Vec<Finding> {
        lint_source(crate_name, file_name, file_name, src)
    }

    #[test]
    fn d001_fires_on_hashmap_iter_in_core() {
        let src = "let mut m: HashMap<usize, f32> = HashMap::new();\nfor (k, v) in m.iter() { total += v; }\n";
        let f = lint("core", "x.rs", src);
        assert!(f.iter().any(|f| f.rule == RuleId::D001), "{f:?}");
    }

    #[test]
    fn d001_fires_on_for_in_over_a_set_field() {
        let src = "pub struct S { seen: HashSet<usize> }\nimpl S { fn f(&self) { for x in &self.seen { use_it(x); } } }\n";
        let f = lint("flsim", "x.rs", src);
        assert!(f.iter().any(|f| f.rule == RuleId::D001), "{f:?}");
    }

    #[test]
    fn d001_silent_outside_restricted_crates_and_without_iteration() {
        // Same source in a non-restricted crate: fine.
        let src = "let mut m: HashMap<usize, f32> = HashMap::new();\nfor (k, v) in m.iter() {}\n";
        assert!(lint("bench", "x.rs", src).is_empty());
        // Insert/lookup without iteration: fine even in core.
        let src = "let mut m: HashMap<usize, f32> = HashMap::new();\nm.insert(1, 2.0); let v = m.get(&1);\n";
        assert!(lint("core", "x.rs", src).is_empty());
        // Building an unordered map FROM a vec iteration: the iterated
        // collection is ordered, fine.
        let src = "let m: HashMap<usize, f32> = pairs.iter().copied().collect();\nm.len();\n";
        assert!(lint("core", "x.rs", src).is_empty());
    }

    #[test]
    fn d002_fires_everywhere_but_bench() {
        let src = "let t0 = Instant::now();\n";
        assert!(lint("core", "x.rs", src).iter().any(|f| f.rule == RuleId::D002));
        assert!(lint("bench", "x.rs", src).is_empty());
    }

    #[test]
    fn d003_requires_the_audit_marker() {
        let bad = "let child = rng.fork(7);\n";
        assert!(lint("core", "x.rs", bad).iter().any(|f| f.rule == RuleId::D003));
        let good = "// fork: construction-seed\nlet child = rng.fork(7);\n";
        assert!(lint("core", "x.rs", good).is_empty());
        let inline = "let child = rng.fork(7); // fork: construction-seed\n";
        assert!(lint("core", "x.rs", inline).is_empty());
    }

    #[test]
    fn d004_scopes_to_kernel_files() {
        let fma = "let y = a.mul_add(b, c);\n";
        assert!(lint("tensor", "ops.rs", fma).iter().any(|f| f.rule == RuleId::D004));
        assert!(lint("core", "aggregation.rs", fma).iter().any(|f| f.rule == RuleId::D004));
        assert!(lint("core", "selection.rs", fma).is_empty());
        let par_sum = "let s: f32 = xs.par_iter()\n    .map(|x| x * x)\n    .sum();\n";
        assert!(lint("core", "robust.rs", par_sum).iter().any(|f| f.rule == RuleId::D004));
        // Sequential sum before the parallel line is fine (window is
        // forward-only).
        let seq_then_par = "let s: f32 = xs.iter().sum();\nys.par_iter_mut().for_each(|y| *y += s);\nlet t = 1;\nlet u = 2;\n";
        assert!(lint("core", "buffered.rs", seq_then_par).is_empty());
    }

    #[test]
    fn d005_requires_safety_comment() {
        let bad = "let p = unsafe { *ptr };\n";
        assert!(lint("core", "x.rs", bad).iter().any(|f| f.rule == RuleId::D005));
        let good = "// SAFETY: ptr is valid for reads, checked above.\nlet p = unsafe { *ptr };\n";
        assert!(lint("core", "x.rs", good).is_empty());
        // `#![forbid(unsafe_code)]` is not an unsafe block.
        assert!(lint("core", "x.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn d006_requires_allocating_counterpart_in_kernel_files() {
        let bad = "pub fn scale_into(dst: &mut [f32], src: &[f32], k: f32) {}\n";
        assert!(lint("tensor", "ops.rs", bad).iter().any(|f| f.rule == RuleId::D006));
        let good = "pub fn scale_into(dst: &mut [f32], src: &[f32], k: f32) {}\npub fn scale(src: &[f32], k: f32) -> Vec<f32> { vec![] }\n";
        assert!(lint("tensor", "ops.rs", good).is_empty());
        // Private `*_into` helpers are exempt.
        let private = "fn helper_into(dst: &mut [f32]) {}\n";
        assert!(lint("tensor", "ops.rs", private).is_empty());
        // Non-kernel files are exempt.
        assert!(lint("core", "selection.rs", bad).is_empty());
    }

    #[test]
    fn waivers_silence_with_reason_and_not_without() {
        let with_reason =
            "// lint: allow(D002) — bench-only diagnostic behind a feature gate\nlet t0 = Instant::now();\n";
        let f = lint("core", "x.rs", with_reason);
        assert_eq!(f.len(), 1);
        assert!(f[0].waiver.is_some());
        let without_reason = "// lint: allow(D002)\nlet t0 = Instant::now();\n";
        let f = lint("core", "x.rs", without_reason);
        assert_eq!(f.len(), 1);
        assert!(f[0].waiver.is_none(), "{f:?}");
        assert!(f[0].message.contains("missing a reason"));
        // A waiver for a different rule does not apply — and since nothing
        // in its window triggers that rule, it is also stale (W001).
        let wrong_rule = "// lint: allow(D001) — unrelated\nlet t0 = Instant::now();\n";
        let f = lint("core", "x.rs", wrong_rule);
        let d002: Vec<_> = f.iter().filter(|f| f.rule == RuleId::D002).collect();
        assert_eq!(d002.len(), 1);
        assert!(d002[0].waiver.is_none());
        assert!(
            f.iter().any(|f| f.rule == RuleId::W001 && f.line == 1),
            "{f:?}"
        );
    }

    #[test]
    fn a001_requires_reasoned_marker_on_reachable_allocations() {
        let src = concat!(
            "pub fn axpy_into(d: &mut [f32]) {\n",
            "    helper(d);\n",
            "}\n",
            "pub fn axpy(d: &[f32]) -> Vec<f32> { vec![0f32; d.len()] }\n",
            "fn helper(d: &mut [f32]) {\n",
            "    let scratch = vec![0f32; d.len()];\n",
            "}\n",
        );
        let f = lint("tensor", "ops.rs", src);
        let a: Vec<_> = f.iter().filter(|f| f.rule == RuleId::A001).collect();
        // Only the reachable `helper` allocation fires; the allocating twin
        // `axpy` is not a root and nothing hot calls it.
        assert_eq!(a.len(), 1, "{f:?}");
        assert_eq!(a[0].line, 6);
        assert!(a[0].message.contains("axpy_into -> helper"), "{}", a[0].message);
        // A reasoned marker silences it.
        let marked = src.replace(
            "    let scratch = vec![0f32; d.len()];",
            "    // alloc: pooled — arena miss, first round only\n    let scratch = vec![0f32; d.len()];",
        );
        let f = lint("tensor", "ops.rs", &marked);
        assert!(f.iter().all(|f| f.rule != RuleId::A001), "{f:?}");
        // A marker with a bad kind or no reason does not.
        let bad_kind = src.replace(
            "    let scratch = vec![0f32; d.len()];",
            "    // alloc: whatever — reason\n    let scratch = vec![0f32; d.len()];",
        );
        let f = lint("tensor", "ops.rs", &bad_kind);
        assert!(f
            .iter()
            .any(|f| f.rule == RuleId::A001 && f.message.contains("pooled|cold|bounded")));
    }

    #[test]
    fn p001_requires_reason_for_panic_sites() {
        let src = "pub fn pick(v: &[u32]) -> u32 {\n    *v.last().unwrap()\n}\n";
        let f = lint("core", "x.rs", src);
        assert!(f.iter().any(|f| f.rule == RuleId::P001), "{f:?}");
        // Reasoned expect is self-documenting.
        let good = "pub fn pick(v: &[u32]) -> u32 {\n    *v.last().expect(\"cohort is never empty\")\n}\n";
        assert!(lint("core", "x.rs", good).is_empty());
        // A panic: marker works too.
        let marked = "pub fn pick(v: &[u32]) -> u32 {\n    // panic: length checked by the builder\n    *v.last().unwrap()\n}\n";
        assert!(lint("core", "x.rs", marked).is_empty());
        // bench is exempt; test code is exempt.
        assert!(lint("bench", "x.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint("core", "x.rs", in_test).is_empty());
    }

    #[test]
    fn w002_flags_stale_markers() {
        let stale = "// alloc: cold — leftover after a refactor\nlet x = 1;\nlet y = 2;\nlet z = 3;\nlet w = 4;\n";
        let f = lint("core", "x.rs", stale);
        assert!(f.iter().any(|f| f.rule == RuleId::W002), "{f:?}");
        let live = "// alloc: cold — setup buffer\nlet v: Vec<f32> = Vec::new();\n";
        assert!(lint("core", "x.rs", live).iter().all(|f| f.rule != RuleId::W002));
        let stale_panic = "// panic: nothing here panics anymore\nlet x = 1;\nlet y = 2;\nlet z = 3;\nlet w = 4;\n";
        assert!(lint("core", "x.rs", stale_panic)
            .iter()
            .any(|f| f.rule == RuleId::W002));
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_fire() {
        let src = concat!(
            "// this mentions Instant::now and thread_rng in prose\n",
            "let doc = \"HashMap.iter() thread_rng() mul_add unsafe\";\n",
            "let raw = r#\"Instant::now() SystemTime\"#;\n",
            "/* block comment: rand::random() .fork( */\n",
        );
        assert!(lint("core", "aggregation.rs", src).is_empty());
    }

    #[test]
    fn binding_extraction_handles_paths_refs_and_fields() {
        let code: Vec<String> = [
            "let a: std::collections::HashMap<u32, u32> = Default::default();",
            "pub residuals: HashMap<usize, Vec<f32>>,",
            "fn f(controls: &HashMap<usize, Vec<f32>>) {}",
            "let b = HashSet::new();",
            "use std::collections::HashMap;",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let names = collect_unordered_bindings(&code);
        for expect in ["a", "residuals", "controls", "b"] {
            assert!(names.contains(expect), "{names:?}");
        }
        assert!(!names.contains("collections"));
    }
}
