//! Inverted dropout layer.

use crate::layer::{Layer, Param};
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation is a
/// pure identity.
///
/// The layer owns its RNG (forked per layer at construction) so dropped masks
/// are reproducible for a fixed model seed.
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: SeededRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, rng: &mut SeededRng) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Self {
            p,
            rng: rng.fork(0xD0), // fork: construction-seed
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros_like(input);
        for m in mask.data_mut() {
            *m = if self.rng.uniform() < keep { scale } else { 0.0 };
        }
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_output.mul(mask),
            None => grad_output.clone(),
        }
    }

    fn forward_into(&mut self, input: &Tensor, train: bool, pool: &mut TensorPool) -> Tensor {
        if let Some(old) = self.mask.take() {
            pool.recycle(old);
        }
        if !train || self.p == 0.0 {
            return pool.take_copy(input);
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = pool.take_uninit(input.dims());
        for m in mask.data_mut() {
            *m = if self.rng.uniform() < keep { scale } else { 0.0 };
        }
        let mut out = pool.take_uninit(input.dims());
        input.zip_map_into(&mask, &mut out, |a, b| a * b);
        self.mask = Some(mask);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        match &self.mask {
            Some(mask) => {
                let mut out = pool.take_uninit(grad_output.dims());
                grad_output.zip_map_into(mask, &mut out, |a, b| a * b);
                out
            }
            None => pool.take_copy(grad_output),
        }
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Rewind the mask stream to its construction seed rather than
        // re-forking from `_rng`: a clone of a never-trained template carries
        // the *unconsumed* state of the fork taken in `Dropout::new`, and
        // `SeededRng::new(seed)` reproduces exactly that state. This is what
        // keeps a cached worker model bitwise identical to clone-per-round.
        // The stale mask (if any) is left in place on purpose — the next
        // `forward_into` recycles it into the worker's own arena, whereas
        // dropping it here would leak the buffer out of the pool and force a
        // fresh allocation next round.
        self.rng = SeededRng::new(self.rng.seed());
    }

    fn config_hash(&self, hash: u64) -> u64 {
        // Both the drop probability and the mask-stream seed change training
        // behaviour without touching any parameter tensor; folding them in
        // lets the worker pool tell two same-shaped templates apart.
        let hash = crate::fnv1a_mix(hash, &self.p.to_bits().to_le_bytes());
        crate::fnv1a_mix(hash, &self.rng.seed().to_le_bytes())
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = SeededRng::new(0);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Tensor::arange(10).reshape(&[2, 5]);
        let y = layer.forward(&x, false);
        assert_eq!(y.data(), x.data());
        let g = layer.backward(&Tensor::ones(&[2, 5]));
        assert_eq!(g.data(), &[1.0; 10]);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction() {
        let mut rng = SeededRng::new(1);
        let mut layer = Dropout::new(0.3, &mut rng);
        let x = Tensor::ones(&[100, 100]);
        let y = layer.forward(&x, true);
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.05, "dropped fraction {frac}");
    }

    #[test]
    fn surviving_activations_are_scaled() {
        let mut rng = SeededRng::new(2);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[10, 10]);
        let y = layer.forward(&x, true);
        for &v in y.data() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut rng = SeededRng::new(3);
        let mut layer = Dropout::new(0.4, &mut rng);
        let x = Tensor::ones(&[200, 200]);
        let y = layer.forward(&x, true);
        assert!((y.mean() - 1.0).abs() < 0.03);
    }

    #[test]
    fn backward_uses_same_mask_as_forward() {
        let mut rng = SeededRng::new(4);
        let mut layer = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[4, 4]);
        let y = layer.forward(&x, true);
        let g = layer.backward(&Tensor::ones(&[4, 4]));
        // Gradient must be zero exactly where the output was dropped.
        for (gy, yy) in g.data().iter().zip(y.data()) {
            assert_eq!(*gy == 0.0, *yy == 0.0);
        }
    }

    #[test]
    fn reset_stochastic_state_rewinds_the_mask_stream() {
        let mut rng = SeededRng::new(6);
        let template = Dropout::new(0.5, &mut rng);
        let x = Tensor::ones(&[8, 8]);

        // A cached layer that already produced masks, then was reset, must
        // generate exactly the mask sequence a fresh clone generates.
        let mut cached = template.clone();
        for _ in 0..3 {
            let _ = cached.forward(&x, true);
        }
        let mut entropy = SeededRng::new(99);
        cached.reset_stochastic_state(&mut entropy);

        let mut fresh = template.clone();
        for _ in 0..2 {
            let a = cached.forward(&x, true);
            let b = fresh.forward(&x, true);
            assert_eq!(a.data(), b.data(), "reset must rewind to the construction stream");
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_train_mode() {
        let mut rng = SeededRng::new(5);
        let mut layer = Dropout::new(0.0, &mut rng);
        let x = Tensor::arange(8).reshape(&[2, 4]);
        assert_eq!(layer.forward(&x, true).data(), x.data());
        assert_eq!(layer.probability(), 0.0);
    }
}
