// Fixture: D001 — unordered-map iteration in a determinism-critical crate.
// Linted as crate "core". Not compiled; subdirectories of tests/ are not
// cargo test targets.

use std::collections::{HashMap, HashSet};

pub struct Tracker {
    weights: HashMap<usize, f32>,
    seen: HashSet<usize>,
}

impl Tracker {
    pub fn total(&self) -> f32 {
        let mut total = 0.0;
        // BAD: HashMap iteration order is nondeterministic.
        for (_, w) in self.weights.iter() {
            total += w;
        }
        total
    }

    pub fn sum_values(&self) -> f32 {
        // BAD: multi-line chained iteration, rustfmt style.
        self.weights
            .values()
            .sum()
    }

    pub fn visit(&self) {
        // BAD: consuming the set directly in a for loop.
        for client in &self.seen {
            touch(*client);
        }
    }
}

fn touch(_c: usize) {}
