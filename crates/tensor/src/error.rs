//! Error type for fallible tensor operations.

use std::fmt;

/// Errors produced by tensor construction and shape-sensitive operations.
///
/// Most hot-path operations in this crate panic on shape mismatch (they are
/// programming errors inside the training loop), but construction from
/// user-provided data and reshaping expose fallible variants that return this
/// error so callers such as dataset loaders can surface problems gracefully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors were expected to have identical shapes but did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        left: Vec<usize>,
        /// Shape of the right-hand operand.
        right: Vec<usize>,
    },
    /// The inner dimensions of a matrix product do not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// A reshape was requested to a shape with a different element count.
    InvalidReshape {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the target shape.
        to: usize,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// An operation required a tensor of a particular rank.
    RankMismatch {
        /// Expected rank (number of dimensions).
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// A generic invalid-argument error with a description.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => write!(
                f,
                "shape implies {expected} elements but {actual} were provided"
            ),
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimension mismatch: left has {left_cols} cols, right has {right_rows} rows"
            ),
            TensorError::InvalidReshape { from, to } => {
                write!(f, "cannot reshape tensor of {from} elements into {to} elements")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank-{expected} tensor, got rank-{actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_data_mismatch() {
        let e = TensorError::ShapeDataMismatch {
            expected: 6,
            actual: 4,
        };
        assert!(e.to_string().contains("6"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn display_matmul_mismatch() {
        let e = TensorError::MatmulDimMismatch {
            left_cols: 3,
            right_rows: 5,
        };
        assert!(e.to_string().contains("matmul"));
    }

    #[test]
    fn display_invalid_reshape() {
        let e = TensorError::InvalidReshape { from: 8, to: 9 };
        assert!(e.to_string().contains("reshape"));
    }

    #[test]
    fn display_rank_mismatch() {
        let e = TensorError::RankMismatch {
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("rank"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&TensorError::InvalidArgument("x".into()));
    }
}
