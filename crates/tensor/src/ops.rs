//! Element-wise activations and row-wise softmax / log-softmax.
//!
//! Backward passes live in `fedcross-nn`; the masks / Jacobian-vector products
//! they need are expressed in terms of the forward outputs defined here.

use crate::Tensor;

/// The numerically stable logistic sigmoid used by both the allocating and
/// in-place forms (one definition so they stay bitwise identical).
#[inline]
fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// The ReLU value function — one definition shared by the allocating and
/// destination-passing forms so they stay bitwise identical.
#[inline]
fn relu_scalar(x: f32) -> f32 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// The ReLU derivative mask (1 where `x > 0`, else 0); see [`relu_scalar`].
#[inline]
fn relu_mask_scalar(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

impl Tensor {
    /// Rectified linear unit: `max(x, 0)` element-wise.
    pub fn relu(&self) -> Tensor {
        self.map(relu_scalar)
    }

    /// Destination-passing form of [`Tensor::relu`]; bitwise identical.
    pub fn relu_into(&self, out: &mut Tensor) {
        self.map_into(out, relu_scalar);
    }

    /// In-place form of [`Tensor::relu`]; bitwise identical.
    pub fn relu_in_place(&mut self) {
        self.map_in_place(relu_scalar);
    }

    /// Element-wise derivative mask of ReLU evaluated at `self` (1 where
    /// `x > 0`, else 0).
    pub fn relu_mask(&self) -> Tensor {
        self.map(relu_mask_scalar)
    }

    /// Destination-passing form of [`Tensor::relu_mask`]; bitwise identical.
    pub fn relu_mask_into(&self, out: &mut Tensor) {
        self.map_into(out, relu_mask_scalar);
    }

    /// Leaky ReLU with negative slope `alpha`.
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        self.map(|x| if x > 0.0 { x } else { alpha * x })
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`, numerically stable for large |x|.
    pub fn sigmoid(&self) -> Tensor {
        self.map(sigmoid_scalar)
    }

    /// In-place form of [`Tensor::sigmoid`]; bitwise identical.
    pub fn sigmoid_in_place(&mut self) {
        self.map_in_place(sigmoid_scalar);
    }

    /// Destination-passing form of [`Tensor::sigmoid`]; bitwise identical.
    pub fn sigmoid_into(&self, out: &mut Tensor) {
        self.map_into(out, sigmoid_scalar);
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// In-place form of [`Tensor::tanh`]; bitwise identical.
    pub fn tanh_in_place(&mut self) {
        self.map_in_place(f32::tanh);
    }

    /// Element-wise natural exponent.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Element-wise natural logarithm (values clamped away from zero first).
    pub fn ln_clamped(&self) -> Tensor {
        self.map(|x| x.max(1e-12).ln())
    }

    /// Element-wise square.
    pub fn square(&self) -> Tensor {
        self.map(|x| x * x)
    }

    /// Row-wise softmax of a rank-2 tensor `[rows, cols]`.
    ///
    /// Each row is shifted by its maximum before exponentiation for numerical
    /// stability, then normalised to sum to one.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires a rank-2 tensor");
        let cols = self.dims()[1];
        let mut out = self.clone();
        for row in out.data_mut().chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        out
    }

    /// Row-wise log-softmax of a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        out.log_softmax_rows_in_place();
        out
    }

    /// In-place form of [`Tensor::log_softmax_rows`]; bitwise identical.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn log_softmax_rows_in_place(&mut self) {
        assert_eq!(self.rank(), 2, "log_softmax_rows requires a rank-2 tensor");
        let cols = self.dims()[1];
        for row in self.data_mut().chunks_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            for x in row.iter_mut() {
                *x -= log_sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(x.relu().data(), &[0.0, 0.0, 2.0]);
        assert_eq!(x.relu_mask().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[2]);
        assert_eq!(x.leaky_relu(0.1).data(), &[-0.2, 3.0]);
    }

    #[test]
    fn sigmoid_known_values_and_stability() {
        let x = Tensor::from_vec(vec![0.0, 100.0, -100.0], &[3]);
        let s = x.sigmoid();
        assert!((s.data()[0] - 0.5).abs() < 1e-6);
        assert!((s.data()[1] - 1.0).abs() < 1e-6);
        assert!(s.data()[2].abs() < 1e-6);
        assert!(!s.has_non_finite());
    }

    #[test]
    fn tanh_is_odd() {
        let x = Tensor::from_vec(vec![0.7, -0.7], &[2]);
        let t = x.tanh();
        assert!((t.data()[0] + t.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn exp_and_ln_are_inverse() {
        let x = Tensor::from_vec(vec![0.5, 1.0, 2.0], &[3]);
        let back = x.exp().ln_clamped();
        for (a, b) in back.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn square_squares() {
        assert_eq!(
            Tensor::from_vec(vec![-3.0, 2.0], &[2]).square().data(),
            &[9.0, 4.0]
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let s = x.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).data().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Larger logits get larger probabilities.
        assert!(s.get(&[0, 2]) > s.get(&[0, 0]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let shifted = x.add_scalar(100.0);
        let a = x.softmax_rows();
        let b = shifted.softmax_rows();
        for (p, q) in a.data().iter().zip(b.data()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 0.0, -1000.0], &[1, 3]);
        let s = x.softmax_rows();
        assert!(!s.has_non_finite());
        assert!((s.data()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_vec(vec![0.2, -1.3, 2.7, 0.0, 0.0, 0.0], &[2, 3]);
        let ls = x.log_softmax_rows();
        let ref_ls = x.softmax_rows().ln_clamped();
        for (a, b) in ls.data().iter().zip(ref_ls.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn log_softmax_values_are_nonpositive() {
        let x = Tensor::from_vec(vec![5.0, 1.0, -2.0, 0.3], &[2, 2]);
        assert!(x.log_softmax_rows().data().iter().all(|&v| v <= 1e-6));
    }
}
