//! # fedcross-data
//!
//! Synthetic federated datasets and non-IID partitioners for the FedCross
//! reproduction.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100, FEMNIST, Shakespeare and
//! Sent140. None of those corpora are available in this offline environment,
//! so this crate generates *synthetic stand-ins* that preserve the properties
//! the FL algorithms are sensitive to:
//!
//! * class-conditional structure that a small CNN/LSTM can actually learn,
//! * label-distribution skew across clients controlled by a Dirichlet
//!   `Dir(β)` prior exactly as in the paper (Hsu et al. 2019) — see
//!   [`partition::dirichlet_partition`],
//! * "natural" non-IIDness for the LEAF datasets, where every client is one
//!   user with its own latent style (writer style for FEMNIST, character
//!   distribution for Shakespeare, topic/vocabulary bias for Sent140).
//!
//! The top-level entry point is [`federated::FederatedDataset`], which holds
//! one [`Dataset`] per client plus a held-out global test set — the exact
//! structure every algorithm crate consumes.
//!
//! ## Quick example
//!
//! ```
//! use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
//! use fedcross_data::partition::Heterogeneity;
//! use fedcross_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let fed = FederatedDataset::synth_cifar10(
//!     &SynthCifar10Config { num_clients: 10, samples_per_client: 20, ..Default::default() },
//!     Heterogeneity::Dirichlet(0.5),
//!     &mut rng,
//! );
//! assert_eq!(fed.num_clients(), 10);
//! assert!(fed.test_set().len() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dataset;
pub mod federated;
pub mod partition;
pub mod shard;
pub mod source;
pub mod stats;
pub mod synth;

pub use dataset::{Batch, Dataset};
pub use federated::FederatedDataset;
pub use partition::Heterogeneity;
pub use shard::{ShardPlane, ShardPlaneConfig, ShardStats};
pub use source::{ClientDataSource, EagerSource, SynthTaskSource};
