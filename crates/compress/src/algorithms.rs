//! FL algorithms with compressed uploads.

use crate::codec::Compressor;
use crate::feedback::ErrorFeedback;
use fedcross_flsim::engine::{FederatedAlgorithm, RoundContext, RoundReport};
use fedcross_nn::params::{add_scaled, average, difference, ParamBlock};
use fedcross_tensor::SeededRng;
use serde::{Deserialize, Serialize};

/// Accumulated upload-volume accounting of a compressed run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UploadStats {
    /// Scalars the clients would have uploaded without compression.
    pub raw_scalars: u64,
    /// Scalars actually occupied by the compressed encodings.
    pub compressed_scalars: u64,
    /// Number of compressed uploads recorded.
    pub uploads: u64,
}

impl UploadStats {
    /// Overall compression ratio (raw / compressed); 1.0 when nothing was
    /// recorded.
    pub fn ratio(&self) -> f64 {
        if self.compressed_scalars == 0 {
            1.0
        } else {
            self.raw_scalars as f64 / self.compressed_scalars as f64
        }
    }

    /// Upload volume saved, in mebibytes at 4 bytes per scalar.
    pub fn saved_mib(&self) -> f64 {
        (self.raw_scalars.saturating_sub(self.compressed_scalars)) as f64 * 4.0
            / (1024.0 * 1024.0)
    }
}

/// FedAvg whose clients upload compressed parameter deltas.
///
/// Each round: dispatch the global model, train, compress every client's delta
/// with the configured [`Compressor`] (optionally through per-client
/// [`ErrorFeedback`]), decode on the server, average the decoded deltas and
/// apply them to the global model. The exact raw-vs-compressed upload volume is
/// tracked in [`UploadStats`].
///
/// Not resumable: the stochastic-compression RNG is consumed incrementally
/// across rounds (it cannot be re-derived from a round index), so this type
/// keeps the default `FederatedAlgorithm::restore_state`, which refuses
/// rather than silently replaying a different compression sequence.
pub struct CompressedFedAvg {
    global: ParamBlock,
    compressor: Box<dyn Compressor>,
    feedback: Option<ErrorFeedback>,
    stats: UploadStats,
    rng: SeededRng,
}

impl CompressedFedAvg {
    /// Creates compressed FedAvg. `error_feedback` should be enabled for
    /// biased compressors (top-`k`); `seed` drives stochastic compression.
    pub fn new(
        init_params: Vec<f32>,
        compressor: Box<dyn Compressor>,
        error_feedback: bool,
        seed: u64,
    ) -> Self {
        Self {
            global: ParamBlock::from(init_params),
            compressor,
            feedback: if error_feedback {
                Some(ErrorFeedback::new())
            } else {
                None
            },
            stats: UploadStats::default(),
            rng: SeededRng::new(seed),
        }
    }

    /// The accumulated upload accounting.
    pub fn upload_stats(&self) -> UploadStats {
        self.stats
    }

    /// Whether error feedback is enabled.
    pub fn uses_error_feedback(&self) -> bool {
        self.feedback.is_some()
    }
}

impl FederatedAlgorithm for CompressedFedAvg {
    fn name(&self) -> String {
        let ef = if self.feedback.is_some() { ", EF" } else { "" };
        format!("fedavg+{}{}", self.compressor.label(), ef)
    }

    fn run_round(&mut self, _round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        let selected = ctx.select_clients();
        let jobs: Vec<(usize, ParamBlock)> = selected
            .iter()
            .map(|&client| (client, self.global.clone()))
            .collect();
        let updates = ctx.local_train_batch(&jobs);
        drop(jobs);
        if updates.is_empty() {
            return RoundReport::default();
        }

        let mut decoded_deltas = Vec::with_capacity(updates.len());
        for update in &updates {
            let delta = difference(&update.params, &self.global);
            let compressed = match self.feedback.as_mut() {
                Some(feedback) => feedback.compress_with_feedback(
                    update.client,
                    &delta,
                    self.compressor.as_ref(),
                    &mut self.rng,
                ),
                None => self.compressor.compress(&delta, &mut self.rng),
            };
            self.stats.raw_scalars += delta.len() as u64;
            self.stats.compressed_scalars += compressed.payload_scalars() as u64;
            self.stats.uploads += 1;
            decoded_deltas.push(compressed.decode());
        }

        let aggregate = average(&decoded_deltas);
        add_scaled(self.global.make_mut(), &aggregate, 1.0);
        RoundReport::from_updates(&updates)
    }

    fn global_params(&self) -> Vec<f32> {
        self.global.to_vec()
    }

    fn global_params_into(&self, out: &mut Vec<f32>) {
        // Allocation-free deployment read for the per-round evaluation path.
        out.clear();
        out.extend_from_slice(&self.global);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Identity;
    use crate::quantize::UniformQuantizer;
    use crate::sparsify::TopK;
    use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
    use fedcross_data::Heterogeneity;
    use fedcross_flsim::{LocalTrainConfig, Simulation, SimulationConfig};
    use fedcross_nn::models::{cnn, CnnConfig};
    use fedcross_nn::Model;

    fn tiny_setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
        let mut rng = SeededRng::new(seed);
        let data = FederatedDataset::synth_cifar10(
            &SynthCifar10Config {
                num_clients: 6,
                samples_per_client: 30,
                test_samples: 60,
                ..Default::default()
            },
            Heterogeneity::Iid,
            &mut rng,
        );
        let template = cnn(
            (3, 16, 16),
            10,
            CnnConfig {
                conv_channels: (4, 8),
                fc_hidden: 16,
                kernel: 3,
            },
            &mut rng,
        );
        (data, template)
    }

    fn quick_config(rounds: usize) -> SimulationConfig {
        SimulationConfig {
            rounds,
            clients_per_round: 3,
            eval_every: rounds.max(1),
            eval_batch_size: 64,
            local: LocalTrainConfig {
                epochs: 2,
                batch_size: 10,
                lr: 0.1,
                momentum: 0.5,
                weight_decay: 0.0,
            },
            seed: 9,
        }
    }

    #[test]
    fn identity_compression_matches_plain_fedavg_updates() {
        let (data, template) = tiny_setup(0);
        let mut algo = CompressedFedAvg::new(template.params_flat(), Box::new(Identity), false, 1);
        let result = Simulation::new(quick_config(3), &data, template).run(&mut algo);
        // Evaluated at round 0 and at the final round.
        assert_eq!(result.history.len(), 2);
        let stats = algo.upload_stats();
        assert_eq!(stats.raw_scalars, stats.compressed_scalars);
        assert!((stats.ratio() - 1.0).abs() < 1e-9);
        assert_eq!(stats.uploads, 9);
        assert!(!algo.uses_error_feedback());
    }

    #[test]
    fn quantized_uploads_learn_and_shrink_the_payload() {
        let (data, template) = tiny_setup(1);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            Box::new(UniformQuantizer::new(8, true)),
            false,
            2,
        );
        let result = Simulation::new(quick_config(10), &data, template).run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "8-bit quantized FedAvg should learn ({} vs {})",
            result.history.best_accuracy(),
            init_acc
        );
        let stats = algo.upload_stats();
        assert!(stats.ratio() > 3.0, "ratio {}", stats.ratio());
        assert!(stats.saved_mib() > 0.0);
        assert!(algo.name().contains("quant-8bit"));
    }

    #[test]
    fn topk_with_error_feedback_learns() {
        let (data, template) = tiny_setup(2);
        let init_acc = fedcross_flsim::eval::evaluate_params(
            template.as_ref(),
            &template.params_flat(),
            data.test_set(),
            64,
        )
        .accuracy;
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            Box::new(TopK::new(0.25)),
            true,
            3,
        );
        let result = Simulation::new(quick_config(12), &data, template).run(&mut algo);
        assert!(
            result.history.best_accuracy() > init_acc + 0.1,
            "top-k + EF FedAvg should learn ({} vs {})",
            result.history.best_accuracy(),
            init_acc
        );
        assert!(algo.upload_stats().ratio() > 1.8);
        assert!(algo.uses_error_feedback());
        assert!(algo.name().ends_with(", EF"));
    }

    #[test]
    fn empty_stats_have_unit_ratio() {
        let stats = UploadStats::default();
        assert_eq!(stats.ratio(), 1.0);
        assert_eq!(stats.saved_mib(), 0.0);
    }
}
