//! Table printing and JSON result dumps shared by the harness binaries.

use fedcross_flsim::TrainingHistory;
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Prints a fixed-width table header followed by a separator line.
pub fn print_header(columns: &[(&str, usize)]) {
    let mut line = String::new();
    let mut rule = String::new();
    for (name, width) in columns {
        line.push_str(&format!("{name:<width$}  "));
        rule.push_str(&"-".repeat(*width));
        rule.push_str("  ");
    }
    println!("{line}");
    println!("{rule}");
}

/// Prints one fixed-width row.
pub fn print_row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (value, width) in cells {
        line.push_str(&format!("{value:<width$}  "));
    }
    println!("{line}");
}

/// Formats an accuracy as the paper's "mean ± std" cell.
pub fn format_mean_std(mean: f32, std: f32) -> String {
    format!("{mean:.2} ± {std:.2}")
}

/// Formats a learning curve as a compact sparkline-style series of
/// `round:acc%` points for terminal output.
pub fn format_curve(history: &TrainingHistory, max_points: usize) -> String {
    let curve = history.accuracy_curve();
    if curve.is_empty() {
        return String::from("(no evaluations)");
    }
    let stride = (curve.len() / max_points.max(1)).max(1);
    let mut parts: Vec<String> = curve
        .iter()
        .step_by(stride)
        .map(|(round, acc)| format!("{round}:{acc:.1}"))
        .collect();
    let last = curve.last().expect("non-empty curve");
    let last_str = format!("{}:{:.1}", last.0, last.1);
    if parts.last() != Some(&last_str) {
        parts.push(last_str);
    }
    parts.join(" ")
}

/// Directory where harness binaries drop machine-readable results.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("FEDCROSS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/fedcross-results"));
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Serialises `value` as pretty JSON into `results_dir()/name`.
///
/// Failures are reported on stderr but never abort the experiment — the
/// printed tables are the primary artefact.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(name);
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(err) = write_file(&path, &json) {
                eprintln!("warning: could not write {}: {err}", path.display());
            } else {
                println!("(wrote {})", path.display());
            }
        }
        Err(err) => eprintln!("warning: could not serialise {name}: {err}"),
    }
}

fn write_file(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(contents.as_bytes())
}

/// Renders an ASCII heat-row for the Figure 3 style class-distribution plots:
/// one character per class, scaled by the per-class share of the client's
/// samples.
pub fn ascii_distribution_row(counts: &[usize]) -> String {
    const LEVELS: [char; 5] = [' ', '.', 'o', 'O', '@'];
    let total: usize = counts.iter().sum();
    if total == 0 {
        return " ".repeat(counts.len());
    }
    counts
        .iter()
        .map(|&c| {
            let share = c as f32 / total as f32;
            let idx = ((share * 4.0).ceil() as usize).min(4);
            LEVELS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_flsim::RoundRecord;

    #[test]
    fn mean_std_formatting() {
        assert_eq!(format_mean_std(55.701, 0.736), "55.70 ± 0.74");
    }

    #[test]
    fn curve_formatting_includes_first_and_last_points() {
        let mut history = TrainingHistory::new();
        for round in 0..10 {
            history.push(RoundRecord {
                round,
                accuracy: round as f32 / 10.0,
                test_loss: 0.0,
                train_loss: 0.0,
            });
        }
        let s = format_curve(&history, 4);
        assert!(s.starts_with("0:0.0"));
        assert!(s.ends_with("9:90.0"));
        assert_eq!(format_curve(&TrainingHistory::new(), 4), "(no evaluations)");
    }

    #[test]
    fn ascii_distribution_row_scales_with_share() {
        let row = ascii_distribution_row(&[0, 1, 10, 100]);
        assert_eq!(row.len(), 4);
        assert_eq!(row.chars().next(), Some(' '));
        assert_eq!(row.chars().last(), Some('@'));
        assert_eq!(ascii_distribution_row(&[0, 0]), "  ");
    }

    #[test]
    fn results_dir_is_creatable() {
        let dir = results_dir();
        assert!(dir.exists());
    }
}
