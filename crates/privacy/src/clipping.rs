//! L2-norm clipping of client updates.
//!
//! Differential privacy for model updates requires a bound on how much any
//! single client can move the aggregate — the *sensitivity*. The standard way
//! to obtain it (DP-FedAvg, Abadi et al.'s DP-SGD) is to clip each client's
//! parameter *delta* (trained parameters minus dispatched parameters) to a
//! maximum L2 norm `C` before it is aggregated or noised.

use fedcross_nn::params::{difference, l2_norm};

/// Scales `delta` in place so its L2 norm is at most `max_norm`, returning the
/// norm it had before clipping.
///
/// Deltas whose norm is already within the bound are left untouched, matching
/// the `min(1, C/‖Δ‖)` scaling of DP-FedAvg.
///
/// # Panics
/// Panics if `max_norm` is not strictly positive.
pub fn clip_to_norm(delta: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "clip norm must be strictly positive");
    let norm = l2_norm(delta);
    if norm > max_norm {
        let scale = max_norm / norm;
        for value in delta.iter_mut() {
            *value *= scale;
        }
    }
    norm
}

/// Computes the clipped delta `clip(trained - anchor, max_norm)`.
///
/// This is the quantity a DP mechanism perturbs: the anchor is whatever the
/// server dispatched (the global model for FedAvg, the middleware model for
/// FedCross), so the reconstruction `anchor + delta` stays compatible with the
/// un-noised pipeline.
///
/// # Panics
/// Panics if the vectors have different lengths or `max_norm <= 0`.
pub fn clipped_delta(trained: &[f32], anchor: &[f32], max_norm: f32) -> Vec<f32> {
    let mut delta = difference(trained, anchor);
    clip_to_norm(&mut delta, max_norm);
    delta
}

/// Per-round clipping statistics, useful for tuning the clip norm `C`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClippingStats {
    /// Number of deltas that exceeded the bound and were rescaled.
    pub clipped: usize,
    /// Number of deltas observed.
    pub total: usize,
    /// Mean pre-clipping norm.
    pub mean_norm: f32,
    /// Maximum pre-clipping norm.
    pub max_norm: f32,
}

impl ClippingStats {
    /// Fraction of deltas that were actually clipped.
    pub fn clip_fraction(&self) -> f32 {
        if self.total == 0 {
            0.0
        } else {
            self.clipped as f32 / self.total as f32
        }
    }
}

/// Clips a batch of deltas in place and reports aggregate statistics.
pub fn clip_batch(deltas: &mut [Vec<f32>], max_norm: f32) -> ClippingStats {
    let mut stats = ClippingStats {
        total: deltas.len(),
        ..Default::default()
    };
    let mut norm_sum = 0f64;
    for delta in deltas.iter_mut() {
        let norm = clip_to_norm(delta, max_norm);
        norm_sum += norm as f64;
        if norm > max_norm {
            stats.clipped += 1;
        }
        if norm > stats.max_norm {
            stats.max_norm = norm;
        }
    }
    if stats.total > 0 {
        stats.mean_norm = (norm_sum / stats.total as f64) as f32;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::l2_norm;

    #[test]
    fn small_delta_is_untouched() {
        let mut delta = vec![0.3, 0.4];
        let norm = clip_to_norm(&mut delta, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(delta, vec![0.3, 0.4]);
    }

    #[test]
    fn large_delta_is_scaled_to_the_bound() {
        let mut delta = vec![3.0, 4.0];
        let norm = clip_to_norm(&mut delta, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((l2_norm(&delta) - 1.0).abs() < 1e-5);
        // Direction is preserved.
        assert!((delta[0] / delta[1] - 0.75).abs() < 1e-5);
    }

    #[test]
    fn delta_exactly_at_the_bound_is_untouched() {
        let mut delta = vec![1.0, 0.0];
        clip_to_norm(&mut delta, 1.0);
        assert_eq!(delta, vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn zero_clip_norm_is_rejected() {
        let mut delta = vec![1.0];
        clip_to_norm(&mut delta, 0.0);
    }

    #[test]
    fn clipped_delta_is_trained_minus_anchor_with_bound() {
        let anchor = vec![1.0, 1.0, 1.0];
        let trained = vec![1.0, 1.0, 11.0];
        let delta = clipped_delta(&trained, &anchor, 2.0);
        assert!((l2_norm(&delta) - 2.0).abs() < 1e-5);
        assert_eq!(delta[0], 0.0);
        assert_eq!(delta[1], 0.0);
        assert!(delta[2] > 0.0);
    }

    #[test]
    fn clip_batch_reports_fraction_and_norms() {
        let mut deltas = vec![vec![0.1, 0.0], vec![10.0, 0.0], vec![0.0, 3.0]];
        let stats = clip_batch(&mut deltas, 1.0);
        assert_eq!(stats.total, 3);
        assert_eq!(stats.clipped, 2);
        assert!((stats.clip_fraction() - 2.0 / 3.0).abs() < 1e-6);
        assert!((stats.max_norm - 10.0).abs() < 1e-6);
        assert!((stats.mean_norm - (0.1 + 10.0 + 3.0) / 3.0).abs() < 1e-5);
        for delta in &deltas {
            assert!(l2_norm(delta) <= 1.0 + 1e-5);
        }
    }

    #[test]
    fn clip_batch_of_nothing_is_empty_stats() {
        let mut deltas: Vec<Vec<f32>> = Vec::new();
        let stats = clip_batch(&mut deltas, 1.0);
        assert_eq!(stats, ClippingStats::default());
        assert_eq!(stats.clip_fraction(), 0.0);
    }
}
