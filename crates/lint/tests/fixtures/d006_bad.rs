// Fixture: D006 — pub *_into kernel without an allocating counterpart.
// Linted as crate "tensor".

pub fn axpy_into(dst: &mut [f32], a: f32, xs: &[f32]) {
    // BAD: there is no `pub fn axpy(...) -> Vec<f32>` in this file.
    for (d, x) in dst.iter_mut().zip(xs) {
        *d += a * x;
    }
}

pub fn scale_into(dst: &mut [f32], k: f32) {
    for d in dst.iter_mut() {
        *d *= k;
    }
}

// GOOD: scale_into has its allocating counterpart.
pub fn scale(xs: &[f32], k: f32) -> Vec<f32> {
    let mut out = xs.to_vec();
    scale_into(&mut out, k);
    out
}

// GOOD: private helpers are exempt.
fn accumulate_into(dst: &mut [f32], xs: &[f32]) {
    for (d, x) in dst.iter_mut().zip(xs) {
        *d += x;
    }
}
