//! Flatten layer: collapses all non-batch dimensions.

use crate::layer::{Layer, Param};
use fedcross_tensor::{SeededRng, Tensor, TensorPool};

/// Flattens `[N, d1, d2, ...]` into `[N, d1*d2*...]`.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a new flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        assert!(input.rank() >= 1, "Flatten requires rank >= 1 input");
        self.input_dims = Some(input.dims().to_vec());
        let batch = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        input.reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward called before forward");
        grad_output.reshape(dims)
    }

    fn forward_into(&mut self, input: &Tensor, _train: bool, pool: &mut TensorPool) -> Tensor {
        assert!(input.rank() >= 1, "Flatten requires rank >= 1 input");
        match &mut self.input_dims {
            Some(cached) => {
                cached.clear();
                cached.extend_from_slice(input.dims());
            }
            // alloc: pooled — dims cached on first call; steady rounds take the Some branch
            None => self.input_dims = Some(input.dims().to_vec()),
        }
        let batch = input.dims()[0];
        let rest: usize = input.dims()[1..].iter().product();
        let mut out = pool.take_copy(input);
        out.reshape_in_place(&[batch, rest]);
        out
    }

    fn backward_into(&mut self, grad_output: &Tensor, pool: &mut TensorPool) -> Tensor {
        let dims = self
            .input_dims
            .as_ref()
            .expect("backward called before forward");
        let mut out = pool.take_copy(grad_output);
        out.reshape_in_place(dims);
        out
    }

    fn params(&self) -> Vec<&Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        // alloc: bounded — short per-layer slice-ref list
        Vec::new()
    }

    fn reset_stochastic_state(&mut self, _rng: &mut SeededRng) {
        // Pure reshape: no stochastic state.
    }

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn clone_layer(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_and_unflatten_roundtrip() {
        let mut layer = Flatten::new();
        let x = Tensor::arange(24).reshape(&[2, 3, 2, 2]);
        let y = layer.forward(&x, true);
        assert_eq!(y.dims(), &[2, 12]);
        let back = layer.backward(&y);
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn flatten_has_no_params() {
        assert_eq!(Flatten::new().param_count(), 0);
        assert_eq!(Flatten::new().name(), "flatten");
    }

    #[test]
    fn flatten_of_already_flat_input_is_identity() {
        let mut layer = Flatten::new();
        let x = Tensor::arange(6).reshape(&[3, 2]);
        let y = layer.forward(&x, true);
        assert_eq!(y.dims(), &[3, 2]);
        assert_eq!(y.data(), x.data());
    }
}
