// Fixture: waiver syntax. Linted as crate "core".

use std::time::Instant;

pub fn gated_diagnostic() -> u128 {
    // lint: allow(D002) — diagnostic timing behind a bench-only feature gate
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}

pub fn bad_waiver() -> u128 {
    // lint: allow(D002)
    let t0 = Instant::now();
    t0.elapsed().as_nanos()
}
