//! Checkpoint and resume: stop a FedCross run half-way, persist its complete
//! state (middleware models + learning curve + communication counters) to
//! JSON, reload it after a simulated server restart and finish the run —
//! **bitwise identically** to a run that was never interrupted.
//!
//! FedCross' training state is the middleware model list — the deployable
//! global model is derived from it — so a production server has to checkpoint
//! the whole list, not one model. The engine derives every round's random
//! streams from the *absolute* round index, so `Simulation::resume` continues
//! the exact trajectory: same client selections, same evaluation cadence,
//! same parameters to the last bit.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin checkpoint_resume
//! ```

use fedcross::{FedCross, FedCrossConfig};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    Checkpoint, FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(55);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );

    let fed_config = FedCrossConfig {
        alpha: 0.9,
        ..Default::default()
    };
    let sim_config = SimulationConfig {
        rounds: 20,
        clients_per_round: 4,
        eval_every: 2,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 13,
    };
    let halfway = sim_config.rounds / 2;
    let sim = Simulation::new(sim_config, &data, template.clone_model());

    // Reference: the same 20 rounds with no interruption, for the bitwise
    // comparison at the end.
    let mut reference = FedCross::new(fed_config, template.params_flat(), 4);
    let uninterrupted = sim.run(&mut reference);

    // Phase 1: train the first half of the run and checkpoint atomically.
    let mut algo = FedCross::new(fed_config, template.params_flat(), 4);
    let partial = sim.run_segment(&mut algo, 0, halfway);
    println!(
        "phase 1: rounds 0..{halfway}, accuracy so far {:.1}%",
        partial.final_accuracy_pct()
    );

    let checkpoint_path = std::env::temp_dir().join("fedcross-example-checkpoint.json");
    let checkpoint = sim
        .checkpoint(&algo, &partial)
        .expect("FedCross supports checkpointing");
    checkpoint.save(&checkpoint_path).expect("checkpoint saves");
    println!(
        "checkpointed {} middleware models ({} parameters each) at round {} to {}",
        checkpoint.state.models.len(),
        checkpoint.param_count(),
        checkpoint.rounds_completed,
        checkpoint_path.display()
    );

    // Phase 2: the server restarts — reload the checkpoint into a freshly
    // constructed FedCross and let the engine finish rounds 10..20. Round
    // RNGs, availability draws and the eval_every cadence all derive from the
    // absolute round index, so nothing about the trajectory changes.
    let restored = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut resumed = FedCross::new(fed_config, template.params_flat(), 4);
    let second = sim
        .resume(&restored, &mut resumed)
        .expect("checkpoint matches the resuming simulation");
    println!(
        "phase 2 (resumed after restart): rounds {halfway}..{}, final accuracy {:.1}%",
        sim_config.rounds,
        second.final_accuracy_pct()
    );

    // One continuous learning curve: strictly increasing absolute rounds.
    let rounds: Vec<usize> = second.history.records().iter().map(|r| r.round).collect();
    assert!(
        rounds.windows(2).all(|w| w[0] < w[1]),
        "merged history must have strictly increasing round indices: {rounds:?}"
    );
    println!("merged learning curve evaluated at rounds {rounds:?}");

    // The money shot: restart was a non-event.
    let identical = reference
        .global_params()
        .iter()
        .zip(resumed.global_params())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && uninterrupted.history == second.history
        && uninterrupted.comm == second.comm;
    println!(
        "resumed run is bitwise identical to the uninterrupted run: {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    assert!(identical, "resume must be a non-event");

    let _ = std::fs::remove_file(&checkpoint_path);
    println!("\nExpected: identical global parameters, history records and communication");
    println!("totals — lossless persistence of the multi-model training state across a restart.");
}
