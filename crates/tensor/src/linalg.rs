//! Dense linear algebra: matrix multiplication and transposition.
//!
//! Matrix multiplication is the dominant kernel of every model in the
//! reproduction (fully-connected layers directly, convolutions via `im2col`,
//! LSTM gate projections), so it is the one place this crate parallelises with
//! rayon and blocks the inner loops for cache friendliness.

use crate::Tensor;
use rayon::prelude::*;

/// Minimum number of multiply-accumulate operations (`m·k·n`) before a matmul
/// variant switches to rayon.
///
/// All three variants (`matmul`, `matmul_at_b`, `matmul_a_bt`) share this one
/// flop-based rule, so the parallel/serial decision is consistent regardless
/// of which operand is transposed: tiny products (LSTM cells on small hidden
/// sizes, per-sample ops) stay single-threaded rather than paying the
/// fork/join overhead, while gradient products with a small `m·n` output but
/// a deep `k` reduction (batch dimension) still parallelise.
const PAR_THRESHOLD_FLOPS: usize = 512 * 1024;

#[inline]
fn parallel_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PAR_THRESHOLD_FLOPS
}

impl Tensor {
    /// Matrix product of two rank-2 tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// # Panics
    /// Panics if either tensor is not rank-2 or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul: left operand must be rank-2");
        assert_eq!(other.rank(), 2, "matmul: right operand must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0f32; m * n];

        let row_kernel = |row_out: &mut [f32], i: usize| {
            // ikj loop order: stream through b rows, accumulate into the output row.
            for p in 0..k {
                let a_ip = a[i * k + p];
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in row_out.iter_mut().zip(b_row) {
                    *o += a_ip * bv;
                }
            }
        };

        if parallel_worthwhile(m, k, n) {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| row_kernel(row, i));
        } else {
            for (i, row) in out.chunks_mut(n).enumerate() {
                row_kernel(row, i);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `self^T * other` without materialising the transpose:
    /// `[k, m]^T x [k, n] -> [m, n]`.
    ///
    /// Used by linear/conv backward passes to form weight gradients. The `k`
    /// dimension here is the batch/spatial reduction axis, so it is typically
    /// much larger than the `m x n` output; above the shared flop threshold
    /// the reduction is split into `k`-blocks reduced per thread and summed,
    /// which parallelises even when the output itself is small.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_at_b: left operand must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_at_b: right operand must be rank-2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_at_b: leading dimensions differ ({k} vs {k2})");

        let a = self.data();
        let b = other.data();

        // out[i, j] = sum_p a[p, i] * b[p, j] over a k-range.
        let block_kernel = |out: &mut [f32], p_range: std::ops::Range<usize>| {
            for p in p_range {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        };

        if parallel_worthwhile(m, k, n) && k >= 2 {
            // Block over k and reduce per block in parallel, then sum the
            // partials in block order. The block length is a fixed function
            // of `k` alone — never of the machine's thread count — so the
            // f32 summation grouping (and therefore every seeded training
            // trajectory) is bitwise identical across machines.
            const K_BLOCK_ROWS: usize = 1024;
            let blocks = k.div_ceil(K_BLOCK_ROWS);
            let partials: Vec<Vec<f32>> = (0..blocks)
                .into_par_iter()
                .map(|block| {
                    let start = block * K_BLOCK_ROWS;
                    let end = ((block + 1) * K_BLOCK_ROWS).min(k);
                    let mut partial = vec![0f32; m * n];
                    block_kernel(&mut partial, start..end);
                    partial
                })
                .collect();
            let mut partials = partials.into_iter();
            let mut out = partials.next().unwrap_or_else(|| vec![0f32; m * n]);
            for partial in partials {
                for (o, &p) in out.iter_mut().zip(&partial) {
                    *o += p;
                }
            }
            Tensor::from_vec(out, &[m, n])
        } else {
            let mut out = vec![0f32; m * n];
            block_kernel(&mut out, 0..k);
            Tensor::from_vec(out, &[m, n])
        }
    }

    /// Computes `self * other^T` without materialising the transpose:
    /// `[m, k] x [n, k]^T -> [m, n]`.
    ///
    /// Used by linear/conv backward passes to propagate gradients to inputs.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_a_bt: left operand must be rank-2");
        assert_eq!(other.rank(), 2, "matmul_a_bt: right operand must be rank-2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_a_bt: inner dimensions differ ({k} vs {k2})");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0f32; m * n];

        let row_kernel = |row_out: &mut [f32], i: usize| {
            let a_row = &a[i * k..(i + 1) * k];
            for (j, o) in row_out.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        };

        if parallel_worthwhile(m, k, n) {
            out.par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, row)| row_kernel(row, i));
        } else {
            for (i, row) in out.chunks_mut(n).enumerate() {
                row_kernel(row, i);
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose requires a rank-2 tensor");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = vec![0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data()[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Matrix–vector product: `[m, n] x [n] -> [m]`.
    ///
    /// # Panics
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matvec: matrix must be rank-2");
        assert_eq!(v.rank(), 1, "matvec: vector must be rank-1");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        assert_eq!(n, v.numel(), "matvec: dimension mismatch");
        let mut out = vec![0f32; m];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data()[i * n..(i + 1) * n];
            *o = row.iter().zip(v.data()).map(|(&a, &b)| a * b).sum();
        }
        Tensor::from_vec(out, &[m])
    }

    /// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 1, "outer: left operand must be rank-1");
        assert_eq!(other.rank(), 1, "outer: right operand must be rank-1");
        let (m, n) = (self.numel(), other.numel());
        let mut out = vec![0f32; m * n];
        for (i, &a) in self.data().iter().enumerate() {
            for (j, &b) in other.data().iter().enumerate() {
                out[i * n + j] = a * b;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::arange(9).reshape(&[3, 3]);
        let c = a.matmul(&Tensor::eye(3));
        assert_eq!(c.data(), a.data());
    }

    #[test]
    #[should_panic]
    fn matmul_rejects_bad_inner_dim() {
        let _ = Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_large_matches_naive() {
        // Large enough to cross the parallel threshold.
        let m = 130;
        let k = 40;
        let n = 135;
        let a = Tensor::from_vec(
            (0..m * k).map(|i| ((i % 13) as f32) - 6.0).collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i % 7) as f32) * 0.5 - 1.0).collect(),
            &[k, n],
        );
        let c = a.matmul(&b);
        // Naive reference for a few probed entries.
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (64, 77), (3, 100)] {
            let mut acc = 0f32;
            for p in 0..k {
                acc += a.get(&[i, p]) * b.get(&[p, j]);
            }
            assert!((c.get(&[i, j]) - acc).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[4, 3]);
        let b = Tensor::from_vec((0..8).map(|i| (i as f32) * 0.5).collect(), &[4, 2]);
        let fused = a.matmul_at_b(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(approx_eq(fused.data(), explicit.data(), 1e-5));
    }

    #[test]
    fn matmul_at_b_parallel_reduction_matches_explicit_transpose() {
        // Deep k with a small m x n output: crosses the shared flop threshold
        // (m·k·n = 16·4096·16 = 1M) so the blocked parallel reduction runs.
        let (k, m, n) = (4096usize, 16usize, 16usize);
        let a = Tensor::from_vec(
            (0..k * m).map(|i| ((i % 11) as f32) * 0.25 - 1.0).collect(),
            &[k, m],
        );
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i % 7) as f32) * 0.5 - 1.5).collect(),
            &[k, n],
        );
        let fused = a.matmul_at_b(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(fused.dims(), &[m, n]);
        for (x, y) in fused.data().iter().zip(explicit.data()) {
            // The blocked reduction reassociates the k-sum; allow f32 slack.
            assert!((x - y).abs() < 1e-2 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_a_bt_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|i| (i as f32) - 10.0).collect(), &[5, 4]);
        let fused = a.matmul_a_bt(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(approx_eq(fused.data(), explicit.data(), 1e-5));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn matvec_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let v = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        assert_eq!(a.matvec(&v).data(), &[-1.0, -1.0]);
    }

    #[test]
    fn outer_product_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn matmul_associativity_with_identity_chain() {
        let a = Tensor::arange(4).reshape(&[2, 2]);
        let i = Tensor::eye(2);
        let left = a.matmul(&i).matmul(&i);
        assert_eq!(left, a);
    }
}
