//! Command-line front end for the determinism linter.
//!
//! ```text
//! fedcross-lint [--deny-all] [--root PATH] [--quiet]
//! ```
//!
//! Walks `<root>/crates/*/src`, prints every finding (waived ones are
//! labelled, not hidden) and a summary. Exit status is 0 unless
//! `--deny-all` is given and un-waived violations remain — that is the CI
//! gate.

use std::path::PathBuf;
use std::process::ExitCode;

use fedcross_lint::{lint_tree, RuleId};

fn usage() -> ! {
    eprintln!("usage: fedcross-lint [--deny-all] [--root PATH] [--quiet]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut deny_all = false;
    let mut quiet = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => deny_all = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => usage(),
            },
            "--help" | "-h" => {
                println!("fedcross-lint: static determinism-invariant checker (D001-D006)");
                println!();
                println!("usage: fedcross-lint [--deny-all] [--root PATH] [--quiet]");
                println!();
                for rule in RuleId::ALL {
                    println!("  {}  {}", rule.code(), rule.summary());
                }
                println!();
                println!("Waiver syntax: // lint: allow(D00x) — reason");
                println!("See docs/LINTS.md for the full catalogue.");
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    // Resolve a usable root: accept either the workspace root or a CWD
    // somewhere inside it (walk up until a `crates/` directory appears).
    let mut probe = root.clone();
    let root = loop {
        if probe.join("crates").is_dir() {
            break probe;
        }
        match probe.parent() {
            Some(p) => probe = p.to_path_buf(),
            None => {
                eprintln!(
                    "fedcross-lint: no crates/ directory at or above {}",
                    root.display()
                );
                return ExitCode::from(2);
            }
        }
    };

    let report = match lint_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fedcross-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    let violations = report.violations();
    let waived = report.waived();
    if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "fedcross-lint: {} files scanned, {} violation(s), {} waived",
            report.files_scanned,
            violations.len(),
            waived.len()
        );
    }
    if deny_all && !violations.is_empty() {
        eprintln!(
            "fedcross-lint: --deny-all: {} un-waived violation(s)",
            violations.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
