//! VGG-16 style network, the largest model of the paper's Table II.
//!
//! VGG-16's defining traits for the paper's analysis are (i) stacked
//! conv-conv-pool blocks and (ii) a parameter-heavy fully-connected head —
//! the head is what makes VGG the slowest model to start converging in
//! Figure 5(i)–(l). This width-scaled variant keeps both traits.

use crate::layers::{Conv2d, Dropout, Flatten, Linear, MaxPool2d, Relu};
use crate::models::ImageShape;
use crate::{Model, Sequential};
use fedcross_tensor::SeededRng;

/// Configuration of the VGG-style network.
#[derive(Debug, Clone)]
pub struct VggConfig {
    /// Channel widths of the three conv-conv-pool blocks.
    pub block_widths: [usize; 3],
    /// Widths of the two hidden fully-connected layers.
    pub fc_widths: [usize; 2],
    /// Dropout probability in the FC head (VGG uses 0.5).
    pub dropout: f32,
}

impl Default for VggConfig {
    fn default() -> Self {
        Self {
            block_widths: [8, 16, 32],
            fc_widths: [128, 64],
            dropout: 0.5,
        }
    }
}

impl VggConfig {
    /// A larger configuration closer to the true VGG-16 channel progression.
    pub fn paper_scale() -> Self {
        Self {
            block_widths: [64, 128, 256],
            fc_widths: [512, 512],
            dropout: 0.5,
        }
    }
}

/// Builds the VGG-style model: three `conv-relu-conv-relu-pool` blocks
/// followed by `fc-relu-dropout-fc-relu-dropout-fc`.
///
/// # Panics
/// Panics if the spatial size is not divisible by 8 (three 2× poolings).
pub fn vgg_lite(
    input: ImageShape,
    classes: usize,
    config: VggConfig,
    rng: &mut SeededRng,
) -> Box<dyn Model> {
    let (c, h, w) = input;
    assert!(h % 8 == 0 && w % 8 == 0, "spatial size must be divisible by 8");
    let [w1, w2, w3] = config.block_widths;
    let [f1, f2] = config.fc_widths;
    let flat = w3 * (h / 8) * (w / 8);

    let mut model = Sequential::new("vgg16");
    let mut in_c = c;
    for &out_c in &[w1, w2, w3] {
        model = model
            .push(Conv2d::new(in_c, out_c, 3, 1, 1, rng))
            .push(Relu::new())
            .push(Conv2d::new(out_c, out_c, 3, 1, 1, rng))
            .push(Relu::new())
            .push(MaxPool2d::new(2));
        in_c = out_c;
    }
    model
        .push(Flatten::new())
        .push(Linear::new(flat, f1, rng))
        .push(Relu::new())
        .push(Dropout::new(config.dropout, rng))
        .push(Linear::new(f1, f2, rng))
        .push(Relu::new())
        .push(Dropout::new(config.dropout, rng))
        .push(Linear::new(f2, classes, rng))
        .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_tensor::Tensor;

    #[test]
    fn forward_shape_matches_class_count() {
        let mut rng = SeededRng::new(0);
        let mut model = vgg_lite((3, 16, 16), 10, VggConfig::default(), &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = model.forward(&x, false);
        assert_eq!(y.dims(), &[2, 10]);
        assert_eq!(model.arch_name(), "vgg16");
    }

    #[test]
    fn vgg_is_larger_than_cnn_and_resnet_lite() {
        // Mirrors the paper's Section IV-C2 remark that VGG-16 dwarfs ResNet-20.
        let mut rng = SeededRng::new(1);
        let vgg = vgg_lite((3, 16, 16), 10, VggConfig::default(), &mut rng);
        let cnn = crate::models::fedavg_cnn((3, 16, 16), 10, &mut rng);
        let resnet = crate::models::resnet20_lite((3, 16, 16), 10, &mut rng);
        assert!(vgg.param_count() > resnet.param_count());
        assert!(vgg.param_count() > cnn.param_count() / 2);
    }

    #[test]
    fn paper_scale_is_substantially_larger() {
        let mut rng = SeededRng::new(2);
        let small = vgg_lite((3, 16, 16), 10, VggConfig::default(), &mut rng);
        let big = vgg_lite((3, 16, 16), 10, VggConfig::paper_scale(), &mut rng);
        assert!(big.param_count() > 10 * small.param_count());
    }

    #[test]
    #[should_panic]
    fn rejects_spatial_size_not_divisible_by_eight() {
        let mut rng = SeededRng::new(3);
        let _ = vgg_lite((3, 12, 12), 10, VggConfig::default(), &mut rng);
    }

    #[test]
    fn eval_mode_is_deterministic_despite_dropout() {
        let mut rng = SeededRng::new(4);
        let mut model = vgg_lite((1, 8, 8), 4, VggConfig::default(), &mut rng);
        let x = Tensor::ones(&[1, 1, 8, 8]);
        let a = model.forward(&x, false);
        let b = model.forward(&x, false);
        assert_eq!(a.data(), b.data());
    }
}
