//! Criterion micro-benchmarks of one client-side SGD step (forward + backward
//! + update) for each model family of Table II.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fedcross_nn::loss::softmax_cross_entropy;
use fedcross_nn::models::{fedavg_cnn, lstm_classifier, resnet20_lite, vgg_lite, LstmConfig, VggConfig};
use fedcross_nn::optim::Sgd;
use fedcross_nn::Model;
use fedcross_tensor::{init, SeededRng, Tensor};

fn step(model: &mut dyn Model, x: &Tensor, labels: &[usize], sgd: &mut Sgd) {
    model.zero_grads();
    let logits = model.forward(x, true);
    let (_, grad) = softmax_cross_entropy(&logits, labels);
    model.backward(&grad);
    sgd.step(model);
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("client_training_step");
    group.sample_size(10);
    let mut rng = SeededRng::new(1);

    let image = init::normal(&[10, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..10).map(|i| i % 10).collect();

    let mut cnn = fedavg_cnn((3, 16, 16), 10, &mut rng);
    group.bench_function("cnn_batch10", |b| {
        let mut sgd = Sgd::paper_default();
        b.iter(|| step(black_box(cnn.as_mut()), &image, &labels, &mut sgd))
    });

    let mut resnet = resnet20_lite((3, 16, 16), 10, &mut rng);
    group.bench_function("resnet20_lite_batch10", |b| {
        let mut sgd = Sgd::paper_default();
        b.iter(|| step(black_box(resnet.as_mut()), &image, &labels, &mut sgd))
    });

    let mut vgg = vgg_lite((3, 16, 16), 10, VggConfig::default(), &mut rng);
    group.bench_function("vgg_lite_batch10", |b| {
        let mut sgd = Sgd::paper_default();
        b.iter(|| step(black_box(vgg.as_mut()), &image, &labels, &mut sgd))
    });

    let tokens = Tensor::from_vec(
        (0..10 * 10).map(|i| (i % 30) as f32).collect(),
        &[10, 10],
    );
    let text_labels: Vec<usize> = (0..10).map(|i| i % 32).collect();
    let mut lstm = lstm_classifier(
        LstmConfig {
            vocab: 32,
            embed_dim: 16,
            hidden_dim: 32,
        },
        32,
        &mut rng,
    );
    group.bench_function("lstm_batch10", |b| {
        let mut sgd = Sgd::paper_default();
        b.iter(|| step(black_box(lstm.as_mut()), &tokens, &text_labels, &mut sgd))
    });

    group.finish();
}

criterion_group!(benches, bench_training_step);
criterion_main!(benches);
