//! Reductions, norms, distances and model-similarity measures.
//!
//! [`cosine_similarity`] is the similarity measure FedCross uses to pick
//! collaborative models (Section III-B1 of the paper); the flat-parameter
//! variants here operate directly on the flattened model vectors that the
//! cloud server holds.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        self.sum() / self.numel() as f32
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.numel() == 0 {
            return 0.0;
        }
        let mean = self.mean();
        self.data()
            .iter()
            .map(|&x| (x - mean) * (x - mean))
            .sum::<f32>()
            / self.numel() as f32
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in a rank-1 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(self.numel() > 0, "argmax of empty tensor");
        self.data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Row-wise argmax of a rank-2 tensor (one index per row).
    ///
    /// # Panics
    /// Panics if the tensor is not rank-2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        let cols = self.dims()[1];
        self.data()
            .chunks(cols)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            // alloc: bounded — one index per eval row
            .collect()
    }

    /// Dot product with another tensor of identical shape.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "dot: element counts differ ({} vs {})",
            self.numel(),
            other.numel()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data().iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data().iter().map(|&x| x.abs()).sum()
    }

    /// Squared Euclidean distance to another tensor of identical shape.
    pub fn squared_distance(&self, other: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            other.numel(),
            "squared_distance: element counts differ"
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean distance to another tensor of identical shape.
    pub fn distance(&self, other: &Tensor) -> f32 {
        self.squared_distance(other).sqrt()
    }
}

/// Chunk width of the unrolled pairwise kernels below.
///
/// Eight independent accumulator lanes break the serial dependency chain of a
/// naive reduction, so the compiler auto-vectorizes the loop; the same
/// chunked-unrolled structure is used by the in-place fused kernels in
/// `fedcross_nn::params`, keeping the whole parameter plane on one code shape.
pub const KERNEL_LANES: usize = 8;

/// Fused single pass over two slices computing `<x, y>`, `<x, x>` and
/// `<y, y>` in `f64`, with [`KERNEL_LANES`] independent accumulator lanes.
///
/// This is the shared inner loop of [`cosine_similarity`] (FedCross'
/// collaborative-model selection measure): one pass instead of three, with
/// no serial dependency between lanes.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_and_norms(x: &[f32], y: &[f32]) -> (f64, f64, f64) {
    assert_eq!(x.len(), y.len(), "dot_and_norms: lengths differ");
    let mut dot = [0f64; KERNEL_LANES];
    let mut nx = [0f64; KERNEL_LANES];
    let mut ny = [0f64; KERNEL_LANES];
    let mut x_chunks = x.chunks_exact(KERNEL_LANES);
    let mut y_chunks = y.chunks_exact(KERNEL_LANES);
    for (xc, yc) in (&mut x_chunks).zip(&mut y_chunks) {
        for lane in 0..KERNEL_LANES {
            let a = xc[lane] as f64;
            let b = yc[lane] as f64;
            dot[lane] += a * b;
            nx[lane] += a * a;
            ny[lane] += b * b;
        }
    }
    for (lane, (&a, &b)) in x_chunks.remainder().iter().zip(y_chunks.remainder()).enumerate() {
        let a = a as f64;
        let b = b as f64;
        dot[lane] += a * b;
        nx[lane] += a * a;
        ny[lane] += b * b;
    }
    (
        dot.iter().sum(),
        nx.iter().sum(),
        ny.iter().sum(),
    )
}

/// Squared Euclidean distance between two slices, accumulated in `f64` with
/// [`KERNEL_LANES`] independent lanes (the shared inner loop of
/// [`euclidean_distance`] and `fedcross_nn::params::squared_distance`).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn squared_distance_slices(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "squared_distance_slices: lengths differ");
    let mut acc = [0f64; KERNEL_LANES];
    let mut x_chunks = x.chunks_exact(KERNEL_LANES);
    let mut y_chunks = y.chunks_exact(KERNEL_LANES);
    for (xc, yc) in (&mut x_chunks).zip(&mut y_chunks) {
        for lane in 0..KERNEL_LANES {
            let d = (xc[lane] - yc[lane]) as f64;
            acc[lane] += d * d;
        }
    }
    for (lane, (&a, &b)) in x_chunks.remainder().iter().zip(y_chunks.remainder()).enumerate() {
        let d = (a - b) as f64;
        acc[lane] += d * d;
    }
    acc.iter().sum()
}

/// Squared L2 norm of a slice in `f64`, with exactly the lane structure the
/// `nx` accumulator of [`dot_and_norms`] uses — so a cached norm combined via
/// [`cosine_from_parts`] is bitwise identical to a fresh
/// [`cosine_similarity`] call. This is what lets similarity-based selection
/// compute each model's norm once instead of `K-1` times per round.
pub fn norm_sq(x: &[f32]) -> f64 {
    let mut acc = [0f64; KERNEL_LANES];
    let mut chunks = x.chunks_exact(KERNEL_LANES);
    for xc in &mut chunks {
        for lane in 0..KERNEL_LANES {
            let a = xc[lane] as f64;
            acc[lane] += a * a;
        }
    }
    for (lane, &a) in chunks.remainder().iter().enumerate() {
        let a = a as f64;
        acc[lane] += a * a;
    }
    acc.iter().sum()
}

/// Dot product of two slices in `f64`, with exactly the lane structure the
/// `dot` accumulator of [`dot_and_norms`] uses (see [`norm_sq`]).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_f64(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_f64: lengths differ");
    let mut acc = [0f64; KERNEL_LANES];
    let mut x_chunks = x.chunks_exact(KERNEL_LANES);
    let mut y_chunks = y.chunks_exact(KERNEL_LANES);
    for (xc, yc) in (&mut x_chunks).zip(&mut y_chunks) {
        for lane in 0..KERNEL_LANES {
            acc[lane] += (xc[lane] as f64) * (yc[lane] as f64);
        }
    }
    for (lane, (&a, &b)) in x_chunks.remainder().iter().zip(y_chunks.remainder()).enumerate() {
        acc[lane] += (a as f64) * (b as f64);
    }
    acc.iter().sum()
}

/// Combines a dot product and two squared norms into the clamped cosine
/// similarity — the one definition shared by [`cosine_similarity`] and the
/// cached-norm selection path.
pub fn cosine_from_parts(dot: f64, nx: f64, ny: f64) -> f32 {
    let denom = nx.sqrt() * ny.sqrt();
    if denom <= f64::MIN_POSITIVE {
        return 0.0;
    }
    (dot / denom).clamp(-1.0, 1.0) as f32
}

/// Cosine similarity between two flat parameter slices.
///
/// Defined as `<x, y> / (||x|| * ||y||)` and clamped to `[-1, 1]`; returns 0
/// when either vector has (near-)zero norm so that freshly-initialised models
/// never produce NaNs in the selection strategies.
pub fn cosine_similarity(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "cosine_similarity: lengths differ");
    let (dot, nx, ny) = dot_and_norms(x, y);
    cosine_from_parts(dot, nx, ny)
}

/// Cosine similarity between two tensors of identical element count.
pub fn cosine_similarity_tensors(x: &Tensor, y: &Tensor) -> f32 {
    cosine_similarity(x.data(), y.data())
}

/// Euclidean distance between two flat parameter slices.
pub fn euclidean_distance(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "euclidean_distance: lengths differ");
    squared_distance_slices(x, y).sqrt() as f32
}

/// Mean of a slice of f32 values (0 for an empty slice).
pub fn mean_of(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f32>() / values.len() as f32
}

/// Sample standard deviation of a slice (0 for fewer than two values).
pub fn std_dev_of(values: &[f32]) -> f32 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = mean_of(values);
    let var = values
        .iter()
        .map(|&x| (x - mean) * (x - mean))
        .sum::<f32>()
        / (values.len() - 1) as f32;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_mean_variance() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert!((t.variance() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn max_min_argmax() {
        let t = Tensor::from_vec(vec![3.0, -1.0, 7.0, 2.0], &[4]);
        assert_eq!(t.max(), 7.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn argmax_rows_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.8, 0.1, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn dot_and_norms() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.l2_norm(), 5.0);
        assert_eq!(a.l1_norm(), 7.0);
    }

    #[test]
    fn distances() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.squared_distance(&b), 25.0);
        assert_eq!(a.distance(&b), 5.0);
    }

    #[test]
    fn cosine_similarity_identical_vectors_is_one() {
        let x = vec![0.5, -1.0, 2.0, 3.0];
        assert!((cosine_similarity(&x, &x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_opposite_vectors_is_minus_one() {
        let x = vec![1.0, 2.0, -3.0];
        let y: Vec<f32> = x.iter().map(|v| -v).collect();
        assert!((cosine_similarity(&x, &y) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_orthogonal_vectors_is_zero() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 1.0];
        assert!(cosine_similarity(&x, &y).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_scale_invariant() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.2, -0.4, 1.7];
        let scaled: Vec<f32> = y.iter().map(|v| v * 42.0).collect();
        assert!((cosine_similarity(&x, &y) - cosine_similarity(&x, &scaled)).abs() < 1e-5);
    }

    #[test]
    fn cosine_similarity_zero_vector_returns_zero() {
        let x = vec![0.0, 0.0, 0.0];
        let y = vec![1.0, 2.0, 3.0];
        assert_eq!(cosine_similarity(&x, &y), 0.0);
    }

    #[test]
    fn cosine_similarity_tensor_wrapper() {
        let a = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        assert!((cosine_similarity_tensors(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn euclidean_distance_matches_tensor_distance() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 6.0, 3.0];
        assert!((euclidean_distance(&a, &b) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_and_norms_matches_sequential_reference() {
        // Lengths straddling the unroll width, including the remainder path.
        for n in [0usize, 1, 7, 8, 9, 64, 65, 1000] {
            let x: Vec<f32> = (0..n).map(|i| ((i % 17) as f32) * 0.3 - 2.0).collect();
            let y: Vec<f32> = (0..n).map(|i| ((i % 13) as f32) * -0.7 + 1.0).collect();
            let (dot, nx, ny) = super::dot_and_norms(&x, &y);
            let ref_dot: f64 = x.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
            let ref_nx: f64 = x.iter().map(|&a| (a as f64) * (a as f64)).sum();
            let ref_ny: f64 = y.iter().map(|&b| (b as f64) * (b as f64)).sum();
            assert!((dot - ref_dot).abs() < 1e-9 * (1.0 + ref_dot.abs()));
            assert!((nx - ref_nx).abs() < 1e-9 * (1.0 + ref_nx));
            assert!((ny - ref_ny).abs() < 1e-9 * (1.0 + ref_ny));
        }
    }

    #[test]
    fn cached_norm_parts_are_bitwise_identical_to_fused_pass() {
        // The whole point of norm_sq/dot_f64: splitting the fused pass into
        // cached pieces must not change a single similarity bit, or cached
        // selection would alter training trajectories.
        for n in [0usize, 1, 7, 8, 9, 65, 1000] {
            let x: Vec<f32> = (0..n).map(|i| ((i % 19) as f32) * 0.4 - 3.0).collect();
            let y: Vec<f32> = (0..n).map(|i| ((i % 11) as f32) * -0.6 + 2.0).collect();
            let (dot, nx, ny) = super::dot_and_norms(&x, &y);
            assert_eq!(super::dot_f64(&x, &y).to_bits(), dot.to_bits());
            assert_eq!(super::norm_sq(&x).to_bits(), nx.to_bits());
            assert_eq!(super::norm_sq(&y).to_bits(), ny.to_bits());
            assert_eq!(
                super::cosine_from_parts(dot, nx, ny).to_bits(),
                super::cosine_similarity(&x, &y).to_bits()
            );
        }
    }

    #[test]
    fn squared_distance_slices_matches_sequential_reference() {
        for n in [1usize, 5, 8, 23, 129] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
            let fast = squared_distance_slices(&x, &y);
            let slow: f64 = x
                .iter()
                .zip(&y)
                .map(|(&a, &b)| {
                    let d = (a - b) as f64;
                    d * d
                })
                .sum();
            assert!((fast - slow).abs() < 1e-9 * (1.0 + slow));
        }
    }

    #[test]
    fn mean_and_std_helpers() {
        assert_eq!(mean_of(&[]), 0.0);
        assert_eq!(mean_of(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev_of(&[1.0]), 0.0);
        let sd = std_dev_of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 1e-2);
    }
}
