//! Resume-plane integration tests: a run checkpointed at round `R` and
//! resumed after a (simulated) server restart must be **bitwise identical**
//! to the uninterrupted run — same global parameters, same history records at
//! the same absolute rounds, same communication totals. Covers all nine
//! shipped algorithms — FedCross, the five baselines (SCAFFOLD's control
//! variates, FedGen's teacher, CluSamp's update directions), secure
//! aggregation, the DP variants (round-derived noise + accountant spent
//! budget) and compressed uploads (round-derived dithering, `UploadStats`
//! counters, error-feedback residual tables) — under both full availability
//! and random client dropout, plus checkpoint validation, on-disk corruption
//! safety, and the noise plane's order-independence contract (permuting
//! upload arrival order must not change a round's result).

use fedcross::{build_algorithm, AlgorithmSpec, RobustRule};
use fedcross_compress::{CompressedFedAvg, Compressor, TopK, UniformQuantizer};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::checkpoint::StateError;
use fedcross_flsim::engine::{RoundContext, RoundReport};
use fedcross_flsim::{
    AdversaryModel, AlgorithmState, Attack, AvailabilityModel, Checkpoint, DeviceModel,
    FaultPlan, FederatedAlgorithm, LocalTrainConfig, LocalUpdate, ResumeError, RoundPolicy,
    Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::params::ParamBlock;
use fedcross_nn::Model;
use fedcross_privacy::algorithms::{DpFedAvg, DpFedCross, DpFedCrossConfig, SecureAggFedAvg};
use fedcross_privacy::mechanism::{DpConfig, NoisePlacement};
use fedcross_tensor::stats::std_dev_of;
use fedcross_tensor::SeededRng;
use std::path::PathBuf;

fn setup(seed: u64) -> (FederatedDataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(seed);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 6,
            samples_per_client: 12,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 4),
            fc_hidden: 8,
            kernel: 3,
        },
        &mut rng,
    );
    (data, template)
}

fn sim_config(rounds: usize, eval_every: usize) -> SimulationConfig {
    SimulationConfig {
        rounds,
        clients_per_round: 3,
        eval_every,
        eval_batch_size: 32,
        local: LocalTrainConfig::fast(),
        seed: 77,
    }
}

fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fedcross-resume-plane-{tag}.json"))
}

/// Runs the algorithm uninterrupted, then as checkpoint-at-R + restart +
/// resume (through an actual JSON file round trip), and asserts the two
/// trajectories are indistinguishable bit for bit. `build` receives
/// `(initial parameters, federation size)`; `check` receives the
/// uninterrupted and resumed algorithm for method-specific state assertions
/// (spent ε, upload counters, ...).
fn assert_restart_is_a_non_event_for<A: FederatedAlgorithm>(
    build: impl Fn(Vec<f32>, usize) -> A,
    availability: AvailabilityModel,
    tag: &str,
    check: impl Fn(&A, &A),
) {
    assert_restart_is_a_non_event_under(build, availability, None, tag, check);
}

/// Like [`assert_restart_is_a_non_event_for`] but with an optional adversary
/// model, so Byzantine-robust runs prove the same bitwise resume contract
/// while under attack (the adversary's membership and draw streams are
/// round-derived, not stateful, so a restart must not shift them).
fn assert_restart_is_a_non_event_under<A: FederatedAlgorithm>(
    build: impl Fn(Vec<f32>, usize) -> A,
    availability: AvailabilityModel,
    adversary: Option<AdversaryModel>,
    tag: &str,
    check: impl Fn(&A, &A),
) {
    assert_restart_is_a_non_event_in_plane(
        build,
        availability,
        adversary,
        RoundPolicy::Synchronous,
        None,
        None,
        tag,
        check,
    );
}

/// The fully general harness: availability × adversary × round policy ×
/// fault plan × device model. The fault plane (PR 7) derives every crash,
/// stall, duplicate and latency from round-keyed streams, so even a run that
/// is simultaneously under attack, dropping clients and injecting faults
/// must treat a restart as a non-event.
#[allow(clippy::too_many_arguments)]
fn assert_restart_is_a_non_event_in_plane<A: FederatedAlgorithm>(
    build: impl Fn(Vec<f32>, usize) -> A,
    availability: AvailabilityModel,
    adversary: Option<AdversaryModel>,
    policy: RoundPolicy,
    faults: Option<FaultPlan>,
    devices: Option<DeviceModel>,
    tag: &str,
    check: impl Fn(&A, &A),
) {
    let (data, template) = setup(5);
    let config = sim_config(6, 2);
    let checkpoint_round = 3;
    let mut sim = Simulation::new(config, &data, template.clone_model())
        .with_availability(availability)
        .with_round_policy(policy);
    if let Some(adversary) = adversary {
        sim = sim.with_adversaries(adversary);
    }
    if let Some(faults) = faults {
        sim = sim.with_faults(faults);
    }
    if let Some(devices) = devices {
        sim = sim.with_devices(devices);
    }
    let build = || build(template.params_flat(), data.num_clients());

    let mut whole = build();
    let uninterrupted = sim.run(&mut whole);

    // Phase 1 + checkpoint + (simulated) process death.
    let mut first = build();
    let partial = sim.run_segment(&mut first, 0, checkpoint_round);
    let path = temp_path(tag);
    sim.checkpoint(&first, &partial)
        .expect("snapshot supported")
        .save(&path)
        .expect("checkpoint saves");
    drop(first);

    // Restart: fresh algorithm, state restored from disk, run to the end.
    let restored = Checkpoint::load(&path).expect("checkpoint loads");
    let mut fresh = build();
    let resumed = sim
        .resume(&restored, &mut fresh)
        .expect("checkpoint matches the resuming simulation");
    let _ = std::fs::remove_file(&path);

    let label = whole.name();
    assert!(
        bitwise_eq(&whole.global_params(), &fresh.global_params()),
        "{label} ({tag}): resumed global params differ from the uninterrupted run"
    );
    assert_eq!(
        resumed.history, uninterrupted.history,
        "{label} ({tag}): history records diverged"
    );
    assert_eq!(
        resumed.comm, uninterrupted.comm,
        "{label} ({tag}): communication totals diverged"
    );
    assert_eq!(resumed.rounds_completed, config.rounds);
    // The eval_every cadence is anchored to absolute rounds: evaluations land
    // on the same rounds as the uninterrupted run, including the forced final
    // one, with no duplicate at the resume boundary.
    let rounds: Vec<usize> = resumed.history.records().iter().map(|r| r.round).collect();
    assert_eq!(rounds, vec![0, 2, 4, 5], "{label} ({tag}): eval cadence shifted");
    check(&whole, &fresh);
}

/// Adapter so registry-built `Box<dyn FederatedAlgorithm>` methods run
/// through the same generic harness as the concrete privacy/compress types.
struct Boxed(Box<dyn FederatedAlgorithm>);

impl FederatedAlgorithm for Boxed {
    fn name(&self) -> String {
        self.0.name()
    }
    fn run_round(&mut self, round: usize, ctx: &mut RoundContext<'_>) -> RoundReport {
        self.0.run_round(round, ctx)
    }
    fn global_params(&self) -> Vec<f32> {
        self.0.global_params()
    }
    fn global_params_into(&self, out: &mut Vec<f32>) {
        self.0.global_params_into(out);
    }
    fn snapshot_state(&self) -> Result<AlgorithmState, StateError> {
        self.0.snapshot_state()
    }
    fn restore_state(&mut self, state: &AlgorithmState) -> Result<(), StateError> {
        self.0.restore_state(state)
    }
}

fn assert_restart_is_a_non_event(
    spec: AlgorithmSpec,
    availability: AvailabilityModel,
    tag: &str,
) {
    assert_restart_is_a_non_event_for(
        |init, num_clients| Boxed(build_algorithm(spec, init, num_clients, 3)),
        availability,
        tag,
        |_, _| {},
    );
}

#[test]
fn fedcross_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::fedcross_default(),
        AvailabilityModel::AlwaysOn,
        "fedcross-on",
    );
}

#[test]
fn fedcross_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::fedcross_default(),
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "fedcross-drop",
    );
}

#[test]
fn scaffold_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::Scaffold,
        AvailabilityModel::AlwaysOn,
        "scaffold-on",
    );
}

#[test]
fn scaffold_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::Scaffold,
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "scaffold-drop",
    );
}

#[test]
fn fedgen_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::FedGen,
        AvailabilityModel::AlwaysOn,
        "fedgen-on",
    );
}

#[test]
fn fedgen_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event(
        AlgorithmSpec::FedGen,
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "fedgen-drop",
    );
}

#[test]
fn remaining_baselines_resume_bitwise_too() {
    for (spec, tag) in [
        (AlgorithmSpec::FedAvg, "fedavg"),
        (AlgorithmSpec::FedProx { mu: 0.01 }, "fedprox"),
        (AlgorithmSpec::CluSamp, "clusamp"),
    ] {
        assert_restart_is_a_non_event(spec, AvailabilityModel::AlwaysOn, tag);
    }
}

// ---------------------------------------------------------------------------
// The round-derived noise plane: DP, compression and secure aggregation
// resume bitwise — including the accountant's spent ε, the upload counters
// and the error-feedback residual memory.
// ---------------------------------------------------------------------------

fn central_dp(noise_multiplier: f32) -> DpConfig {
    DpConfig {
        clip_norm: 2.0,
        noise_multiplier,
        placement: NoisePlacement::Central,
    }
}

fn check_epsilon_survives(whole: &DpFedAvg, resumed: &DpFedAvg) {
    let (a, b) = (whole.epsilon(1e-5).unwrap(), resumed.epsilon(1e-5).unwrap());
    assert_eq!(a.to_bits(), b.to_bits(), "spent epsilon diverged: {a} vs {b}");
    assert_eq!(
        whole.accountant().unwrap().rounds(),
        resumed.accountant().unwrap().rounds()
    );
}

#[test]
fn dp_fedavg_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event_for(
        |init, _| DpFedAvg::new(init, central_dp(0.4), 101),
        AvailabilityModel::AlwaysOn,
        "dp-fedavg-on",
        check_epsilon_survives,
    );
}

#[test]
fn dp_fedavg_restart_is_a_non_event_under_random_dropout() {
    // Local placement under dropout: the per-client noise streams (keyed by
    // client id) must reproduce even when the set of responders varies.
    let local = DpConfig {
        clip_norm: 2.0,
        noise_multiplier: 0.2,
        placement: NoisePlacement::Local,
    };
    assert_restart_is_a_non_event_for(
        |init, _| DpFedAvg::new(init, local, 103),
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "dp-fedavg-drop",
        check_epsilon_survives,
    );
}

#[test]
fn dp_fedcross_restart_is_a_non_event_when_always_on() {
    assert_restart_is_a_non_event_for(
        |init, _| {
            DpFedCross::new(
                DpFedCrossConfig {
                    dp: central_dp(0.3),
                    ..Default::default()
                },
                init,
                3,
                105,
            )
        },
        AvailabilityModel::AlwaysOn,
        "dp-fedcross-on",
        |whole, resumed| {
            let (a, b) = (whole.epsilon(1e-5).unwrap(), resumed.epsilon(1e-5).unwrap());
            assert_eq!(a.to_bits(), b.to_bits(), "spent epsilon diverged");
        },
    );
}

#[test]
fn dp_fedcross_restart_is_a_non_event_under_random_dropout() {
    assert_restart_is_a_non_event_for(
        |init, _| {
            DpFedCross::new(
                DpFedCrossConfig {
                    dp: central_dp(0.3),
                    ..Default::default()
                },
                init,
                3,
                107,
            )
        },
        AvailabilityModel::RandomDropout { prob: 0.3 },
        "dp-fedcross-drop",
        |whole, resumed| {
            let (a, b) = (whole.epsilon(1e-5).unwrap(), resumed.epsilon(1e-5).unwrap());
            assert_eq!(a.to_bits(), b.to_bits(), "spent epsilon diverged");
        },
    );
}

#[test]
fn compressed_fedavg_restart_is_a_non_event_without_error_feedback() {
    // Stochastic (dithered) quantization exercises the round-derived
    // compression streams; the upload counters must survive resume exactly.
    for availability in [
        AvailabilityModel::AlwaysOn,
        AvailabilityModel::RandomDropout { prob: 0.3 },
    ] {
        assert_restart_is_a_non_event_for(
            |init, _| {
                CompressedFedAvg::new(init, Box::new(UniformQuantizer::new(4, true)), false, 109)
            },
            availability,
            "compressed-quant",
            |whole, resumed| {
                assert_eq!(whole.upload_stats(), resumed.upload_stats());
                assert!(whole.upload_stats().uploads > 0);
            },
        );
    }
}

#[test]
fn compressed_fedavg_restart_is_a_non_event_with_error_feedback() {
    // Top-k with error feedback: the per-client residual memory is part of
    // the cross-round state and must restore exactly.
    for availability in [
        AvailabilityModel::AlwaysOn,
        AvailabilityModel::RandomDropout { prob: 0.3 },
    ] {
        assert_restart_is_a_non_event_for(
            |init, _| CompressedFedAvg::new(init, Box::new(TopK::new(0.25)), true, 111),
            availability,
            "compressed-topk-ef",
            |whole, resumed| {
                assert_eq!(whole.upload_stats(), resumed.upload_stats());
            },
        );
    }
}

#[test]
fn secure_agg_restart_is_a_non_event() {
    for (availability, tag) in [
        (AvailabilityModel::AlwaysOn, "secureagg-on"),
        (AvailabilityModel::RandomDropout { prob: 0.3 }, "secureagg-drop"),
    ] {
        assert_restart_is_a_non_event_for(
            |init, _| SecureAggFedAvg::new(init, 25.0, 113),
            availability,
            tag,
            |_, _| {},
        );
    }
}

// ---------------------------------------------------------------------------
// Robustness plane: adversarial runs must resume bitwise-identically too.
// The adversary's compromised set and colluding targets are derived from
// round-keyed streams, so a mid-run restart cannot shift who attacks or how.
// ---------------------------------------------------------------------------

#[test]
fn robust_fedavg_restart_is_a_non_event_under_attack_and_dropout() {
    for (rule, attack, tag) in [
        (
            RobustRule::Median,
            Attack::ScaledUpdate { factor: 25.0 },
            "robust-fedavg-median-scaled",
        ),
        (
            RobustRule::TrimmedMean { trim: 0.25 },
            Attack::SignFlip { scale: 4.0 },
            "robust-fedavg-trimmed-signflip",
        ),
        (
            RobustRule::Krum { f: 1, m: 1 },
            Attack::Colluding { magnitude: 8.0 },
            "robust-fedavg-krum-colluding",
        ),
    ] {
        assert_restart_is_a_non_event_under(
            |init, num_clients| {
                Boxed(build_algorithm(
                    AlgorithmSpec::RobustFedAvg { rule },
                    init,
                    num_clients,
                    3,
                ))
            },
            AvailabilityModel::RandomDropout { prob: 0.3 },
            Some(AdversaryModel {
                attack,
                fraction: 0.34,
                seed: 41,
            }),
            tag,
            |_, _| {},
        );
    }
}

#[test]
fn robust_fedcross_restart_is_a_non_event_under_attack_and_dropout() {
    for (rule, attack, tag) in [
        (
            RobustRule::TrimmedMean { trim: 0.34 },
            Attack::ScaledUpdate { factor: 25.0 },
            "robust-fedcross-trimmed-scaled",
        ),
        (
            RobustRule::NormBound { max_norm: 0.5 },
            Attack::LabelFlip,
            "robust-fedcross-normbound-labelflip",
        ),
    ] {
        assert_restart_is_a_non_event_under(
            |init, num_clients| {
                Boxed(build_algorithm(
                    AlgorithmSpec::RobustFedCross { alpha: 0.9, rule },
                    init,
                    num_clients,
                    3,
                ))
            },
            AvailabilityModel::RandomDropout { prob: 0.3 },
            Some(AdversaryModel {
                attack,
                fraction: 0.34,
                seed: 41,
            }),
            tag,
            |_, _| {},
        );
    }
}

// ---------------------------------------------------------------------------
// Fault plane: adversary × fault × dropout × straggler compositions must
// resume bitwise too. Fates and latencies are drawn from round-keyed streams
// (FaultDraw / DeviceSpeed / LatencyDraw), so a restart cannot shift who
// crashes, stalls, duplicates or misses a deadline.
// ---------------------------------------------------------------------------

fn noisy_transport() -> FaultPlan {
    FaultPlan {
        crash_prob: 0.15,
        stall_prob: 0.2,
        max_stall: 2,
        duplicate_prob: 0.2,
        server_fail_prob: 0.1,
        max_retries: 2,
        seed: 19,
    }
}

#[test]
fn fedcross_restart_is_a_non_event_under_faults_attack_and_dropout() {
    assert_restart_is_a_non_event_in_plane(
        |init, num_clients| {
            Boxed(build_algorithm(
                AlgorithmSpec::fedcross_default(),
                init,
                num_clients,
                3,
            ))
        },
        AvailabilityModel::RandomDropout { prob: 0.3 },
        Some(AdversaryModel {
            attack: Attack::ScaledUpdate { factor: 25.0 },
            fraction: 0.34,
            seed: 41,
        }),
        RoundPolicy::Synchronous,
        Some(noisy_transport()),
        None,
        "fedcross-faults-attack-drop",
        |_, _| {},
    );
}

#[test]
fn fedcross_deadline_restart_is_a_non_event_under_stragglers_and_faults() {
    assert_restart_is_a_non_event_in_plane(
        |init, num_clients| {
            Boxed(build_algorithm(
                AlgorithmSpec::fedcross_default(),
                init,
                num_clients,
                3,
            ))
        },
        AvailabilityModel::RandomDropout { prob: 0.2 },
        None,
        RoundPolicy::Deadline {
            budget: 2.0,
            min_quorum: 1,
        },
        Some(noisy_transport()),
        Some(DeviceModel {
            straggler_fraction: 0.4,
            slowdown: 8.0,
            jitter: 0.2,
            seed: 13,
        }),
        "fedcross-deadline-stragglers",
        |_, _| {},
    );
}

#[test]
fn robust_fedavg_deadline_restart_is_a_non_event_under_attack() {
    assert_restart_is_a_non_event_in_plane(
        |init, num_clients| {
            Boxed(build_algorithm(
                AlgorithmSpec::RobustFedAvg {
                    rule: RobustRule::TrimmedMean { trim: 0.25 },
                },
                init,
                num_clients,
                3,
            ))
        },
        AvailabilityModel::AlwaysOn,
        Some(AdversaryModel {
            attack: Attack::SignFlip { scale: 4.0 },
            fraction: 0.34,
            seed: 41,
        }),
        RoundPolicy::Deadline {
            budget: 2.0,
            min_quorum: 2,
        },
        Some(noisy_transport()),
        Some(DeviceModel::two_tier(0.4, 4.0, 23)),
        "robust-fedavg-deadline-attack",
        |_, _| {},
    );
}

#[test]
fn buffered_algorithms_restart_is_a_non_event_mid_buffer() {
    use fedcross::buffered::{BufferedFedAvg, BufferedFedCross, BufferedFedCrossConfig};
    let policy = RoundPolicy::Buffered {
        goal_k: 2,
        max_staleness: 3,
    };
    let devices = DeviceModel::two_tier(0.5, 3.0, 17);
    let faults = FaultPlan {
        stall_prob: 0.3,
        max_stall: 2,
        duplicate_prob: 0.2,
        ..Default::default()
    };
    assert_restart_is_a_non_event_in_plane(
        |init, num_clients| BufferedFedAvg::new(0.5, init, num_clients),
        AvailabilityModel::RandomDropout { prob: 0.2 },
        None,
        policy,
        Some(faults),
        Some(devices),
        "buffered-fedavg-mid-buffer",
        |whole, resumed| {
            // The pending stores themselves end identical, entry for entry.
            assert_eq!(whole.inflight(), resumed.inflight());
            assert_eq!(whole.buffer(), resumed.buffer());
        },
    );
    assert_restart_is_a_non_event_in_plane(
        |init, num_clients| {
            BufferedFedCross::new(BufferedFedCrossConfig::default(), init, 3, num_clients)
        },
        AvailabilityModel::AlwaysOn,
        None,
        policy,
        Some(faults),
        Some(devices),
        "buffered-fedcross-mid-buffer",
        |whole, resumed| {
            assert_eq!(whole.inflight(), resumed.inflight());
            assert_eq!(whole.buffer(), resumed.buffer());
        },
    );
}

#[test]
fn a_checkpoint_resumed_under_a_different_round_policy_or_fault_plan_is_rejected() {
    // The config fingerprint covers RoundPolicy, FaultPlan and DeviceModel:
    // any of them changing between checkpoint and resume changes the
    // trajectory, so the resume must refuse instead of silently splicing.
    let (data, template) = setup(7);
    let config = sim_config(6, 2);
    let sim = Simulation::new(config, &data, template.clone_model());
    let build =
        || build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);

    let mut algo = build();
    let partial = sim.run_segment(algo.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(algo.as_ref(), &partial).expect("snapshot supported");

    let variants: Vec<(&str, Simulation<'_>)> = vec![
        (
            "deadline policy",
            Simulation::new(config, &data, template.clone_model()).with_round_policy(
                RoundPolicy::Deadline {
                    budget: 2.0,
                    min_quorum: 1,
                },
            ),
        ),
        (
            "buffered policy",
            Simulation::new(config, &data, template.clone_model()).with_round_policy(
                RoundPolicy::Buffered {
                    goal_k: 2,
                    max_staleness: 3,
                },
            ),
        ),
        (
            "fault plan",
            Simulation::new(config, &data, template.clone_model())
                .with_faults(noisy_transport()),
        ),
        (
            "device model",
            Simulation::new(config, &data, template.clone_model())
                .with_devices(DeviceModel::two_tier(0.4, 8.0, 13)),
        ),
    ];
    for (what, other_sim) in variants {
        let mut fresh = build();
        assert!(
            matches!(
                other_sim.resume(&checkpoint, fresh.as_mut()),
                Err(ResumeError::ConfigMismatch { .. })
            ),
            "resuming under a different {what} must be rejected"
        );
    }

    // Same fault plan but a different fault seed is a different trajectory.
    let faulty_sim =
        Simulation::new(config, &data, template.clone_model()).with_faults(noisy_transport());
    let mut algo = build();
    let partial = faulty_sim.run_segment(algo.as_mut(), 0, 2);
    let checkpoint = faulty_sim
        .checkpoint(algo.as_ref(), &partial)
        .expect("snapshot supported");
    let mut reseeded = noisy_transport();
    reseeded.seed = 20;
    let other_seed_sim =
        Simulation::new(config, &data, template.clone_model()).with_faults(reseeded);
    let mut fresh = build();
    assert!(matches!(
        other_seed_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ConfigMismatch { .. })
    ));
    // And the matching plan still resumes fine.
    let mut fresh = build();
    assert!(faulty_sim.resume(&checkpoint, fresh.as_mut()).is_ok());
}

// ---------------------------------------------------------------------------
// Order independence: permuting upload arrival order must produce a bitwise
// identical round (noise keyed by client/slot, canonical aggregation order).
// ---------------------------------------------------------------------------

fn fake_update(client: usize, dim: usize) -> LocalUpdate {
    let params: Vec<f32> = (0..dim)
        .map(|i| ((client * 31 + i * 7) % 13) as f32 * 0.05 - 0.3)
        .collect();
    LocalUpdate {
        client,
        params: ParamBlock::from(params),
        num_samples: 10 + client,
        train_loss: 0.5 + client as f32 * 0.125,
        steps: 4,
    }
}

fn assert_reports_match(a: &RoundReport, b: &RoundReport) {
    assert_eq!(a.participants, b.participants);
    assert_eq!(a.total_samples, b.total_samples);
    assert_eq!(a.mean_train_loss.to_bits(), b.mean_train_loss.to_bits());
}

#[test]
fn dp_fedavg_round_is_independent_of_upload_order() {
    let dim = 48;
    let init = vec![0.1f32; dim];
    for placement in [NoisePlacement::Central, NoisePlacement::Local] {
        let dp = DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.8,
            placement,
        };
        let updates: Vec<LocalUpdate> =
            [4usize, 0, 7, 2].iter().map(|&c| fake_update(c, dim)).collect();
        let mut permuted = updates.clone();
        permuted.reverse();
        permuted.swap(0, 2);

        let mut a = DpFedAvg::new(init.clone(), dp, 9);
        let mut b = DpFedAvg::new(init.clone(), dp, 9);
        let report_a = a.apply_updates(5, 10, &updates);
        let report_b = b.apply_updates(5, 10, &permuted);
        assert!(
            bitwise_eq(&a.global_params(), &b.global_params()),
            "{placement}: permuted upload order changed the DP-FedAvg round"
        );
        assert_reports_match(&report_a, &report_b);
        // And the noise genuinely fired (the round is not a no-op).
        assert!(!bitwise_eq(&a.global_params(), &init));
    }
}

#[test]
fn dp_fedcross_round_is_independent_of_upload_order() {
    let dim = 48;
    let init = vec![0.1f32; dim];
    let config = DpFedCrossConfig {
        dp: DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 0.8,
            placement: NoisePlacement::Central,
        },
        ..Default::default()
    };
    let selected = vec![5usize, 2, 7];
    // Full round and a dropout round (slot 1's client never responded).
    for returned in [vec![5usize, 2, 7], vec![7usize, 5]] {
        let updates: Vec<LocalUpdate> =
            returned.iter().map(|&c| fake_update(c, dim)).collect();
        let mut permuted = updates.clone();
        permuted.reverse();

        let mut a = DpFedCross::new(config, init.clone(), 3, 9);
        let mut b = DpFedCross::new(config, init.clone(), 3, 9);
        let report_a = a.apply_updates(5, 10, &selected, &updates);
        let report_b = b.apply_updates(5, 10, &selected, &permuted);
        for (slot, (ma, mb)) in a.middleware().iter().zip(b.middleware()).enumerate() {
            assert!(
                bitwise_eq(ma, mb),
                "middleware slot {slot} diverged under permuted upload order"
            );
        }
        assert_reports_match(&report_a, &report_b);
    }
}

#[test]
fn compressed_fedavg_round_is_independent_of_upload_order() {
    let dim = 48;
    let init = vec![0.1f32; dim];
    type MakeCompressor = fn() -> Box<dyn Compressor>;
    let schemes: Vec<(MakeCompressor, bool)> = vec![
        (|| Box::new(UniformQuantizer::new(4, true)), false), // dithered rng path
        (|| Box::new(TopK::new(0.25)), true),                 // residual-memory path
    ];
    for (make_compressor, error_feedback) in schemes {
        let updates: Vec<LocalUpdate> =
            [4usize, 0, 7, 2].iter().map(|&c| fake_update(c, dim)).collect();
        let mut permuted = updates.clone();
        permuted.rotate_left(2);

        let mut a = CompressedFedAvg::new(init.clone(), make_compressor(), error_feedback, 9);
        let mut b = CompressedFedAvg::new(init.clone(), make_compressor(), error_feedback, 9);
        let report_a = a.apply_updates(5, &updates);
        let report_b = b.apply_updates(5, &permuted);
        assert!(
            bitwise_eq(&a.global_params(), &b.global_params()),
            "permuted upload order changed the compressed round (EF={error_feedback})"
        );
        assert_eq!(a.upload_stats(), b.upload_stats());
        assert_reports_match(&report_a, &report_b);
        // The residual memories end identical too: a second, deterministic
        // round from both instances produces the same model.
        let next: Vec<LocalUpdate> =
            [2usize, 7].iter().map(|&c| fake_update(c, dim)).collect();
        let _ = a.apply_updates(6, &next);
        let _ = b.apply_updates(6, &next);
        assert!(bitwise_eq(&a.global_params(), &b.global_params()));
    }
}

// ---------------------------------------------------------------------------
// Calibration fixes: central noise scales with *returned* uploads, and the
// accountant follows the actual participation rate under dropout.
// ---------------------------------------------------------------------------

#[test]
fn dp_fedcross_central_noise_calibrates_to_returned_uploads() {
    // One returned upload with a zero delta: the updated middleware model is
    // pure central noise. Its std must be z·C / 1 (returned count), not
    // z·C / K — the old behaviour divided by the configured K even when
    // clients dropped out, under-noising the release by K×.
    let dim = 4096;
    let config = DpFedCrossConfig {
        dp: DpConfig {
            clip_norm: 1.0,
            noise_multiplier: 1.0,
            placement: NoisePlacement::Central,
        },
        ..Default::default()
    };
    let mut algo = DpFedCross::new(config, vec![0.0f32; dim], 4, 21);
    let selected = vec![0usize, 1, 2, 3];
    let update = LocalUpdate {
        client: 2,
        params: ParamBlock::from(vec![0.0f32; dim]),
        num_samples: 10,
        train_loss: 1.0,
        steps: 1,
    };
    let report = algo.apply_updates(0, 8, &selected, &[update]);
    assert_eq!(report.participants, 1);
    let noise_std = std_dev_of(&algo.middleware()[2]);
    assert!(
        (noise_std - 1.0).abs() < 0.05,
        "single-upload central noise std should be z·C = 1.0, got {noise_std} \
         (0.25 would mean it was calibrated to the configured K again)"
    );
    // The untouched slots skipped the round entirely.
    for slot in [0usize, 1, 3] {
        assert!(algo.middleware()[slot].iter().all(|&v| v == 0.0));
    }
}

#[test]
fn accountant_follows_actual_participation_under_dropout() {
    // Same schedule with and without dropout: dropout rounds sample fewer
    // clients, so the spent epsilon must be strictly smaller than both the
    // full-participation run and the frozen-rate projection that ignores
    // dropout (the old `ensure_accountant` froze q at the first round).
    let (data, template) = setup(6);
    let config = sim_config(6, 2);
    let run = |availability: AvailabilityModel| {
        let mut algo = DpFedAvg::new(template.params_flat(), central_dp(0.8), 115);
        let result = Simulation::new(config, &data, template.clone_model())
            .with_availability(availability)
            .run(&mut algo);
        let accountant = algo.accountant().unwrap().clone();
        (accountant, result.comm.client_contacts)
    };
    let (full, full_contacts) = run(AvailabilityModel::AlwaysOn);
    let (dropped, dropped_contacts) = run(AvailabilityModel::RandomDropout { prob: 0.4 });
    assert_eq!(full_contacts, 18, "6 rounds x 3 clients");
    assert!(
        dropped_contacts < full_contacts,
        "this seed must actually drop clients for the test to be meaningful"
    );
    let eps_full = full.epsilon(1e-5);
    let eps_dropped = dropped.epsilon(1e-5);
    let eps_frozen_projection = dropped.epsilon_after(dropped.rounds(), 1e-5);
    assert!(
        eps_dropped < eps_full,
        "dropout must spend less budget ({eps_dropped} vs {eps_full})"
    );
    assert!(
        eps_dropped < eps_frozen_projection,
        "spent budget must track actual rates, not the frozen nominal q"
    );
}

// ---------------------------------------------------------------------------
// Checkpoint validation and corruption safety.
// ---------------------------------------------------------------------------

#[test]
fn resume_aligns_eval_cadence_even_from_an_off_cadence_checkpoint() {
    // Checkpoint at round 2, between the eval rounds 0 and 3 of an
    // eval_every = 3 schedule: the resumed run must evaluate at exactly the
    // absolute rounds the uninterrupted run does.
    let (data, template) = setup(6);
    let config = sim_config(7, 3);
    let sim = Simulation::new(config, &data, template.clone_model());
    let build =
        || build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);

    let mut whole = build();
    let uninterrupted = sim.run(whole.as_mut());
    let expected: Vec<usize> =
        uninterrupted.history.records().iter().map(|r| r.round).collect();
    assert_eq!(expected, vec![0, 3, 6]);

    let mut first = build();
    let partial = sim.run_segment(first.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(first.as_ref(), &partial).expect("snapshot supported");
    let mut fresh = build();
    let resumed = sim.resume(&checkpoint, fresh.as_mut()).expect("resume succeeds");
    let rounds: Vec<usize> = resumed.history.records().iter().map(|r| r.round).collect();
    assert_eq!(rounds, expected, "cadence must be anchored to absolute rounds");
    assert_eq!(resumed.history, uninterrupted.history);
}

#[test]
fn a_foreign_checkpoint_is_rejected_loudly() {
    let (data, template) = setup(7);
    let config = sim_config(6, 2);
    let sim = Simulation::new(config, &data, template.clone_model());

    // A FedAvg checkpoint must not silently feed a FedCross run.
    let mut fedavg =
        build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);
    let partial = sim.run_segment(fedavg.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(fedavg.as_ref(), &partial).expect("snapshot supported");

    let mut fedcross = build_algorithm(
        AlgorithmSpec::fedcross_default(),
        template.params_flat(),
        data.num_clients(),
        3,
    );
    match sim.resume(&checkpoint, fedcross.as_mut()) {
        Err(ResumeError::AlgorithmMismatch { checkpoint, resuming }) => {
            assert_eq!(checkpoint, "fedavg");
            assert!(resuming.contains("fedcross"));
        }
        other => panic!("expected AlgorithmMismatch, got {other:?}"),
    }

    // A checkpoint from a different template size must not load either.
    let mut rng = SeededRng::new(8);
    let small = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (2, 2),
            fc_hidden: 4,
            kernel: 3,
        },
        &mut rng,
    );
    let small_sim = Simulation::new(config, &data, small.clone_model());
    let mut fresh =
        build_algorithm(AlgorithmSpec::FedAvg, small.params_flat(), data.num_clients(), 3);
    assert!(matches!(
        small_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ParamCountMismatch { .. })
    ));

    // A different availability model changes the trajectory: rejected.
    let dropout_sim = Simulation::new(config, &data, template.clone_model())
        .with_availability(AvailabilityModel::RandomDropout { prob: 0.3 });
    let mut fresh =
        build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);
    assert!(matches!(
        dropout_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ConfigMismatch { .. })
    ));

    // A different federation (here: more clients) changes the trajectory
    // too — the fingerprint covers the dataset shape, so this is rejected
    // instead of silently resuming with different client selections.
    let mut rng = SeededRng::new(11);
    let other_data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 8,
            samples_per_client: 12,
            test_samples: 40,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let other_data_sim = Simulation::new(config, &other_data, template.clone_model());
    let mut fresh = build_algorithm(
        AlgorithmSpec::FedAvg,
        template.params_flat(),
        other_data.num_clients(),
        3,
    );
    assert!(matches!(
        other_data_sim.resume(&checkpoint, fresh.as_mut()),
        Err(ResumeError::ConfigMismatch { .. })
    ));
}

#[test]
fn a_middleware_count_mismatch_is_rejected_loudly() {
    use fedcross::{FedCross, FedCrossConfig};
    // A K = 4 FedCross state must not restore into a K = 3 instance, even
    // though the algorithm family matches.
    let init = vec![0.5f32; 16];
    let four = FedCross::new(FedCrossConfig::default(), init.clone(), 4);
    let mut three = FedCross::new(FedCrossConfig::default(), init, 3);
    let err = three
        .restore_state(&four.snapshot_state().expect("snapshot supported"))
        .expect_err("K mismatch must fail");
    assert!(
        err.to_string().contains("middleware count mismatch"),
        "unexpected error: {err}"
    );
}

#[test]
fn a_checkpoint_resumed_under_a_different_noise_seed_is_rejected() {
    // Round-derived noise makes the trajectory a function of the seed, so
    // the DP and compressed algorithm names encode it — a resume with a
    // different noise/dither seed must fail the name check instead of
    // silently splicing two noise sequences.
    let (data, template) = setup(11);
    let config = sim_config(4, 2);
    let sim = Simulation::new(config, &data, template.clone_model());

    let mut dp = DpFedAvg::new(template.params_flat(), central_dp(0.4), 101);
    let partial = sim.run_segment(&mut dp, 0, 2);
    let checkpoint = sim.checkpoint(&dp, &partial).expect("snapshot supported");
    let mut other_seed = DpFedAvg::new(template.params_flat(), central_dp(0.4), 102);
    assert!(matches!(
        sim.resume(&checkpoint, &mut other_seed),
        Err(ResumeError::AlgorithmMismatch { .. })
    ));

    let make = |seed| {
        CompressedFedAvg::new(
            template.params_flat(),
            Box::new(UniformQuantizer::new(4, true)),
            false,
            seed,
        )
    };
    let mut compressed = make(109);
    let partial = sim.run_segment(&mut compressed, 0, 2);
    let checkpoint = sim.checkpoint(&compressed, &partial).expect("snapshot supported");
    let mut other_seed = make(110);
    assert!(matches!(
        sim.resume(&checkpoint, &mut other_seed),
        Err(ResumeError::AlgorithmMismatch { .. })
    ));
}

#[test]
fn a_compressed_checkpoint_without_its_residual_table_is_rejected() {
    // An EF-enabled CompressedFedAvg must refuse a state whose residual
    // table is missing (a hand-edited or cross-built checkpoint) instead of
    // silently resuming with an empty memory.
    let init = vec![0.0f32; 8];
    let mut with_ef = CompressedFedAvg::new(init.clone(), Box::new(TopK::new(0.5)), true, 1);
    let without_ef = CompressedFedAvg::new(init, Box::new(TopK::new(0.5)), false, 1);
    let state = without_ef.snapshot_state().expect("snapshot supported");
    let err = with_ef
        .restore_state(&state)
        .expect_err("missing residual table must fail");
    assert!(err.to_string().contains("ef_residuals"), "unexpected error: {err}");
}

#[test]
fn checkpoint_corruption_cannot_happen_mid_save_and_is_detected_on_load() {
    let (data, template) = setup(9);
    let config = sim_config(4, 2);
    let sim = Simulation::new(config, &data, template.clone_model());
    let mut algo =
        build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);
    let partial = sim.run_segment(algo.as_mut(), 0, 2);
    let checkpoint = sim.checkpoint(algo.as_ref(), &partial).expect("snapshot supported");

    let dir = std::env::temp_dir().join("fedcross-resume-plane-corruption");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    checkpoint.save(&path).expect("initial save succeeds");

    // A "crash" during a later save (simulated by blocking the temp path)
    // must leave the previous checkpoint fully intact and loadable.
    let tmp = dir.join("ckpt.json.tmp");
    std::fs::create_dir_all(&tmp).unwrap();
    assert!(checkpoint.save(&path).is_err(), "blocked temp write must error");
    let survivor = Checkpoint::load(&path).expect("previous checkpoint survives");
    assert_eq!(survivor, checkpoint);
    std::fs::remove_dir_all(&tmp).unwrap();

    // A truncated file — what a non-atomic in-place write would leave after
    // a crash — is detected on load instead of half-restoring.
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, &json[..json.len() / 2]).unwrap();
    let err = Checkpoint::load(&path).expect_err("truncated checkpoint must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn resumed_run_can_extend_the_total_round_count() {
    // The fingerprint deliberately excludes `rounds`: a checkpoint from a
    // 4-round config resumes under a 6-round config (same everything else),
    // and the overlapping prefix stays bitwise identical.
    let (data, template) = setup(10);
    let short = sim_config(4, 2);
    let long = sim_config(6, 2);
    let build =
        || build_algorithm(AlgorithmSpec::FedAvg, template.params_flat(), data.num_clients(), 3);

    let short_sim = Simulation::new(short, &data, template.clone_model());
    let mut algo = build();
    let partial = short_sim.run_segment(algo.as_mut(), 0, 2);
    let checkpoint = short_sim
        .checkpoint(algo.as_ref(), &partial)
        .expect("snapshot supported");

    let long_sim = Simulation::new(long, &data, template.clone_model());
    let mut extended = build();
    let resumed = long_sim
        .resume(&checkpoint, extended.as_mut())
        .expect("longer run accepts the checkpoint");
    assert_eq!(resumed.rounds_completed, 6);

    let mut reference = build();
    let uninterrupted = long_sim.run(reference.as_mut());
    assert!(bitwise_eq(&reference.global_params(), &extended.global_params()));
    assert_eq!(resumed.history, uninterrupted.history);
}
