//! Fault injection and round-closing policies.
//!
//! Real FL transport fails in structured ways that the availability model's
//! "client never responds" cannot express. A [`FaultPlan`] injects the four
//! classic failure modes of an open federated system:
//!
//! * **mid-round crash** — the client trains but never uploads (compute and
//!   dispatch bandwidth are spent, the update is lost),
//! * **stalled upload** — the upload leaves the client but arrives `s ≥ 1`
//!   rounds later; synchronous and deadline rounds have closed by then and
//!   lose it, buffered rounds integrate it with staleness `s`,
//! * **duplicated upload** — the transport delivers the same upload twice;
//!   the server must dedupe by client id,
//! * **transient server-apply failure** — applying the round's uploads fails
//!   and is retried with bounded backoff; a round that exhausts its retries
//!   loses its upload set (algorithms already tolerate empty rounds via the
//!   carry-over path).
//!
//! Every draw comes from the [`StreamDomain::FaultDraw`] stream keyed by
//! `(seed, round, client)` — a pure function, so faulty runs resume bitwise
//! and fault fates never depend on upload arrival order. The plan composes
//! with [`crate::availability::AvailabilityModel`] (a dropped client never
//! trains, so it cannot crash mid-round) and
//! [`crate::adversary::AdversaryModel`] (a compromised client's corrupted
//! upload crashes, stalls and duplicates like any other).
//!
//! [`RoundPolicy`] decides how a round closes over whatever the fault plane
//! and device latencies let through; see its variants for the semantics.

use crate::streams::{RoundStreams, StreamDomain};
use serde::{Deserialize, Serialize};

/// How the server closes a communication round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RoundPolicy {
    /// The classic closed loop: the server blocks until every surviving
    /// upload of the round has arrived (device latency is irrelevant). This
    /// is the engine's historical behaviour and the bitwise-pinned default.
    #[default]
    Synchronous,
    /// The round closes after `budget` latency units (see
    /// [`crate::device::DeviceModel`] for units): uploads that arrive later
    /// are discarded and their slots carry over. If fewer than `min_quorum`
    /// uploads made the deadline, the deadline is extended to the fastest
    /// `min_quorum` non-crashed, non-stalled uploads — the server would
    /// rather run late than aggregate nothing.
    Deadline {
        /// Round budget in latency units (a fast jitter-free device needs 1.0).
        budget: f32,
        /// Minimum uploads the round must close with (when that many exist).
        min_quorum: usize,
    },
    /// FedBuff-style semi-asynchronous rounds: uploads arrive `delay` rounds
    /// after training (device latency plus stalls), the server buffers them
    /// and aggregates once `goal_k` updates are buffered, weighting each by
    /// its staleness. Entries staler than `max_staleness` are discarded.
    /// Meaningful with the `Buffered*` algorithms, which read these
    /// parameters from the context; other algorithms see stalled uploads
    /// delivered on time.
    Buffered {
        /// Buffer size that triggers an aggregation.
        goal_k: usize,
        /// Oldest staleness (in rounds) still worth aggregating.
        max_staleness: usize,
    },
}

impl RoundPolicy {
    /// Panics on a malformed policy: non-finite or non-positive deadline
    /// budget, zero buffered goal.
    pub fn validate(&self) {
        match *self {
            RoundPolicy::Synchronous => {}
            RoundPolicy::Deadline { budget, .. } => {
                assert!(
                    budget.is_finite() && budget > 0.0,
                    "deadline budget must be a positive finite latency, got {budget}"
                );
            }
            RoundPolicy::Buffered { goal_k, .. } => {
                assert!(goal_k >= 1, "buffered goal_k must be at least 1");
            }
        }
    }

    /// Short human-readable description for tables and reports.
    pub fn label(&self) -> String {
        match *self {
            // alloc: cold — reporting label, not on the round path
            RoundPolicy::Synchronous => "sync".to_string(),
            RoundPolicy::Deadline { budget, min_quorum } => {
                // alloc: cold — reporting label, not on the round path
                format!("deadline({budget}, q={min_quorum})")
            }
            RoundPolicy::Buffered {
                goal_k,
                max_staleness,
            // alloc: cold — reporting label, not on the round path
            } => format!("buffered(k={goal_k}, s<={max_staleness})"),
        }
    }
}

/// The transport fate of one upload, drawn per `(round, client)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UploadFate {
    /// The client crashed after training: the upload never leaves the device.
    pub crashed: bool,
    /// The upload stalls and arrives this many rounds late (`Some(s)`, s ≥ 1).
    pub stall: Option<usize>,
    /// The transport delivers the upload twice.
    pub duplicated: bool,
}

/// A deterministic fault-injection plan (see the module docs for the fault
/// taxonomy). All fields are probabilities per upload per round except the
/// stall and retry bounds; all draws derive from `seed` through the
/// [`StreamDomain::FaultDraw`] stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a trained client crashes before uploading.
    pub crash_prob: f32,
    /// Probability that an upload stalls in transit.
    pub stall_prob: f32,
    /// Stalled uploads arrive `1..=max_stall` rounds late (uniform).
    pub max_stall: usize,
    /// Probability that an upload is delivered twice.
    pub duplicate_prob: f32,
    /// Probability that one server-apply attempt fails transiently.
    pub server_fail_prob: f32,
    /// Retries (with backoff) after a failed apply before the round's upload
    /// set is abandoned: up to `1 + max_retries` attempts total.
    pub max_retries: usize,
    /// Base seed of the fault streams, independent of training randomness.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            crash_prob: 0.0,
            stall_prob: 0.0,
            max_stall: 1,
            duplicate_prob: 0.0,
            server_fail_prob: 0.0,
            max_retries: 2,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// A plan that only crashes clients mid-round with probability `prob`.
    pub fn crashes(prob: f32, seed: u64) -> Self {
        Self {
            crash_prob: prob,
            seed,
            ..Self::default()
        }
    }

    /// Panics on a malformed plan: any probability outside `[0, 1)` or
    /// non-finite, or a stall bound of zero alongside a positive stall
    /// probability.
    pub fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("stall_prob", self.stall_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("server_fail_prob", self.server_fail_prob),
        ] {
            assert!(
                p.is_finite() && (0.0..1.0).contains(&p),
                "{name} must lie in [0, 1), got {p}"
            );
        }
        assert!(
            self.stall_prob == 0.0 || self.max_stall >= 1,
            "max_stall must be at least 1 when stalls are enabled"
        );
    }

    /// Short human-readable description for tables and reports.
    pub fn label(&self) -> String {
        // alloc: cold — reporting label, not on the round path
        format!(
            "faults(crash={:.0}%, stall={:.0}%, dup={:.0}%, apply-fail={:.0}%)",
            self.crash_prob * 100.0,
            self.stall_prob * 100.0,
            self.duplicate_prob * 100.0,
            self.server_fail_prob * 100.0
        )
    }

    /// Whether any client-side fault can ever fire.
    pub fn has_client_faults(&self) -> bool {
        self.crash_prob > 0.0 || self.stall_prob > 0.0 || self.duplicate_prob > 0.0
    }

    /// The transport fate of `client`'s upload in `round` — a pure function
    /// of `(seed, round, client)`, identical after restarts and independent
    /// of every other client's fate. The three draws are consumed in a fixed
    /// order (crash, stall, duplicate) so the fate is stable under plan
    /// extensions that append draws.
    pub fn fate(&self, round: usize, client: usize) -> UploadFate {
        let mut rng = RoundStreams::new(StreamDomain::FaultDraw, self.seed)
            .round(round)
            .stream(client);
        let crashed = rng.uniform() < self.crash_prob;
        let stalled = rng.uniform() < self.stall_prob;
        let stall_rounds = 1 + rng.below(self.max_stall.max(1));
        let duplicated = rng.uniform() < self.duplicate_prob;
        UploadFate {
            crashed,
            // A crashed upload never reaches the transport, so crash wins.
            stall: (!crashed && stalled).then_some(stall_rounds),
            duplicated: !crashed && duplicated,
        }
    }

    /// Simulates the round's server-apply retry loop: `Some(attempts)` when
    /// an attempt succeeds within the retry budget (`attempts ≥ 1`), `None`
    /// when all `1 + max_retries` attempts fail and the round's upload set is
    /// abandoned. Drawn from the round's server stream — one fate per round,
    /// shared by however many uploads it carries.
    pub fn server_apply_attempts(&self, round: usize) -> Option<usize> {
        if self.server_fail_prob == 0.0 {
            return Some(1);
        }
        let mut rng = RoundStreams::new(StreamDomain::FaultDraw, self.seed)
            .round(round)
            .server();
        (1..=(1 + self.max_retries)).find(|_| rng.uniform() >= self.server_fail_prob)
    }
}

/// Per-run fault accounting, accumulated by the engine while a fault plan,
/// device model or non-synchronous round policy is active. Diagnostic only:
/// the tally is **not** checkpointed, so a resumed run counts only the
/// rounds it actually executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Uploads lost to mid-round crashes.
    pub crashed: usize,
    /// Uploads that stalled in transit (lost under sync/deadline rounds,
    /// delivered late under buffered rounds).
    pub stalled: usize,
    /// Uploads the transport duplicated (the engine/server deduped them).
    pub duplicated: usize,
    /// Uploads that missed a deadline round's budget and were discarded.
    pub missed_deadline: usize,
    /// Uploads rescued past the deadline by the `min_quorum` extension.
    pub quorum_rescued: usize,
    /// Extra server-apply attempts spent on transient failures (retries, not
    /// first attempts).
    pub apply_retries: usize,
    /// Rounds whose upload set was abandoned after exhausting apply retries.
    pub rounds_lost: usize,
}

impl FaultTally {
    /// Adds another tally's counts into this one (used by the simulation to
    /// fold per-round tallies into the run total).
    pub fn absorb(&mut self, other: &FaultTally) {
        self.crashed += other.crashed;
        self.stalled += other.stalled;
        self.duplicated += other.duplicated;
        self.missed_deadline += other.missed_deadline;
        self.quorum_rescued += other.quorum_rescued;
        self.apply_retries += other.apply_retries;
        self.rounds_lost += other.rounds_lost;
    }

    /// Total uploads that never reached an aggregation under a synchronous
    /// or deadline policy.
    pub fn lost_uploads(&self) -> usize {
        self.crashed + self.stalled + self.missed_deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fates_are_pure_functions_of_their_coordinates() {
        let plan = FaultPlan {
            crash_prob: 0.2,
            stall_prob: 0.3,
            max_stall: 3,
            duplicate_prob: 0.15,
            server_fail_prob: 0.2,
            max_retries: 2,
            seed: 99,
        };
        plan.validate();
        for round in [0usize, 5, 12] {
            for client in 0..8 {
                assert_eq!(plan.fate(round, client), plan.fate(round, client));
            }
            assert_eq!(
                plan.server_apply_attempts(round),
                plan.server_apply_attempts(round)
            );
        }
        // The same client fares differently across rounds (statistically:
        // over 64 rounds at these probabilities at least one fate differs).
        let fates: Vec<UploadFate> = (0..64).map(|r| plan.fate(r, 0)).collect();
        assert!(fates.iter().any(|f| f != &fates[0]));
    }

    #[test]
    fn crash_suppresses_transport_faults() {
        let plan = FaultPlan {
            crash_prob: 0.999,
            stall_prob: 0.999,
            duplicate_prob: 0.999,
            max_stall: 2,
            ..FaultPlan::default()
        };
        for round in 0..16 {
            let fate = plan.fate(round, 1);
            if fate.crashed {
                assert_eq!(fate.stall, None);
                assert!(!fate.duplicated);
            }
        }
    }

    #[test]
    fn stall_durations_respect_the_bound() {
        let plan = FaultPlan {
            stall_prob: 0.9,
            max_stall: 4,
            ..FaultPlan::default()
        };
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..200 {
            if let Some(s) = plan.fate(round, 0).stall {
                assert!((1..=4).contains(&s));
                seen.insert(s);
            }
        }
        assert!(seen.len() >= 3, "stall durations should spread: {seen:?}");
    }

    #[test]
    fn server_retries_are_bounded_and_quiet_when_disabled() {
        let plan = FaultPlan::default();
        assert_eq!(plan.server_apply_attempts(0), Some(1));

        let flaky = FaultPlan {
            server_fail_prob: 0.6,
            max_retries: 2,
            ..FaultPlan::default()
        };
        let mut lost = 0;
        for round in 0..200 {
            match flaky.server_apply_attempts(round) {
                Some(attempts) => assert!((1..=3).contains(&attempts)),
                None => lost += 1,
            }
        }
        // P(lose) = 0.6^3 = 21.6%; over 200 rounds both outcomes occur.
        assert!(lost > 0 && lost < 200);
    }

    #[test]
    #[should_panic]
    fn out_of_range_probability_is_rejected() {
        FaultPlan {
            crash_prob: 1.0,
            ..FaultPlan::default()
        }
        .validate();
    }

    #[test]
    fn round_policy_validates_and_labels() {
        RoundPolicy::Synchronous.validate();
        RoundPolicy::Deadline {
            budget: 2.0,
            min_quorum: 2,
        }
        .validate();
        RoundPolicy::Buffered {
            goal_k: 4,
            max_staleness: 3,
        }
        .validate();
        assert_eq!(RoundPolicy::default(), RoundPolicy::Synchronous);
        assert_eq!(RoundPolicy::Synchronous.label(), "sync");
        assert!(RoundPolicy::Deadline { budget: 2.0, min_quorum: 2 }
            .label()
            .contains("deadline"));
    }

    #[test]
    #[should_panic]
    fn non_positive_deadline_budget_is_rejected() {
        RoundPolicy::Deadline {
            budget: 0.0,
            min_quorum: 1,
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn zero_buffered_goal_is_rejected() {
        RoundPolicy::Buffered {
            goal_k: 0,
            max_staleness: 1,
        }
        .validate();
    }

    #[test]
    fn tally_absorbs_counts() {
        let mut total = FaultTally::default();
        total.absorb(&FaultTally {
            crashed: 1,
            stalled: 2,
            duplicated: 3,
            missed_deadline: 4,
            quorum_rescued: 5,
            apply_retries: 6,
            rounds_lost: 7,
        });
        total.absorb(&FaultTally {
            crashed: 1,
            ..FaultTally::default()
        });
        assert_eq!(total.crashed, 2);
        assert_eq!(total.lost_uploads(), 2 + 2 + 4);
        assert_eq!(total.rounds_lost, 7);
    }
}
