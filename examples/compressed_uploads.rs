//! Compressed uploads: shrink client→server traffic with quantization and
//! top-k sparsification and see what it costs in accuracy — then checkpoint
//! a compressed run mid-way, "restart", and resume bitwise.
//!
//! Stochastic compression draws its dithering randomness from
//! `(CompressionDither, seed, absolute round, client id)`, and the
//! checkpoint carries the `UploadStats` counters plus the per-client
//! error-feedback residuals, so a resumed run reproduces the uninterrupted
//! one exactly — accounting included.
//!
//! ```text
//! cargo run -p fedcross-examples --release --bin compressed_uploads
//! ```

use fedcross_compress::{CompressedFedAvg, Compressor, Identity, TopK, UniformQuantizer};
use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::Heterogeneity;
use fedcross_flsim::{
    Checkpoint, FederatedAlgorithm, LocalTrainConfig, Simulation, SimulationConfig,
};
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_tensor::SeededRng;

fn main() {
    let mut rng = SeededRng::new(33);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 12,
            samples_per_client: 40,
            test_samples: 200,
            ..Default::default()
        },
        Heterogeneity::Dirichlet(0.5),
        &mut rng,
    );
    let template = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (8, 16),
            fc_hidden: 32,
            kernel: 3,
        },
        &mut rng,
    );
    println!(
        "federation: {} clients, model: {} parameters ({:.2} MiB per upload)\n",
        data.num_clients(),
        template.param_count(),
        template.param_count() as f64 * 4.0 / (1024.0 * 1024.0)
    );

    let sim_config = SimulationConfig {
        rounds: 20,
        clients_per_round: 4,
        eval_every: 5,
        eval_batch_size: 64,
        local: LocalTrainConfig {
            epochs: 2,
            batch_size: 10,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        },
        seed: 11,
    };

    let schemes: Vec<(Box<dyn Compressor>, bool)> = vec![
        (Box::new(Identity), false),
        (Box::new(UniformQuantizer::new(8, true)), false),
        (Box::new(TopK::new(0.1)), true),
    ];

    for (compressor, error_feedback) in schemes {
        let mut algo = CompressedFedAvg::new(
            template.params_flat(),
            compressor,
            error_feedback,
            77,
        );
        let name = algo.name();
        let result = Simulation::new(sim_config, &data, template.clone_model()).run(&mut algo);
        let stats = algo.upload_stats();
        println!(
            "{name:<32} best accuracy {:>5.1}%   upload {:>5.1}x smaller   saved {:.2} MiB",
            result.best_accuracy_pct(),
            stats.ratio(),
            stats.saved_mib()
        );
    }

    // Checkpoint/resume: the top-k + error-feedback scheme carries the most
    // cross-round state (global model, upload counters, per-client residual
    // memory) — interrupt it half-way and prove the restart is a non-event.
    let build = || {
        CompressedFedAvg::new(template.params_flat(), Box::new(TopK::new(0.1)), true, 77)
    };
    let sim = Simulation::new(sim_config, &data, template.clone_model());
    let mut reference = build();
    let uninterrupted = sim.run(&mut reference);

    let halfway = sim_config.rounds / 2;
    let mut interrupted = build();
    let partial = sim.run_segment(&mut interrupted, 0, halfway);
    let checkpoint_path =
        std::env::temp_dir().join("fedcross-example-compressed-checkpoint.json");
    sim.checkpoint(&interrupted, &partial)
        .expect("CompressedFedAvg supports checkpointing")
        .save(&checkpoint_path)
        .expect("checkpoint saves");
    println!(
        "\ncheckpointed {} at round {halfway} ({} uploads so far) to {}",
        interrupted.name(),
        interrupted.upload_stats().uploads,
        checkpoint_path.display()
    );
    drop(interrupted); // the "crash"

    let restored = Checkpoint::load(&checkpoint_path).expect("checkpoint loads");
    let mut resumed = build();
    let second = sim
        .resume(&restored, &mut resumed)
        .expect("checkpoint matches the resuming simulation");
    let identical = reference
        .global_params()
        .iter()
        .zip(resumed.global_params())
        .all(|(a, b)| a.to_bits() == b.to_bits())
        && uninterrupted.history == second.history
        && reference.upload_stats() == resumed.upload_stats();
    println!(
        "resumed compressed run is bitwise identical (params, history, upload stats): {}",
        if identical { "yes" } else { "NO (bug!)" }
    );
    assert!(identical, "compressed resume must be a non-event");
    let _ = std::fs::remove_file(&checkpoint_path);

    println!("\nExpected: 8-bit quantized uploads match the uncompressed accuracy at ~4x less");
    println!("traffic; top-10% sparsification with error feedback trades a little accuracy for");
    println!("~5x less traffic; and a mid-run restart resumes models, residual memory and");
    println!("upload accounting exactly where they left off.");
}
