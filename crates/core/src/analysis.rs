//! Training-dynamics analysis: gradient divergence and middleware unification.
//!
//! The paper's motivation (Section I) is that FedAvg's one-to-multi scheme
//! suffers from *gradient divergence* — conflicting client updates cancel each
//! other in the averaged global model — while FedCross gradually unifies its
//! middleware models instead. This module provides the measurements behind
//! that narrative:
//!
//! * [`update_conflict`] — mean pairwise cosine similarity of client *update
//!   directions* in a round (negative / near-zero values mean conflicting
//!   gradients),
//! * [`UnificationTracker`] — records the middleware-model similarity and the
//!   spread of the middleware set round by round, so experiments can show the
//!   models "eventually become similar" (Section III-A).

use crate::selection::mean_pairwise_similarity;
use fedcross_nn::params::{cosine, difference, l2_norm};
use serde::{Deserialize, Serialize};

/// Mean pairwise cosine similarity between client update directions
/// (`uploaded_i - dispatched_i`).
///
/// Values near 1 mean clients agree on the direction of improvement; values
/// near 0 or below mean their gradients conflict — the phenomenon coarse
/// FedAvg averaging cannot resolve.
///
/// Returns 1.0 when fewer than two updates are given.
pub fn update_conflict(dispatched: &[Vec<f32>], uploaded: &[Vec<f32>]) -> f32 {
    assert_eq!(
        dispatched.len(),
        uploaded.len(),
        "one dispatched model per uploaded model"
    );
    let updates: Vec<Vec<f32>> = dispatched
        .iter()
        .zip(uploaded)
        .map(|(d, u)| difference(u, d))
        .collect();
    if updates.len() < 2 {
        return 1.0;
    }
    let mut total = 0f32;
    let mut count = 0usize;
    for i in 0..updates.len() {
        for j in (i + 1)..updates.len() {
            total += cosine(&updates[i], &updates[j]);
            count += 1;
        }
    }
    total / count as f32
}

/// One recorded round of middleware statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnificationRecord {
    /// Communication round index.
    pub round: usize,
    /// Mean pairwise cosine similarity of the middleware models.
    pub mean_similarity: f32,
    /// Largest L2 distance between any middleware model and their mean.
    pub max_spread: f32,
}

/// Tracks how the middleware model set contracts over training.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UnificationTracker {
    records: Vec<UnificationRecord>,
}

impl UnificationTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the state of the middleware models after `round`.
    pub fn record(&mut self, round: usize, middleware: &[Vec<f32>]) {
        assert!(!middleware.is_empty(), "middleware list must not be empty");
        let dim = middleware[0].len();
        let mut mean = vec![0f32; dim];
        for model in middleware {
            for (m, &v) in mean.iter_mut().zip(model) {
                *m += v;
            }
        }
        for m in mean.iter_mut() {
            *m /= middleware.len() as f32;
        }
        let max_spread = middleware
            .iter()
            .map(|model| l2_norm(&difference(model, &mean)))
            .fold(0f32, f32::max);
        self.records.push(UnificationRecord {
            round,
            mean_similarity: mean_pairwise_similarity(middleware),
            max_spread,
        });
    }

    /// All recorded rounds in order.
    pub fn records(&self) -> &[UnificationRecord] {
        &self.records
    }

    /// Whether the middleware similarity is (weakly) increasing over the last
    /// `window` records — the paper's "middleware models eventually become
    /// similar" claim, allowing `tolerance` of noise.
    pub fn is_unifying(&self, window: usize, tolerance: f32) -> bool {
        if self.records.len() < 2 {
            return true;
        }
        let start = self.records.len().saturating_sub(window.max(2));
        let slice = &self.records[start..];
        slice
            .first()
            .zip(slice.last())
            .map(|(first, last)| last.mean_similarity + tolerance >= first.mean_similarity)
            .unwrap_or(true)
    }

    /// The most recent similarity value (1.0 if nothing recorded).
    pub fn latest_similarity(&self) -> f32 {
        self.records
            .last()
            .map(|r| r.mean_similarity)
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_updates_have_no_conflict() {
        let dispatched = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let uploaded = vec![vec![1.0, 2.0], vec![2.0, 3.0]];
        // Both updates are (1, 2): perfectly aligned.
        assert!((update_conflict(&dispatched, &uploaded) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn opposite_updates_conflict() {
        let dispatched = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let uploaded = vec![vec![1.0, 0.0], vec![-1.0, 0.0]];
        assert!(update_conflict(&dispatched, &uploaded) < -0.99);
    }

    #[test]
    fn orthogonal_updates_score_near_zero() {
        let dispatched = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let uploaded = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert!(update_conflict(&dispatched, &uploaded).abs() < 1e-6);
    }

    #[test]
    fn single_update_defaults_to_one() {
        let dispatched = vec![vec![0.0]];
        let uploaded = vec![vec![1.0]];
        assert_eq!(update_conflict(&dispatched, &uploaded), 1.0);
    }

    #[test]
    fn tracker_detects_contracting_middleware() {
        let mut tracker = UnificationTracker::new();
        // Models that move closer together each round.
        for round in 0..5 {
            let spread = 1.0 / (round + 1) as f32;
            let middleware = vec![
                vec![1.0, spread],
                vec![1.0, -spread],
                vec![1.0 + spread, 0.0],
            ];
            tracker.record(round, &middleware);
        }
        assert_eq!(tracker.records().len(), 5);
        assert!(tracker.is_unifying(5, 1e-3));
        assert!(tracker.latest_similarity() > tracker.records()[0].mean_similarity);
        assert!(tracker.records()[4].max_spread < tracker.records()[0].max_spread);
    }

    #[test]
    fn tracker_flags_diverging_middleware() {
        let mut tracker = UnificationTracker::new();
        for round in 0..4 {
            let spread = (round + 1) as f32;
            let middleware = vec![vec![1.0, spread], vec![1.0, -spread]];
            tracker.record(round, &middleware);
        }
        assert!(!tracker.is_unifying(4, 0.0));
    }

    #[test]
    fn empty_tracker_is_trivially_unifying() {
        let tracker = UnificationTracker::new();
        assert!(tracker.is_unifying(3, 0.0));
        assert_eq!(tracker.latest_similarity(), 1.0);
        assert!(tracker.records().is_empty());
    }
}
