//! Optimizers.
//!
//! Every client in the FedCross evaluation trains with SGD (learning rate
//! 0.01, momentum 0.5 — Section IV-A). [`Sgd`] implements that update with
//! optional weight decay, operating on the flat parameter vector a [`Model`]
//! exposes. [`Sgd::step_with`] lets the FL baselines inject per-parameter
//! gradient corrections (FedProx's proximal term, SCAFFOLD's control
//! variates) without re-implementing the optimizer.

use crate::Model;

/// Stochastic gradient descent with classical momentum and weight decay.
///
/// The velocity buffer is lazily sized on the first step and reset whenever
/// the parameter count changes (e.g. the optimizer is reused for a different
/// architecture).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables decay).
    pub weight_decay: f32,
    velocity: Vec<f32>,
    // Reused flat-vector scratch so steady-state steps allocate nothing.
    params_scratch: Vec<f32>,
    grads_scratch: Vec<f32>,
}

impl Sgd {
    /// Creates a new SGD optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        let mut sgd = Self {
            lr: 1.0,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
            params_scratch: Vec::new(),
            grads_scratch: Vec::new(),
        };
        // One shared validation + install path: `new` and `reconfigure` can
        // never drift apart in what they accept.
        sgd.reconfigure(lr, momentum, weight_decay);
        sgd
    }

    /// The paper's client optimizer: lr 0.01, momentum 0.5, no weight decay.
    pub fn paper_default() -> Self {
        Self::new(0.01, 0.5, 0.0)
    }

    /// Resets the momentum buffer (used when a client receives a fresh model).
    ///
    /// The buffer's *capacity* is kept, so an optimizer owned by a persistent
    /// client worker re-zeroes (rather than re-allocates) its velocity on the
    /// next step — one of the pieces of the zero-allocation round plane.
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }

    /// Re-validates and installs new hyper-parameters, resetting the momentum
    /// state (capacity preserved). Equivalent to replacing the optimizer with
    /// `Sgd::new(lr, momentum, weight_decay)` except that the velocity and
    /// scratch buffers keep their allocations — the form the persistent
    /// worker plane uses at every dispatch.
    pub fn reconfigure(&mut self, lr: f32, momentum: f32, weight_decay: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.lr = lr;
        self.momentum = momentum;
        self.weight_decay = weight_decay;
        self.reset_state();
    }

    /// Performs one update step using the gradients accumulated in `model`.
    pub fn step(&mut self, model: &mut dyn Model) {
        self.step_with(model, |_, _, g| g);
    }

    /// Performs one update step, passing each gradient through `transform`
    /// first. The closure receives `(parameter index, parameter value, raw
    /// gradient)` and returns the gradient actually applied.
    ///
    /// FedProx supplies `g + μ (w - w_global)`, SCAFFOLD supplies
    /// `g - c_i + c`.
    pub fn step_with(
        &mut self,
        model: &mut dyn Model,
        transform: impl Fn(usize, f32, f32) -> f32,
    ) {
        // Fast path: update each parameter tensor in place, skipping the
        // three full-model copies (read params, read grads, write back) of
        // the flat-vector path. The update is applied in exactly the flat
        // order with identical per-element arithmetic, so both paths are
        // bitwise identical; with the scratch reuse below, steady-state steps
        // perform zero allocations either way (pinned by the training-plane
        // allocation-count test).
        let count = model.param_count();
        if self.velocity.len() != count {
            // clear + resize reuses the existing allocation when the buffer
            // was reset (or previously sized) for the same parameter count.
            self.velocity.clear();
            self.velocity.resize(count, 0.0);
        }
        let (lr, momentum, weight_decay) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut offset = 0usize;
        let updated_in_place = model.visit_params_for_step(&mut |param| {
            let n = param.value.numel();
            let values = param.value.data_mut();
            let grads = param.grad.data();
            for j in 0..n {
                let i = offset + j;
                let mut g = transform(i, values[j], grads[j]);
                if weight_decay > 0.0 {
                    g += weight_decay * values[j];
                }
                let v = momentum * velocity[i] + g;
                velocity[i] = v;
                values[j] -= lr * v;
            }
            offset += n;
        });
        if updated_in_place {
            return;
        }

        // Fallback for external models: flat vectors, read into reused
        // scratch buffers.
        let mut params = std::mem::take(&mut self.params_scratch);
        let mut grads = std::mem::take(&mut self.grads_scratch);
        model.read_params_into(&mut params);
        model.read_grads_into(&mut grads);
        debug_assert_eq!(params.len(), grads.len());
        for i in 0..params.len() {
            let mut g = transform(i, params[i], grads[i]);
            if self.weight_decay > 0.0 {
                g += self.weight_decay * params[i];
            }
            let v = self.momentum * self.velocity[i] + g;
            self.velocity[i] = v;
            params[i] -= self.lr * v;
        }
        model.set_params_flat(&params);
        self.params_scratch = params;
        self.grads_scratch = grads;
    }

    /// Applies one SGD step directly to a raw parameter/gradient pair without
    /// going through a model. Used by server-side optimisation (e.g. training
    /// the FedGen generator).
    pub fn step_raw(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.velocity.len() != params.len() {
            self.velocity.clear();
            self.velocity.resize(params.len(), 0.0);
        }
        for i in 0..params.len() {
            let mut g = grads[i];
            if self.weight_decay > 0.0 {
                g += self.weight_decay * params[i];
            }
            let v = self.momentum * self.velocity[i] + g;
            self.velocity[i] = v;
            params[i] -= self.lr * v;
        }
    }
}

/// A simple step-decay learning-rate schedule: multiplies the rate by `gamma`
/// every `step_every` rounds.
#[derive(Debug, Clone)]
pub struct StepLrSchedule {
    /// Initial learning rate.
    pub initial_lr: f32,
    /// Multiplicative decay factor applied every `step_every` rounds.
    pub gamma: f32,
    /// Number of rounds between decays.
    pub step_every: usize,
}

impl StepLrSchedule {
    /// Creates a schedule. `step_every == 0` means "never decay".
    pub fn new(initial_lr: f32, gamma: f32, step_every: usize) -> Self {
        assert!(initial_lr > 0.0, "learning rate must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        Self {
            initial_lr,
            gamma,
            step_every,
        }
    }

    /// Learning rate to use at `round` (0-based).
    pub fn lr_at(&self, round: usize) -> f32 {
        if self.step_every == 0 {
            return self.initial_lr;
        }
        let decays = (round / self.step_every) as i32;
        self.initial_lr * self.gamma.powi(decays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use crate::loss::softmax_cross_entropy;
    use fedcross_tensor::{SeededRng, Tensor};

    #[test]
    fn sgd_reduces_loss_on_tiny_problem() {
        let mut rng = SeededRng::new(0);
        let mut model = mlp(2, &[8], 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0], &[4, 2]);
        let labels = vec![0usize, 1, 1, 0];
        let mut sgd = Sgd::new(0.5, 0.0, 0.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..200 {
            model.zero_grads();
            let logits = model.forward(&x, true);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            sgd.step(model.as_mut());
            if first_loss.is_none() {
                first_loss = Some(loss);
            }
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.5, "loss did not decrease");
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Single parameter, constant gradient 1: with momentum m the k-th step size
        // is lr * (1 + m + m^2 + ...), so two steps with momentum move further than
        // two steps without.
        let mut with = Sgd::new(0.1, 0.9, 0.0);
        let mut without = Sgd::new(0.1, 0.0, 0.0);
        let mut p_with = vec![0f32];
        let mut p_without = vec![0f32];
        for _ in 0..3 {
            with.step_raw(&mut p_with, &[1.0]);
            without.step_raw(&mut p_without, &[1.0]);
        }
        assert!(p_with[0] < p_without[0]);
    }

    #[test]
    fn weight_decay_shrinks_parameters_with_zero_gradient() {
        let mut sgd = Sgd::new(0.1, 0.0, 0.5);
        let mut params = vec![1.0f32, -2.0];
        sgd.step_raw(&mut params, &[0.0, 0.0]);
        assert!(params[0] < 1.0 && params[0] > 0.0);
        assert!(params[1] > -2.0 && params[1] < 0.0);
    }

    #[test]
    fn step_with_transform_overrides_gradient() {
        let mut rng = SeededRng::new(1);
        let mut model = mlp(2, &[4], 2, &mut rng);
        let before = model.params_flat();
        let mut sgd = Sgd::new(0.1, 0.0, 0.0);
        // Transform that zeroes every gradient: parameters must not change.
        sgd.step_with(model.as_mut(), |_, _, _| 0.0);
        assert_eq!(model.params_flat(), before);
    }

    #[test]
    fn paper_default_matches_section_iv() {
        let sgd = Sgd::paper_default();
        assert!((sgd.lr - 0.01).abs() < 1e-9);
        assert!((sgd.momentum - 0.5).abs() < 1e-9);
        assert_eq!(sgd.weight_decay, 0.0);
    }

    #[test]
    fn reset_state_clears_velocity() {
        let mut sgd = Sgd::new(0.1, 0.9, 0.0);
        let mut p = vec![0f32; 3];
        sgd.step_raw(&mut p, &[1.0, 1.0, 1.0]);
        sgd.reset_state();
        let mut p2 = vec![0f32; 3];
        sgd.step_raw(&mut p2, &[1.0, 1.0, 1.0]);
        // After reset the first step is identical to a fresh optimizer's.
        assert_eq!(p2, vec![-0.1, -0.1, -0.1]);
    }

    #[test]
    fn reconfigure_matches_a_fresh_optimizer_bitwise() {
        // A reused (reconfigured) optimizer must produce exactly the update
        // sequence of a brand-new one — the worker-plane reuse contract.
        let mut reused = Sgd::new(0.3, 0.9, 1e-3);
        let mut p = vec![1.0f32, -1.0];
        reused.step_raw(&mut p, &[0.5, -0.5]);
        reused.reconfigure(0.1, 0.5, 0.0);

        let mut fresh = Sgd::new(0.1, 0.5, 0.0);
        let mut p_reused = vec![2.0f32, -3.0];
        let mut p_fresh = vec![2.0f32, -3.0];
        for _ in 0..3 {
            reused.step_raw(&mut p_reused, &[1.0, -2.0]);
            fresh.step_raw(&mut p_fresh, &[1.0, -2.0]);
        }
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&p_reused), bits(&p_fresh));
    }

    #[test]
    #[should_panic]
    fn reconfigure_rejects_invalid_momentum() {
        Sgd::new(0.1, 0.0, 0.0).reconfigure(0.1, 1.5, 0.0);
    }

    #[test]
    fn step_lr_schedule_decays() {
        let sched = StepLrSchedule::new(0.1, 0.5, 10);
        assert!((sched.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((sched.lr_at(9) - 0.1).abs() < 1e-7);
        assert!((sched.lr_at(10) - 0.05).abs() < 1e-7);
        assert!((sched.lr_at(25) - 0.025).abs() < 1e-7);
        let flat = StepLrSchedule::new(0.1, 0.5, 0);
        assert!((flat.lr_at(1000) - 0.1).abs() < 1e-7);
    }
}
