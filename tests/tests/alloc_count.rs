//! Allocation-count regression tests for the zero-allocation training plane.
//!
//! A counting global allocator wraps the system allocator for this test
//! binary only. Two properties are pinned:
//!
//! 1. A steady-state `local_train` minibatch step — gather, forward, loss,
//!    backward, optimizer step — performs **zero** heap allocations once the
//!    arena, gather buffers and optimizer state are warm (measured directly
//!    on the public training-plane APIs, exactly the sequence
//!    `local_train` runs).
//! 2. Whole `local_train` calls allocate a fixed warm-up set that does NOT
//!    grow with the number of epochs/steps — tripling the epochs must not
//!    change the allocation count.
//!
//! If a layer quietly reintroduces a `clone()` or a fresh `Vec` per step,
//! these counts move and the test fails.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

use fedcross_data::federated::{FederatedDataset, SynthCifar10Config};
use fedcross_data::{Batch, Dataset, Heterogeneity};
use fedcross_flsim::client::local_train;
use fedcross_flsim::LocalTrainConfig;
use fedcross_nn::loss::softmax_cross_entropy_into;
use fedcross_nn::models::{cnn, CnnConfig};
use fedcross_nn::optim::Sgd;
use fedcross_nn::Model;
use fedcross_tensor::{SeededRng, TensorPool};

fn tiny_task() -> (Dataset, Box<dyn Model>) {
    let mut rng = SeededRng::new(7);
    let data = FederatedDataset::synth_cifar10(
        &SynthCifar10Config {
            num_clients: 1,
            samples_per_client: 40,
            test_samples: 10,
            ..Default::default()
        },
        Heterogeneity::Iid,
        &mut rng,
    );
    let model = cnn(
        (3, 16, 16),
        10,
        CnnConfig {
            conv_channels: (3, 6),
            fc_hidden: 12,
            kernel: 3,
        },
        &mut rng,
    );
    (data.client(0).clone(), model)
}

/// Runs `epochs` of the exact minibatch loop `local_train` executes, using
/// pre-warmed state, and returns the allocations performed.
#[allow(clippy::too_many_arguments)]
fn run_epochs(
    model: &mut dyn Model,
    data: &Dataset,
    config: &LocalTrainConfig,
    rng: &mut SeededRng,
    pool: &mut TensorPool,
    order: &mut Vec<usize>,
    batch: &mut Batch,
    optimizer: &mut Sgd,
    epochs: usize,
) -> usize {
    let before = allocations();
    for _ in 0..epochs {
        data.epoch_order(Some(rng), order);
        for chunk in order.chunks(config.batch_size) {
            data.gather_batch(chunk, batch);
            model.zero_grads();
            let logits = model.forward_into(&batch.features, true, pool);
            let (_, grad) = softmax_cross_entropy_into(&logits, &batch.labels, pool);
            pool.recycle(logits);
            model.backward_into(&grad, pool);
            pool.recycle(grad);
            optimizer.step(model);
        }
    }
    allocations() - before
}

// NOTE: this binary contains exactly one #[test] so no concurrent test
// thread can pollute the global allocation counter.
#[test]
fn steady_state_training_steps_allocate_nothing() {
    let (data, template) = tiny_task();
    let mut model = template.clone_model();
    let config = LocalTrainConfig {
        epochs: 1,
        batch_size: 16, // 40 samples -> chunks of 16, 16, 8: both shapes warm up
        lr: 0.05,
        momentum: 0.5,
        weight_decay: 1e-4,
    };
    let mut rng = SeededRng::new(5);
    let mut pool = TensorPool::new();
    let mut order = Vec::new();
    let mut batch = Batch::reusable();
    let mut optimizer = Sgd::new(config.lr, config.momentum, config.weight_decay);

    // Warm-up epochs: populate the arena, gather buffers, velocity, the
    // matmul packing scratch and the free-list capacities for every batch
    // shape (the second epoch catches one-time free-list growth that only
    // occurs once buffers from the first epoch are parked).
    let warmup = run_epochs(
        &mut *model, &data, &config, &mut rng, &mut pool, &mut order, &mut batch, &mut optimizer, 2,
    );
    assert!(warmup > 0, "warm-up should allocate the arena");
    let fresh_after_warmup = pool.fresh_allocations();

    // Steady state: three more epochs (including epoch-boundary reshuffles
    // and the smaller tail batch) must perform ZERO heap allocations.
    let steady = run_epochs(
        &mut *model, &data, &config, &mut rng, &mut pool, &mut order, &mut batch, &mut optimizer, 3,
    );
    assert_eq!(
        steady, 0,
        "steady-state training steps must not allocate (got {steady} allocations over 3 epochs)"
    );
    assert_eq!(
        pool.fresh_allocations(),
        fresh_after_warmup,
        "the arena must serve every steady-state checkout from its free lists"
    );
    assert!(pool.checkouts() > fresh_after_warmup);

    // End-to-end pin on `local_train` itself: its per-call allocations are a
    // fixed warm-up set, so tripling the epochs must not change the count.
    let count_for = |epochs: usize| {
        let mut model = template.clone_model();
        let config = LocalTrainConfig {
            epochs,
            batch_size: 16,
            lr: 0.05,
            momentum: 0.5,
            weight_decay: 0.0,
        };
        let mut rng = SeededRng::new(9);
        let before = allocations();
        let update = local_train(0, model.as_mut(), &data, &config, &mut rng, None);
        let delta = allocations() - before;
        assert!(update.steps >= epochs * 3);
        delta
    };
    // Run once to absorb any one-time lazy initialisation (thread-local
    // packing scratch, etc.), then compare runs whose warm-up phase (first
    // two epochs: arena population plus one-time free-list growth) is
    // identical but whose steady-state step count triples.
    count_for(2);
    let two_epochs = count_for(2);
    let six_epochs = count_for(6);
    assert_eq!(
        two_epochs, six_epochs,
        "local_train allocations must not scale with the number of steps"
    );
}
