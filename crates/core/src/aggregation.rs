//! Cross-aggregation (`CrossAggr`) and global-model generation
//! (Sections III-B2 and III-B3).
//!
//! Every kernel comes in two forms: an allocating convenience version and a
//! destination-passing `*_into` version that writes into a caller-provided
//! buffer. The `*_into` forms are the hot path — `FedCross::run_round` fuses
//! each round's uploads directly into the retired middleware buffers, so the
//! steady-state server loop performs **zero** full-model allocations — and the
//! allocating forms are thin wrappers over them, so both are numerically
//! identical element-for-element.
//!
//! [`cross_aggregate_all_into`] parallelises over the `K` middleware models
//! with rayon once the total work is large enough to amortise the fork/join.

use fedcross_nn::params::{average, average_into, interpolate_into, ParamVec};
use rayon::prelude::*;

/// Minimum total scalar count (`K·d`) before the whole-round kernels switch
/// to rayon; below this the fork/join overhead dominates.
const PAR_THRESHOLD_SCALARS: usize = 1 << 16;

fn assert_alpha(alpha: f32) {
    assert!(
        (0.5..1.0).contains(&alpha),
        "alpha must lie in [0.5, 1.0), got {alpha}"
    );
}

/// Fuses one uploaded middleware model with its collaborative model:
/// `CrossAggr(v_i, v_co) = α·v_i + (1-α)·v_co`.
///
/// # Panics
/// Panics if `alpha` is outside `[0.5, 1.0)` (the paper's admissible range)
/// or the vectors differ in length.
pub fn cross_aggregate(uploaded: &[f32], collaborative: &[f32], alpha: f32) -> ParamVec {
    let mut out = vec![0f32; uploaded.len()];
    cross_aggregate_into(&mut out, uploaded, collaborative, alpha);
    out
}

/// Destination-passing [`cross_aggregate`]: writes the fused model into
/// `out`, reusing its allocation.
///
/// # Panics
/// Panics if `alpha` is outside `[0.5, 1.0)` or any length differs.
pub fn cross_aggregate_into(out: &mut [f32], uploaded: &[f32], collaborative: &[f32], alpha: f32) {
    assert_alpha(alpha);
    interpolate_into(out, uploaded, collaborative, alpha);
}

/// Fuses one uploaded model with multiple *propeller* models (the
/// propeller-model acceleration of Section III-D): the collaborative share
/// `(1-α)` is split evenly across the propellers.
///
/// With a single propeller this reduces exactly to [`cross_aggregate`].
pub fn cross_aggregate_propellers(
    uploaded: &[f32],
    propellers: &[&[f32]],
    alpha: f32,
) -> ParamVec {
    let mut out = vec![0f32; uploaded.len()];
    cross_aggregate_propellers_into(&mut out, uploaded, propellers, alpha);
    out
}

/// Destination-passing [`cross_aggregate_propellers`]: writes the fused model
/// into `out`, reusing its allocation.
///
/// # Panics
/// Panics if `alpha` is out of range, no propeller is given, or lengths
/// differ.
pub fn cross_aggregate_propellers_into(
    out: &mut [f32],
    uploaded: &[f32],
    propellers: &[&[f32]],
    alpha: f32,
) {
    assert_alpha(alpha);
    assert!(!propellers.is_empty(), "at least one propeller is required");
    assert_eq!(out.len(), uploaded.len(), "output length must match");
    let share = (1.0 - alpha) / propellers.len() as f32;
    for (o, &v) in out.iter_mut().zip(uploaded) {
        *o = alpha * v;
    }
    for propeller in propellers {
        assert_eq!(
            propeller.len(),
            uploaded.len(),
            "propeller length must match the uploaded model"
        );
        fedcross_nn::params::add_scaled(out, propeller, share);
    }
}

/// Applies cross-aggregation to the whole uploaded model list given each
/// model's collaborative index (Algorithm 1 lines 11–14), producing the next
/// round's middleware models.
///
/// # Panics
/// Panics if a collaborative index is out of range or equals its own model.
pub fn cross_aggregate_all<V: AsRef<[f32]> + Sync>(
    uploaded: &[V],
    collaborators: &[usize],
    alpha: f32,
) -> Vec<ParamVec> {
    let dim = uploaded.first().map_or(0, |v| v.as_ref().len());
    let mut out: Vec<ParamVec> = uploaded.iter().map(|_| vec![0f32; dim]).collect();
    {
        let mut targets: Vec<&mut [f32]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        cross_aggregate_all_into(&mut targets, uploaded, collaborators, alpha);
    }
    out
}

/// Destination-passing [`cross_aggregate_all`]: fuses every upload into its
/// caller-provided output buffer (`out[i] = α·uploaded[i] +
/// (1-α)·uploaded[collaborators[i]]`), rayon-parallel over the `K` models
/// when `K·d` crosses [`PAR_THRESHOLD_SCALARS`].
///
/// The output buffers are typically last round's retired middleware models,
/// making the whole cross-aggregation step allocation-free.
///
/// # Panics
/// Panics if the lengths are inconsistent, `alpha` is out of range, a
/// collaborative index is out of range or a model collaborates with itself.
pub fn cross_aggregate_all_into<V: AsRef<[f32]> + Sync>(
    out: &mut [&mut [f32]],
    uploaded: &[V],
    collaborators: &[usize],
    alpha: f32,
) {
    assert_eq!(
        uploaded.len(),
        collaborators.len(),
        "one collaborator index per uploaded model"
    );
    assert_eq!(
        out.len(),
        uploaded.len(),
        "one output buffer per uploaded model"
    );
    assert_alpha(alpha);
    for (i, &co) in collaborators.iter().enumerate() {
        assert!(co < uploaded.len(), "collaborator index out of range");
        assert_ne!(co, i, "a model cannot collaborate with itself");
    }
    let dim = uploaded.first().map_or(0, |v| v.as_ref().len());
    let fuse = |(i, target): (usize, &mut &mut [f32])| {
        interpolate_into(
            target,
            uploaded[i].as_ref(),
            uploaded[collaborators[i]].as_ref(),
            alpha,
        );
    };
    if uploaded.len() * dim >= PAR_THRESHOLD_SCALARS {
        out.par_iter_mut().enumerate().for_each(fuse);
    } else {
        out.iter_mut().enumerate().for_each(fuse);
    }
}

/// Generates the deployable global model: the plain average of the middleware
/// models (Section III-B3). The global model never participates in training.
pub fn global_model<V: AsRef<[f32]>>(middleware: &[V]) -> ParamVec {
    average(middleware)
}

/// Destination-passing [`global_model`]: writes the middleware average into
/// `out`, reusing its allocation.
pub fn global_model_into<V: AsRef<[f32]>>(out: &mut [f32], middleware: &[V]) {
    average_into(out, middleware);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedcross_nn::params::{l2_norm, squared_distance};

    #[test]
    fn cross_aggregate_is_a_convex_combination() {
        let v = vec![1.0, 2.0, 3.0];
        let co = vec![3.0, 2.0, 1.0];
        let fused = cross_aggregate(&v, &co, 0.75);
        assert_eq!(fused, vec![1.5, 2.0, 2.5]);
    }

    #[test]
    fn alpha_near_one_barely_moves_the_model() {
        let v = vec![1.0, -1.0];
        let co = vec![100.0, 100.0];
        let fused = cross_aggregate(&v, &co, 0.99);
        assert!((fused[0] - (0.99 + 1.0)).abs() < 1e-5);
        assert!(squared_distance(&fused, &v) < squared_distance(&fused, &co));
    }

    #[test]
    #[should_panic]
    fn alpha_below_half_is_rejected() {
        let _ = cross_aggregate(&[1.0], &[2.0], 0.4);
    }

    #[test]
    #[should_panic]
    fn alpha_of_one_is_rejected() {
        let _ = cross_aggregate(&[1.0], &[2.0], 1.0);
    }

    #[test]
    #[should_panic]
    fn in_place_alpha_below_half_is_rejected() {
        let mut out = vec![0.0];
        cross_aggregate_into(&mut out, &[1.0], &[2.0], 0.4);
    }

    #[test]
    #[should_panic]
    fn in_place_length_mismatch_is_rejected() {
        let mut out = vec![0.0; 2];
        cross_aggregate_into(&mut out, &[1.0], &[2.0], 0.9);
    }

    #[test]
    fn single_propeller_matches_plain_cross_aggregation() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let p = vec![0.0, 1.0, 0.0, 1.0];
        let a = cross_aggregate(&v, &p, 0.9);
        let b = cross_aggregate_propellers(&v, &[&p], 0.9);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn propellers_share_the_collaborative_weight_evenly() {
        let v = vec![0.0, 0.0];
        let p1 = vec![1.0, 0.0];
        let p2 = vec![0.0, 1.0];
        let fused = cross_aggregate_propellers(&v, &[&p1, &p2], 0.8);
        // (1 - 0.8) / 2 = 0.1 of each propeller.
        assert!((fused[0] - 0.1).abs() < 1e-6);
        assert!((fused[1] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn in_order_cross_aggregation_preserves_the_parameter_sum() {
        // Equation 2 of the paper: when every model is selected as a
        // collaborator exactly once, Σ w_i = Σ v_i.
        let uploaded = vec![
            vec![1.0, 10.0],
            vec![2.0, 20.0],
            vec![3.0, 30.0],
            vec![4.0, 40.0],
        ];
        // A cyclic permutation: each model is a collaborator exactly once.
        let collaborators = vec![1, 2, 3, 0];
        let fused = cross_aggregate_all(&uploaded, &collaborators, 0.9);
        for dim in 0..2 {
            let before: f32 = uploaded.iter().map(|v| v[dim]).sum();
            let after: f32 = fused.iter().map(|v| v[dim]).sum();
            assert!(
                (before - after).abs() < 1e-4,
                "dim {dim}: sum changed from {before} to {after}"
            );
        }
    }

    #[test]
    fn lemma_3_4_distance_inequality_holds() {
        // ||w_i - w*||^2 = ||v_i - w*||^2 - α(1-α)||v_i - v_co||^2 ≤ ||v_i - w*||^2,
        // so the average squared distance to any reference point cannot grow.
        let uploaded = vec![
            vec![1.0, 0.0, 2.0],
            vec![-1.0, 3.0, 0.5],
            vec![0.0, -2.0, 1.0],
        ];
        let collaborators = vec![1, 2, 0];
        let reference = vec![0.25, 0.5, 1.0];
        for &alpha in &[0.5f32, 0.75, 0.9, 0.99] {
            let fused = cross_aggregate_all(&uploaded, &collaborators, alpha);
            let before: f32 = uploaded
                .iter()
                .map(|v| squared_distance(v, &reference))
                .sum::<f32>()
                / uploaded.len() as f32;
            let after: f32 = fused
                .iter()
                .map(|v| squared_distance(v, &reference))
                .sum::<f32>()
                / fused.len() as f32;
            assert!(
                after <= before + 1e-5,
                "alpha {alpha}: mean squared distance grew from {before} to {after}"
            );
        }
    }

    #[test]
    fn cross_aggregation_shrinks_pairwise_distances() {
        // The rule is designed to "restrict the weight differences between
        // middleware models" — after one application the models are closer.
        let uploaded = vec![vec![5.0, 0.0], vec![-5.0, 2.0]];
        let fused = cross_aggregate_all(&uploaded, &[1, 0], 0.8);
        let before = squared_distance(&uploaded[0], &uploaded[1]);
        let after = squared_distance(&fused[0], &fused[1]);
        assert!(after < before);
    }

    #[test]
    fn global_model_is_the_middleware_average() {
        let middleware = vec![vec![1.0, 2.0], vec![3.0, 6.0]];
        assert_eq!(global_model(&middleware), vec![2.0, 4.0]);
        let mut out = vec![0f32; 2];
        global_model_into(&mut out, &middleware);
        assert_eq!(out, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn self_collaboration_is_rejected() {
        let uploaded = vec![vec![1.0], vec![2.0]];
        let _ = cross_aggregate_all(&uploaded, &[0, 0], 0.9);
    }

    #[test]
    fn identical_models_are_a_fixed_point() {
        let uploaded = vec![vec![1.0, -2.0, 3.0]; 3];
        let fused = cross_aggregate_all(&uploaded, &[1, 2, 0], 0.9);
        for f in &fused {
            assert_eq!(f, &uploaded[0]);
        }
        assert!((l2_norm(&global_model(&fused)) - l2_norm(&uploaded[0])).abs() < 1e-6);
    }

    #[test]
    fn parallel_path_matches_serial_path_bitwise() {
        // K·d above the parallel threshold: 10 models × 10_000 scalars.
        let k = 10usize;
        let dim = 10_000usize;
        let uploaded: Vec<Vec<f32>> = (0..k)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * 131 + j * 17) % 97) as f32 * 0.21 - 10.0)
                    .collect()
            })
            .collect();
        let collaborators: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
        // Parallel (threshold crossed) vs per-model serial kernel.
        let parallel = cross_aggregate_all(&uploaded, &collaborators, 0.99);
        for (i, fused) in parallel.iter().enumerate() {
            let serial = cross_aggregate(&uploaded[i], &uploaded[collaborators[i]], 0.99);
            assert_eq!(
                fused.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                serial.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "model {i} differs between parallel and serial paths"
            );
        }
    }

    #[test]
    fn into_variants_reuse_the_given_buffers() {
        let uploaded = vec![vec![1.0f32, 2.0], vec![3.0, 4.0]];
        let mut buffers = [vec![9.0f32, 9.0], vec![9.0, 9.0]];
        let pointers: Vec<*const f32> = buffers.iter().map(|b| b.as_ptr()).collect();
        {
            let mut targets: Vec<&mut [f32]> =
                buffers.iter_mut().map(|b| b.as_mut_slice()).collect();
            cross_aggregate_all_into(&mut targets, &uploaded, &[1, 0], 0.75);
        }
        for (buffer, ptr) in buffers.iter().zip(pointers) {
            assert_eq!(buffer.as_ptr(), ptr, "buffer was reallocated");
        }
        assert_eq!(buffers[0], cross_aggregate(&uploaded[0], &uploaded[1], 0.75));
        assert_eq!(buffers[1], cross_aggregate(&uploaded[1], &uploaded[0], 0.75));
    }
}
